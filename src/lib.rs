//! # retiming-suite
//!
//! Umbrella crate of the reproduction of *"A Constructive Approach towards
//! Correctness of Synthesis — Application within Retiming"* (Eisenbiegler,
//! Kumar, Blumenröhr; DATE 1997).
//!
//! The individual subsystems live in their own crates and are re-exported
//! here for convenience:
//!
//! * [`logic`] (`hash-logic`) — the LCF-style higher-order-logic kernel,
//! * [`netlist`] (`hash-netlist`) — synchronous netlists, simulation and
//!   bit-blasting,
//! * [`automata`] (`hash-automata`) — the Automata theory and the circuit
//!   term encoding,
//! * [`retiming`] (`hash-retiming`) — conventional Leiserson–Saxe retiming
//!   heuristics and netlist-level register moves,
//! * [`core`] (`hash-core`) — the HASH formal synthesis engine and the
//!   universal retiming theorem,
//! * [`bdd`] (`hash-bdd`) — the ROBDD package,
//! * [`equiv`] (`hash-equiv`) — the post-synthesis verification baselines,
//! * [`circuits`] (`hash-circuits`) — benchmark circuit generators.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! experiment index, and `EXPERIMENTS.md` for reproduced results.
//!
//! ## Quick start
//!
//! ```
//! use retiming_suite::circuits::figure2::Figure2;
//! use retiming_suite::core::prelude::*;
//!
//! # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
//! let mut hash = Hash::new()?;
//! let fig = Figure2::new(8);
//! let result = hash.formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())?;
//! println!("{}", result.theorem);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use hash_automata as automata;
pub use hash_bdd as bdd;
pub use hash_circuits as circuits;
pub use hash_core as core;
pub use hash_equiv as equiv;
pub use hash_logic as logic;
pub use hash_netlist as netlist;
pub use hash_retiming as retiming;
