//! Reproduces Figures 2 and 3 of the paper: the scalable example circuit,
//! its retiming cut, the retimed circuit, and a simulation cross-check.
//!
//! Run with `cargo run --example figure2_retiming -- 16` (bit width optional).

use retiming_suite::circuits::figure2::Figure2;
use retiming_suite::core::prelude::*;
use retiming_suite::netlist::prelude::*;
use retiming_suite::retiming::prelude::*;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let fig = Figure2::new(n);

    println!("Figure 2 circuit at n = {n}:");
    for r in fig.netlist.registers() {
        println!(
            "  register {} (init {})",
            fig.netlist.signal(r.output)?.name,
            r.init
        );
    }
    println!("  cells: {}", fig.netlist.cells().len());

    // The conventional path: move the register across the +1 component.
    let cut = fig.correct_cut();
    println!("\nCut (Figure 3): f = {{+1 component}}, g = {{comparator, MUX}}");
    let conventional = forward_retime(&fig.netlist, &cut)?;
    println!("Conventionally retimed registers:");
    for r in conventional.registers() {
        println!(
            "  register {} (init {})",
            conventional.signal(r.output)?.name,
            r.init
        );
    }

    // The formal path: the same transformation as a logical derivation.
    let mut hash = Hash::new()?;
    let formal = hash.formal_retime(&fig.netlist, &cut, RetimeOptions::default())?;
    println!("\nFormal synthesis theorem:\n  {}", formal.theorem);

    // Cross-check by simulation (the paper's Section II baseline).
    let stim = random_stimuli(&fig.netlist, 200, 2024);
    let equal = traces_equal(&fig.netlist, &formal.retimed, &stim)?;
    println!(
        "\nSimulation cross-check over 200 random cycles: {}",
        if equal {
            "traces identical"
        } else {
            "TRACES DIFFER (impossible)"
        }
    );
    Ok(())
}
