//! Quickstart: formally retime the paper's Figure-2 circuit and print the
//! correctness theorem produced by the logic kernel.
//!
//! Run with `cargo run --example quickstart`.

use retiming_suite::circuits::figure2::Figure2;
use retiming_suite::core::prelude::*;
use retiming_suite::netlist::prelude::*;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // The formal synthesis engine: installs the boolean, pair and Automata
    // theories and derives the universal retiming theorem once.
    let mut hash = Hash::new()?;
    println!("Universal retiming theorem (derived once, paper Fig. 1):");
    println!("  {}\n", hash.retiming_theorem());

    // The scalable example from Figure 2 at bit width 8.
    let fig = Figure2::new(8);
    println!("Original circuit: {}", stats(&fig.netlist));

    // Formal retiming with the correct cut (f = the +1 component).
    let result = hash.formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())?;
    println!("Retimed circuit:  {}", stats(&result.retimed));
    println!("\nSynthesis theorem produced by the kernel:");
    println!("  {}", result.theorem);
    println!(
        "\nNew initial value of the shifted register (f(q), computed by the kernel): {}",
        result.new_initial_values[0]
    );
    println!(
        "Formal derivation took {:.3} ms",
        result.derivation_time.as_secs_f64() * 1e3
    );

    // The trusted base the theorem depends on.
    println!("\nTrust report:\n{}", hash.theory().trust_report());
    Ok(())
}
