//! Demonstrates compound synthesis steps (Section III-A): a retiming
//! theorem and a logic-simplification ("join") theorem are composed by a
//! single transitivity rule whose cost is constant.
//!
//! Run with `cargo run --example compound_synthesis`.

use retiming_suite::circuits::figure2::Figure2;
use retiming_suite::core::prelude::*;
use std::time::Instant;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let mut hash = Hash::new()?;
    let fig = Figure2::new(16);

    // Step 1: formal retiming  ⊢ a = b
    let t = Instant::now();
    let step1 = hash.formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())?;
    let t1 = t.elapsed();

    // Step 2: join / simplify the combinational part  ⊢ b = c
    let t = Instant::now();
    let step2 = hash.join_step_of(&step1.theorem)?;
    let t2 = t.elapsed();

    // Compound step  ⊢ a = c  by transitivity.
    let t = Instant::now();
    let compound = hash.compound(&step1.theorem, &step2)?;
    let t3 = t.elapsed();

    println!("step 1 (retiming):        {:.3} ms", t1.as_secs_f64() * 1e3);
    println!("step 2 (simplification):  {:.3} ms", t2.as_secs_f64() * 1e3);
    println!("composition (TRANS):      {:.6} ms", t3.as_secs_f64() * 1e3);
    println!("\nCompound synthesis theorem:\n  {}", compound);
    println!("\nThe composition cost is negligible compared to the steps —");
    println!("\"the overall complexity of the compound synthesis step is the");
    println!("sum of its two parts\" (Section III-A).");
    Ok(())
}
