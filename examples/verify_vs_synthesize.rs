//! The paper's central comparison on one instance: post-synthesis
//! verification (SMV-style model checking, SIS-style FSM comparison) versus
//! formal synthesis (HASH), on the Figure-2 example.
//!
//! Run with `cargo run --release --example verify_vs_synthesize -- 8`.

use retiming_suite::circuits::figure2::Figure2;
use retiming_suite::core::prelude::*;
use retiming_suite::equiv::prelude::*;
use retiming_suite::retiming::prelude::*;
use std::time::Instant;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let fig = Figure2::new(n);
    let retimed = forward_retime(&fig.netlist, &fig.correct_cut())?;

    println!("Figure-2 example at n = {n}");

    let sis = check_equivalence_sis(
        &fig.netlist,
        &retimed,
        SisOptions {
            max_states: 1 << 20,
            max_input_bits: 14,
        },
    );
    println!("  SIS-style FSM comparison: {sis}");

    let smv = check_equivalence_smv(
        &fig.netlist,
        &retimed,
        SmvOptions::default()
            .with_node_limit(500_000)
            .with_max_iterations(10_000),
    );
    println!("  SMV-style model checking: {smv}");

    let mut hash = Hash::new()?;
    let t = Instant::now();
    let result = hash.formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())?;
    println!(
        "  HASH formal synthesis:    theorem derived in {:.3}s (no verification needed)",
        t.elapsed().as_secs_f64()
    );
    println!("\n  {}", result.theorem);
    Ok(())
}
