//! Reproduces Figure 4 and Section IV-C of the paper: a faulty heuristic
//! proposes the wrong cut (f = {comparator, MUX}); the transformation fails
//! with an exception-like error, and no (incorrect) theorem can be derived.
//!
//! Run with `cargo run --example faulty_cut`.

use retiming_suite::automata::encode::false_cut_equation;
use retiming_suite::circuits::figure2::Figure2;
use retiming_suite::core::prelude::*;
use retiming_suite::logic::prelude::*;
use retiming_suite::retiming::prelude::*;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let fig = Figure2::new(8);
    let mut hash = Hash::new()?;

    // The false cut of Figure 4.
    let bad = fig.false_cut();
    println!("Trying the false cut f = {{comparator, MUX}} ...");

    // The conventional heuristics reject it:
    match forward_retime(&fig.netlist, &bad) {
        Err(e) => println!("  conventional retiming: rejected ({e})"),
        Ok(_) => println!("  conventional retiming: unexpectedly succeeded"),
    }

    // The formal synthesis step fails without producing a theorem:
    match hash.formal_retime(&fig.netlist, &bad, RetimeOptions::default()) {
        Err(e) => println!("  formal synthesis:      rejected ({e})"),
        Ok(_) => println!("  formal synthesis:      unexpectedly succeeded"),
    }

    // And, as the paper points out, the equality between the original and
    // the falsely split combinational function cannot even be expressed —
    // the kernel refuses to build the ill-typed equation:
    let mut theory = Theory::new();
    BoolTheory::install(&mut theory)?;
    PairTheory::install(&mut theory)?;
    retiming_suite::automata::theory::AutomataTheory::install(&mut theory)?;
    match false_cut_equation(&mut theory, &fig.netlist, &fig.correct_cut(), &bad.cells) {
        Err(e) => println!("  kernel:                {e}"),
        Ok(_) => println!("  kernel:                unexpectedly built the equation"),
    }

    println!("\nNo theorem was produced in any case: a faulty heuristic can");
    println!("make the synthesis fail, but it can never make it incorrect.");
    Ok(())
}
