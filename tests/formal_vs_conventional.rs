//! Cross-crate integration tests: the formal synthesis result, the
//! conventional retiming result, the verification baselines and plain
//! simulation must all agree.

use retiming_suite::circuits::figure2::Figure2;
use retiming_suite::circuits::iwls::{generate, table2_benchmarks};
use retiming_suite::core::prelude::*;
use retiming_suite::equiv::prelude::*;
use retiming_suite::netlist::prelude::*;

#[test]
fn figure2_formal_conventional_and_model_checker_agree() {
    let mut hash = Hash::new().unwrap();
    for n in [2u32, 4, 6] {
        let fig = Figure2::new(n);
        let formal = hash
            .formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
            .unwrap();
        // Simulation agreement.
        let stim = random_stimuli(&fig.netlist, 100, 42 + u64::from(n));
        assert!(traces_equal(&fig.netlist, &formal.retimed, &stim).unwrap());
        // Model-checker agreement (the post-synthesis verification route).
        let smv = check_equivalence_smv(
            &fig.netlist,
            &formal.retimed,
            SmvOptions::default()
                .with_node_limit(500_000)
                .with_max_iterations(1_000),
        );
        assert_eq!(smv.verdict, Verdict::Equivalent, "n = {n}: {smv}");
        // The reference retimed circuit from the paper's Figure 2.
        let reference = Figure2::retimed_reference(n);
        assert!(traces_equal(&formal.retimed, &reference, &stim).unwrap());
    }
}

#[test]
fn synthetic_benchmark_formal_retiming_is_validated_by_simulation() {
    let mut hash = Hash::new().unwrap();
    let benchmark = &table2_benchmarks()[0]; // s344-sized synthetic circuit
    let netlist = generate(benchmark);
    let result = hash
        .formal_retime_auto(&netlist, RetimeOptions::default())
        .unwrap();
    assert!(result.theorem.is_closed());
    let stim = random_stimuli(&netlist, 50, 7);
    assert!(traces_equal(&netlist, &result.retimed, &stim).unwrap());
}

#[test]
fn multiplier_family_is_formally_retimable() {
    let mut hash = Hash::new().unwrap();
    for width in [8u32, 16] {
        let m = retiming_suite::circuits::FracMult::new(width).netlist;
        let result = hash
            .formal_retime_auto(&m, RetimeOptions::default())
            .unwrap();
        let stim = random_stimuli(&m, 40, 99);
        assert!(traces_equal(&m, &result.retimed, &stim).unwrap());
    }
}

#[test]
fn theorem_lhs_matches_the_encoded_circuit_and_rhs_has_literal_state() {
    let mut hash = Hash::new().unwrap();
    let fig = Figure2::new(12);
    let result = hash
        .formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
        .unwrap();
    let (lhs, rhs) = result.theorem.concl().dest_eq().unwrap();
    assert!(lhs.aconv(&result.encoding.circuit_term));
    let (_, init) = retiming_suite::automata::dest_automaton(&rhs).unwrap();
    let values = retiming_suite::automata::literal_tuple_values(&init).unwrap();
    assert_eq!(values[0].as_u64(), 1, "f(0) = 1 for the incrementer");
}
