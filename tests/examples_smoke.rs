//! Smoke test: every example under `examples/` must run end-to-end and
//! exit successfully, so the examples cannot silently rot as the API
//! evolves. (`cargo test` already *compiles* the examples; this test also
//! *executes* them via the same cargo that is running the test suite.)

use std::path::Path;
use std::process::Command;

/// The five examples of the umbrella crate, in tour order.
const EXAMPLES: &[&str] = &[
    "quickstart",
    "figure2_retiming",
    "verify_vs_synthesize",
    "compound_synthesis",
    "faulty_cut",
];

#[test]
fn every_example_runs_end_to_end() {
    let cargo = env!("CARGO");
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    for example in EXAMPLES {
        let output = Command::new(cargo)
            .current_dir(manifest_dir)
            .args(["run", "--quiet", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn `cargo run --example {example}`: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}

#[test]
fn example_sources_all_have_smoke_coverage() {
    // If someone adds examples/foo.rs without extending EXAMPLES above,
    // fail loudly instead of silently skipping it.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let name = entry.expect("readable dir entry").file_name();
            let name = name.to_string_lossy();
            name.strip_suffix(".rs").map(str::to_owned)
        })
        .collect();
    on_disk.sort();
    let mut covered: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    covered.sort();
    assert_eq!(
        on_disk, covered,
        "examples on disk and EXAMPLES in tests/examples_smoke.rs have diverged"
    );
}
