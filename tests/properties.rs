//! Property-based tests spanning the workspace: retiming preserves
//! behaviour, bit-blasting preserves behaviour, and the kernel's
//! substitution machinery respects alpha-equivalence.

use hash_logic::prelude::*;
use proptest::prelude::*;
use retiming_suite::netlist::prelude::*;
use retiming_suite::retiming::prelude::*;

/// Builds a small random pipeline circuit from a seed: input -> register ->
/// a few word-level cells -> output, with a retimable first stage.
fn pipeline_from_seed(seed: u64, width: u32) -> Netlist {
    let mut n = Netlist::new(format!("pipe_{seed}"));
    let a = n.add_input("a", width);
    let b = n.add_input("b", width);
    let q1 = n.register(a, BitVec::truncate(seed, width), "q1").unwrap();
    let q2 = n
        .register(b, BitVec::truncate(seed >> 8, width), "q2")
        .unwrap();
    // Retimable block (reads only registers).
    let stage1 = match seed % 3 {
        0 => n.add(q1, q2, "s1").unwrap(),
        1 => n.xor(q1, q2, "s1").unwrap(),
        _ => n.cell(CombOp::Sub, &[q1, q2], "s1").unwrap(),
    };
    let stage1b = n.inc(stage1, "s1b").unwrap();
    // Non-retimable tail (reads a primary input).
    let tail = match (seed >> 4) % 2 {
        0 => n.xor(stage1b, a, "t").unwrap(),
        _ => n.add(stage1b, b, "t").unwrap(),
    };
    n.mark_output(tail);
    n
}

proptest! {
    // Fixed case count AND fixed RNG seed: CI explores exactly the same
    // cases on every run, and a failure reproduces from the seed alone.
    // Case count stays moderate here — each case simulates two netlists
    // for dozens of cycles.
    #![proptest_config(ProptestConfig::with_cases(48).with_rng_seed(0xE15E_4B1E_61E8_0003))]

    #[test]
    fn forward_retiming_preserves_traces(seed in 0u64..10_000, width in 2u32..10) {
        let netlist = pipeline_from_seed(seed, width);
        let cut = maximal_forward_cut(&netlist);
        prop_assume!(!cut.is_empty());
        let retimed = forward_retime(&netlist, &cut).unwrap();
        let stim = random_stimuli(&netlist, 32, seed);
        prop_assert!(traces_equal(&netlist, &retimed, &stim).unwrap());
    }

    #[test]
    fn bit_blasting_preserves_traces(seed in 0u64..10_000, width in 2u32..8) {
        let netlist = pipeline_from_seed(seed, width);
        let blasted = hash_netlist::gate::bit_blast(&netlist).unwrap();
        let stim = random_stimuli(&netlist, 16, seed ^ 0xABCD);
        let mut rt = Simulator::new(&netlist).unwrap();
        let mut gate = Simulator::new(&blasted.netlist).unwrap();
        for inp in &stim {
            let rt_out = rt.step(inp).unwrap();
            let gate_inp: Vec<BitVec> = inp
                .iter()
                .flat_map(|v| (0..v.width()).map(|i| BitVec::bit(v.bit_at(i))))
                .collect();
            let gate_out = gate.step(&gate_inp).unwrap();
            let rt_bits: Vec<bool> = rt_out
                .iter()
                .flat_map(|v| (0..v.width()).map(|i| v.bit_at(i)))
                .collect();
            let gate_bits: Vec<bool> = gate_out.iter().map(|v| v.is_true()).collect();
            prop_assert_eq!(rt_bits, gate_bits);
        }
    }

    #[test]
    fn kernel_substitution_respects_types(name in "[a-d]", width in 1u32..16) {
        // INST refuses ill-typed substitutions and preserves well-typedness.
        let v = Var::new(name.clone(), Type::bv(width));
        let th = Theorem::refl(&v.term()).unwrap();
        let good = th.inst(&vec![(v.clone(), mk_var("z", Type::bv(width)))]);
        prop_assert!(good.is_ok());
        let bad = th.inst(&vec![(v, mk_var("z", Type::bv(width + 1)))]);
        prop_assert!(bad.is_err());
    }

    #[test]
    fn beta_normalisation_agrees_with_substitution(width in 1u32..8) {
        // (\x. x op x) a  normalises to  a op a.
        let x = Var::new("x", Type::bv(width));
        let a = mk_var("a", Type::bv(width));
        let op = mk_const(
            "op",
            Type::fun(Type::bv(width), Type::fun(Type::bv(width), Type::bv(width))),
        );
        let body = list_mk_comb(&op, &[x.term(), x.term()]).unwrap();
        let redex = mk_comb(&mk_abs(&x, &body), &a).unwrap();
        let th = beta_norm_thm(&redex).unwrap();
        let (_, nf) = th.dest_eq().unwrap();
        let expected = list_mk_comb(&op, &[a, a]).unwrap();
        prop_assert!(nf.aconv(&expected));
    }
}
