//! Negative paths of the soundness story:
//!
//! 1. A `Theorem` cannot be forged outside `hash-logic` — neither by
//!    struct-literal construction nor by reaching the kernel's internal
//!    `trusted` constructor. Verified by compiling a fixture crate that
//!    attempts both and asserting the privacy errors.
//! 2. A *failed* synthesis attempt (a faulty cut, the paper's Section
//!    IV-C) leaves the trust base byte-for-byte unchanged and does not
//!    poison the engine for subsequent successful runs.

use retiming_suite::circuits::figure2::Figure2;
use retiming_suite::core::prelude::*;
use retiming_suite::retiming::prelude::*;
use std::path::Path;
use std::process::Command;

/// Builds one forgery binary of the fixture crate and returns its stderr,
/// asserting that the build failed and did NOT fail for an unrelated
/// reason (an unresolved import would also fail the build, but that must
/// not count as sealing).
fn build_forgery(bin: &str) -> String {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/forgery_fixture");
    let output = Command::new(env!("CARGO"))
        .current_dir(&fixture)
        .args(["build", "--quiet", "--bin", bin])
        .output()
        .expect("failed to spawn cargo for the forgery fixture");
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        !output.status.success(),
        "forgery binary `{bin}` compiled — the Theorem type is no longer sealed!"
    );
    for unrelated in ["E0432", "E0433", "unresolved import", "cannot find"] {
        assert!(
            !stderr.contains(unrelated),
            "forgery binary `{bin}` failed for an unrelated reason ({unrelated}), \
             so the sealing check is vacuous:\n{stderr}"
        );
    }
    stderr
}

#[test]
fn a_theorem_cannot_be_forged_by_struct_literal() {
    let stderr = build_forgery("forge_literal");
    // rustc: error[E0451]: fields `hyps` and `concl` of struct `Theorem`
    // are private.
    assert!(
        stderr.contains("E0451") && stderr.contains("private") && stderr.contains("hyps"),
        "expected the struct-literal forgery to die on field privacy, got:\n{stderr}"
    );
}

#[test]
fn a_theorem_cannot_be_forged_via_the_internal_constructor() {
    let stderr = build_forgery("forge_trusted");
    // rustc: error[E0624]: associated function `trusted` is private.
    assert!(
        stderr.contains("E0624") && stderr.contains("private") && stderr.contains("trusted"),
        "expected the `trusted` constructor forgery to die on privacy, got:\n{stderr}"
    );
}

/// A full snapshot of everything the paper counts as the trust base.
fn trust_base_snapshot(hash: &Hash) -> (Vec<String>, usize, Vec<String>, String) {
    let theory = hash.theory();
    (
        theory
            .axioms()
            .iter()
            .map(|(name, thm)| format!("{name}: {thm}"))
            .collect(),
        theory.definitions().len(),
        theory
            .delta_rule_names()
            .iter()
            .map(|s| s.to_string())
            .collect(),
        theory.trust_report(),
    )
}

#[test]
fn failed_synthesis_attempts_leave_the_trust_base_unchanged() {
    let mut hash = Hash::new().unwrap();
    let fig = Figure2::new(8);
    let before = trust_base_snapshot(&hash);

    // The paper's Figure-4 false cut fails...
    assert!(hash
        .formal_retime(&fig.netlist, &fig.false_cut(), RetimeOptions::default())
        .is_err());
    // ...and so does every invalid single-cell cut.
    let valid_cuts = single_cell_cuts(&fig.netlist);
    let mut failures = 0;
    for cell in 0..fig.netlist.cells().len() {
        let cut = Cut::new(vec![cell]);
        if valid_cuts.iter().any(|c| c.cells == vec![cell]) {
            continue;
        }
        assert!(
            hash.formal_retime(&fig.netlist, &cut, RetimeOptions::default())
                .is_err(),
            "invalid cut {{ {cell} }} was accepted"
        );
        failures += 1;
    }
    assert!(failures > 0, "expected at least one faulty cut to exercise");

    // The trust base is unchanged by every failed attempt.
    assert_eq!(before, trust_base_snapshot(&hash));

    // And the engine is not poisoned: the correct cut still synthesises a
    // closed theorem afterwards, still without extending the trust base.
    let result = hash
        .formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
        .unwrap();
    assert!(result.theorem.is_closed());
    assert_eq!(before, trust_base_snapshot(&hash));
}
