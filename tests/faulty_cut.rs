//! Integration test for the paper's Section IV-C: faulty heuristics make
//! the synthesis fail but can never make it derive an incorrect theorem.

use retiming_suite::circuits::figure2::Figure2;
use retiming_suite::core::prelude::*;
use retiming_suite::retiming::prelude::*;

#[test]
fn every_wrong_single_cell_cut_is_rejected_consistently() {
    let mut hash = Hash::new().unwrap();
    let fig = Figure2::new(6);
    let retimable = single_cell_cuts(&fig.netlist);
    for cell in 0..fig.netlist.cells().len() {
        let cut = Cut::new(vec![cell]);
        let conventional = forward_retime(&fig.netlist, &cut);
        let formal = hash.formal_retime(&fig.netlist, &cut, RetimeOptions::default());
        // The two paths agree on which cuts are acceptable.
        assert_eq!(
            conventional.is_ok(),
            formal.is_ok(),
            "cell {cell}: conventional and formal paths disagree"
        );
        assert_eq!(
            retimable.iter().any(|c| c.cells == vec![cell]),
            formal.is_ok()
        );
    }
}

#[test]
fn the_false_cut_of_figure4_is_rejected_by_every_layer() {
    let mut hash = Hash::new().unwrap();
    let fig = Figure2::new(8);
    let bad = fig.false_cut();
    assert!(forward_retime(&fig.netlist, &bad).is_err());
    assert!(hash
        .formal_retime(&fig.netlist, &bad, RetimeOptions::default())
        .is_err());
    // The trust base is unchanged by the failed attempt.
    assert_eq!(hash.theory().axioms().len(), 4);
}
