//! The soundness story of the paper: every synthesis result is a theorem,
//! and theorems rest only on the small, documented trust base.

use retiming_suite::circuits::figure2::Figure2;
use retiming_suite::core::prelude::*;

#[test]
fn the_trust_base_is_small_and_documented() {
    let hash = Hash::new().unwrap();
    let theory = hash.theory();
    // Axioms: the three pair axioms and the automaton induction principle.
    let axiom_names: Vec<&str> = theory.axioms().iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        axiom_names,
        vec!["FST_PAIR", "SND_PAIR", "PAIR_ETA", "AUTOMATON_BISIM"]
    );
    // Definitions: the eight boolean connectives.
    assert_eq!(theory.definitions().len(), 8);
    // Computation rules: bit-vector evaluation only.
    assert_eq!(theory.delta_rule_names(), vec!["bv_eval"]);
    // And the report mentions all of them.
    let report = theory.trust_report();
    for name in axiom_names {
        assert!(report.contains(name));
    }
}

#[test]
fn synthesis_never_extends_the_trust_base() {
    let mut hash = Hash::new().unwrap();
    let axioms_before = hash.theory().axioms().len();
    let deltas_before = hash.theory().delta_rule_names().len();
    for n in [3u32, 7, 15, 31] {
        let fig = Figure2::new(n);
        let result = hash
            .formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
            .unwrap();
        assert!(result.theorem.is_closed());
    }
    assert_eq!(hash.theory().axioms().len(), axioms_before);
    assert_eq!(hash.theory().delta_rule_names().len(), deltas_before);
}
