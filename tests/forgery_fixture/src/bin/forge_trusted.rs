//! Forgery attempt 2: calling the kernel's internal `trusted`
//! constructor. It is `pub(crate)`, so this MUST die with E0624;
//! tests/trust_base_negative.rs builds this binary and asserts exactly
//! that.

use hash_logic::term::{mk_eq, mk_var};
use hash_logic::thm::Theorem;
use hash_logic::types::Type;

fn main() {
    let t = mk_var("p", Type::bool());
    let lie = mk_eq(&t, &t).unwrap();
    let _forged = Theorem::trusted(Vec::new(), lie);
}
