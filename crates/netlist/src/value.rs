//! Bit-vector values used by the simulator and by initial register states.
//!
//! Values are fixed-width two's-complement bit vectors of 1 to 64 bits.
//! All arithmetic wraps around modulo `2^width`, matching the semantics of
//! the RT-level operators in the paper's example circuit (`+1`, comparator,
//! multiplexer).

use crate::error::{NetlistError, Result};
use std::fmt;

/// The maximum supported bit-vector width.
pub const MAX_WIDTH: u32 = 64;

/// A fixed-width bit-vector value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BitVec {
    width: u32,
    bits: u64,
}

impl BitVec {
    /// Creates a bit-vector of the given width holding `value`.
    ///
    /// # Errors
    ///
    /// Fails if the width is 0 or above [`MAX_WIDTH`], or the value does not
    /// fit.
    pub fn new(value: u64, width: u32) -> Result<BitVec> {
        if width == 0 || width > MAX_WIDTH {
            return Err(NetlistError::UnsupportedWidth { width });
        }
        if width < 64 && value >> width != 0 {
            return Err(NetlistError::ValueOutOfRange { value, width });
        }
        Ok(BitVec { width, bits: value })
    }

    /// The all-zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if the width is invalid (0 or > 64).
    pub fn zero(width: u32) -> BitVec {
        BitVec::new(0, width).expect("valid width")
    }

    /// The value 1 of the given width.
    ///
    /// # Panics
    ///
    /// Panics if the width is invalid (0 or > 64).
    pub fn one(width: u32) -> BitVec {
        BitVec::new(1, width).expect("valid width")
    }

    /// The all-ones value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if the width is invalid (0 or > 64).
    pub fn ones(width: u32) -> BitVec {
        BitVec {
            width,
            bits: mask(width),
        }
    }

    /// Creates a value by truncating `value` to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if the width is invalid (0 or > 64).
    pub fn truncate(value: u64, width: u32) -> BitVec {
        assert!((1..=MAX_WIDTH).contains(&width), "invalid width {width}");
        BitVec {
            width,
            bits: value & mask(width),
        }
    }

    /// A single-bit value.
    pub fn bit(b: bool) -> BitVec {
        BitVec {
            width: 1,
            bits: u64::from(b),
        }
    }

    /// The width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> u64 {
        self.bits
    }

    /// Whether this is a single-bit value equal to 1.
    pub fn is_true(&self) -> bool {
        self.width == 1 && self.bits == 1
    }

    /// The value of bit `i` (little endian, bit 0 is the LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit_at(&self, i: u32) -> bool {
        assert!(i < self.width, "bit index {i} out of range");
        (self.bits >> i) & 1 == 1
    }

    /// Addition modulo `2^width`. Both operands must have the same width.
    ///
    /// # Errors
    ///
    /// Fails on width mismatch.
    pub fn add(&self, other: &BitVec) -> Result<BitVec> {
        self.check_same_width(other, "add")?;
        Ok(BitVec::truncate(
            self.bits.wrapping_add(other.bits),
            self.width,
        ))
    }

    /// Subtraction modulo `2^width`.
    ///
    /// # Errors
    ///
    /// Fails on width mismatch.
    pub fn sub(&self, other: &BitVec) -> Result<BitVec> {
        self.check_same_width(other, "sub")?;
        Ok(BitVec::truncate(
            self.bits.wrapping_sub(other.bits),
            self.width,
        ))
    }

    /// Increment modulo `2^width` (the paper's `+1` component).
    pub fn inc(&self) -> BitVec {
        BitVec::truncate(self.bits.wrapping_add(1), self.width)
    }

    /// Bitwise AND.
    ///
    /// # Errors
    ///
    /// Fails on width mismatch.
    pub fn and(&self, other: &BitVec) -> Result<BitVec> {
        self.check_same_width(other, "and")?;
        Ok(BitVec::truncate(self.bits & other.bits, self.width))
    }

    /// Bitwise OR.
    ///
    /// # Errors
    ///
    /// Fails on width mismatch.
    pub fn or(&self, other: &BitVec) -> Result<BitVec> {
        self.check_same_width(other, "or")?;
        Ok(BitVec::truncate(self.bits | other.bits, self.width))
    }

    /// Bitwise XOR.
    ///
    /// # Errors
    ///
    /// Fails on width mismatch.
    pub fn xor(&self, other: &BitVec) -> Result<BitVec> {
        self.check_same_width(other, "xor")?;
        Ok(BitVec::truncate(self.bits ^ other.bits, self.width))
    }

    /// Bitwise negation.
    pub fn not(&self) -> BitVec {
        BitVec::truncate(!self.bits, self.width)
    }

    /// Equality comparison producing a single-bit value.
    ///
    /// # Errors
    ///
    /// Fails on width mismatch.
    pub fn eq_bit(&self, other: &BitVec) -> Result<BitVec> {
        self.check_same_width(other, "eq")?;
        Ok(BitVec::bit(self.bits == other.bits))
    }

    /// Unsigned less-than comparison producing a single-bit value.
    ///
    /// # Errors
    ///
    /// Fails on width mismatch.
    pub fn lt_bit(&self, other: &BitVec) -> Result<BitVec> {
        self.check_same_width(other, "lt")?;
        Ok(BitVec::bit(self.bits < other.bits))
    }

    /// Unsigned greater-or-equal comparison producing a single-bit value.
    ///
    /// # Errors
    ///
    /// Fails on width mismatch.
    pub fn ge_bit(&self, other: &BitVec) -> Result<BitVec> {
        self.check_same_width(other, "ge")?;
        Ok(BitVec::bit(self.bits >= other.bits))
    }

    /// Two-way multiplexer: returns `a` when `sel` is 1, `b` otherwise.
    ///
    /// # Errors
    ///
    /// Fails if `sel` is not a single bit or `a`/`b` widths differ.
    pub fn mux(sel: &BitVec, a: &BitVec, b: &BitVec) -> Result<BitVec> {
        if sel.width != 1 {
            return Err(NetlistError::WidthMismatch {
                context: "mux select".into(),
                expected: 1,
                found: sel.width,
            });
        }
        a.check_same_width(b, "mux")?;
        Ok(if sel.is_true() { *a } else { *b })
    }

    /// Concatenation: `self` becomes the high bits, `low` the low bits.
    ///
    /// # Errors
    ///
    /// Fails if the combined width exceeds [`MAX_WIDTH`].
    pub fn concat(&self, low: &BitVec) -> Result<BitVec> {
        let width = self.width + low.width;
        if width > MAX_WIDTH {
            return Err(NetlistError::UnsupportedWidth { width });
        }
        Ok(BitVec {
            width,
            bits: (self.bits << low.width) | low.bits,
        })
    }

    /// Bit slice `[hi:lo]` (inclusive).
    ///
    /// # Errors
    ///
    /// Fails if the range is empty or out of bounds.
    pub fn slice(&self, hi: u32, lo: u32) -> Result<BitVec> {
        if lo > hi || hi >= self.width {
            return Err(NetlistError::Structure {
                message: format!("invalid slice [{hi}:{lo}] of a {}-bit value", self.width),
            });
        }
        let width = hi - lo + 1;
        Ok(BitVec::truncate(self.bits >> lo, width))
    }

    /// Shift left by a constant amount (zeros shifted in).
    pub fn shl(&self, amount: u32) -> BitVec {
        if amount >= self.width {
            BitVec::zero(self.width)
        } else {
            BitVec::truncate(self.bits << amount, self.width)
        }
    }

    /// Logical shift right by a constant amount.
    pub fn shr(&self, amount: u32) -> BitVec {
        if amount >= self.width {
            BitVec::zero(self.width)
        } else {
            BitVec::truncate(self.bits >> amount, self.width)
        }
    }

    /// Zero extension to a larger width.
    ///
    /// # Errors
    ///
    /// Fails if the new width is smaller than the current width or invalid.
    pub fn zero_extend(&self, width: u32) -> Result<BitVec> {
        if width < self.width {
            return Err(NetlistError::WidthMismatch {
                context: "zero_extend".into(),
                expected: self.width,
                found: width,
            });
        }
        BitVec::new(self.bits, width)
    }

    fn check_same_width(&self, other: &BitVec, context: &str) -> Result<()> {
        if self.width != other.width {
            Err(NetlistError::WidthMismatch {
                context: context.into(),
                expected: self.width,
                found: other.width,
            })
        } else {
            Ok(())
        }
    }
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'d{}", self.width, self.bits)
    }
}

impl fmt::LowerHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.bits)
    }
}

impl fmt::Binary for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.bits, width = self.width as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_width_and_range() {
        assert!(BitVec::new(0, 0).is_err());
        assert!(BitVec::new(0, 65).is_err());
        assert!(BitVec::new(16, 4).is_err());
        assert!(BitVec::new(15, 4).is_ok());
        assert_eq!(BitVec::new(u64::MAX, 64).unwrap().as_u64(), u64::MAX);
    }

    #[test]
    fn arithmetic_wraps_around() {
        let a = BitVec::new(15, 4).unwrap();
        let one = BitVec::one(4);
        assert_eq!(a.add(&one).unwrap().as_u64(), 0);
        assert_eq!(a.inc().as_u64(), 0);
        assert_eq!(BitVec::zero(4).sub(&one).unwrap().as_u64(), 15);
        assert_eq!(BitVec::new(7, 4).unwrap().inc().as_u64(), 8);
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let a = BitVec::zero(4);
        let b = BitVec::zero(8);
        assert!(a.add(&b).is_err());
        assert!(a.and(&b).is_err());
        assert!(a.eq_bit(&b).is_err());
    }

    #[test]
    fn bitwise_and_comparisons() {
        let a = BitVec::new(0b1100, 4).unwrap();
        let b = BitVec::new(0b1010, 4).unwrap();
        assert_eq!(a.and(&b).unwrap().as_u64(), 0b1000);
        assert_eq!(a.or(&b).unwrap().as_u64(), 0b1110);
        assert_eq!(a.xor(&b).unwrap().as_u64(), 0b0110);
        assert_eq!(a.not().as_u64(), 0b0011);
        assert!(b.lt_bit(&a).unwrap().is_true());
        assert!(!a.lt_bit(&b).unwrap().is_true());
        assert!(a.ge_bit(&b).unwrap().is_true());
        assert!(a.eq_bit(&a).unwrap().is_true());
    }

    #[test]
    fn mux_selects_correct_branch() {
        let a = BitVec::new(3, 4).unwrap();
        let b = BitVec::new(9, 4).unwrap();
        assert_eq!(BitVec::mux(&BitVec::bit(true), &a, &b).unwrap(), a);
        assert_eq!(BitVec::mux(&BitVec::bit(false), &a, &b).unwrap(), b);
        assert!(BitVec::mux(&BitVec::zero(2), &a, &b).is_err());
        assert!(BitVec::mux(&BitVec::bit(true), &a, &BitVec::zero(2)).is_err());
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let hi = BitVec::new(0b101, 3).unwrap();
        let lo = BitVec::new(0b01, 2).unwrap();
        let c = hi.concat(&lo).unwrap();
        assert_eq!(c.width(), 5);
        assert_eq!(c.as_u64(), 0b10101);
        assert_eq!(c.slice(4, 2).unwrap(), hi);
        assert_eq!(c.slice(1, 0).unwrap(), lo);
        assert!(c.slice(5, 0).is_err());
        assert!(c.slice(0, 1).is_err());
    }

    #[test]
    fn shifts_and_extension() {
        let a = BitVec::new(0b0011, 4).unwrap();
        assert_eq!(a.shl(1).as_u64(), 0b0110);
        assert_eq!(a.shl(4).as_u64(), 0);
        assert_eq!(a.shr(1).as_u64(), 0b0001);
        assert_eq!(a.zero_extend(8).unwrap().width(), 8);
        assert!(a.zero_extend(2).is_err());
    }

    #[test]
    fn bit_access_and_display() {
        let a = BitVec::new(0b1010, 4).unwrap();
        assert!(!a.bit_at(0));
        assert!(a.bit_at(1));
        assert_eq!(a.to_string(), "4'd10");
        assert_eq!(format!("{a:b}"), "1010");
        assert_eq!(format!("{a:x}"), "a");
    }
}
