//! Bit-blasting: lowering an RT-level netlist to a gate-level netlist.
//!
//! The paper points out that the model-checking baselines "are based on
//! simple temporal logic and can therefore only handle flat bit-level
//! descriptions at the gate level", whereas HASH operates on the RT-level
//! description directly. To reproduce that comparison the verification
//! baselines in `hash-equiv` run on the gate-level netlist produced here,
//! while the formal synthesis procedure of `hash-core` works on the
//! RT-level netlist.
//!
//! Every RT-level signal of width `w` becomes `w` single-bit signals
//! (LSB first); word-level operators are expanded into boolean gates
//! (ripple-carry adders, comparator chains, per-bit multiplexers).

use crate::cell::{CombOp, SignalId};
use crate::error::{NetlistError, Result};
use crate::netlist::Netlist;
use crate::value::BitVec;
use std::collections::BTreeMap;

/// The result of bit-blasting: the gate-level netlist plus the mapping from
/// RT-level signals to their bit signals (LSB first).
#[derive(Clone, Debug)]
pub struct BitBlasted {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// For every RT-level signal, its gate-level bit signals (LSB first).
    pub bit_map: BTreeMap<SignalId, Vec<SignalId>>,
}

struct Lowering<'a> {
    rt: &'a Netlist,
    gate: Netlist,
    bit_map: BTreeMap<SignalId, Vec<SignalId>>,
    tmp: usize,
}

impl<'a> Lowering<'a> {
    fn fresh(&mut self, hint: &str) -> String {
        self.tmp += 1;
        format!("{hint}_{}", self.tmp)
    }

    fn const_bit(&mut self, b: bool, hint: &str) -> Result<SignalId> {
        let name = self.fresh(hint);
        self.gate.constant(BitVec::bit(b), name)
    }

    fn not_t(&mut self, a: SignalId, hint: &str) -> Result<SignalId> {
        let name = self.fresh(hint);
        self.gate.not(a, name)
    }

    fn and_t(&mut self, a: SignalId, b: SignalId, hint: &str) -> Result<SignalId> {
        let name = self.fresh(hint);
        self.gate.and(a, b, name)
    }

    fn or_t(&mut self, a: SignalId, b: SignalId, hint: &str) -> Result<SignalId> {
        let name = self.fresh(hint);
        self.gate.or(a, b, name)
    }

    fn xor_t(&mut self, a: SignalId, b: SignalId, hint: &str) -> Result<SignalId> {
        let name = self.fresh(hint);
        self.gate.xor(a, b, name)
    }

    fn bits_of(&self, id: SignalId) -> Result<&Vec<SignalId>> {
        self.bit_map
            .get(&id)
            .ok_or(NetlistError::UnknownSignal { id: id.index() })
    }

    /// Full adder producing (sum, carry-out).
    fn full_adder(
        &mut self,
        a: SignalId,
        b: SignalId,
        cin: SignalId,
    ) -> Result<(SignalId, SignalId)> {
        let axb = self.xor_t(a, b, "fa_axb")?;
        let sum = self.xor_t(axb, cin, "fa_sum")?;
        let ab = self.and_t(a, b, "fa_ab")?;
        let cax = self.and_t(cin, axb, "fa_cax")?;
        let cout = self.or_t(ab, cax, "fa_cout")?;
        Ok((sum, cout))
    }

    fn lower_cell(&mut self, cell_index: usize) -> Result<()> {
        let cell = self.rt.cells()[cell_index].clone();
        let out_name = self.rt.signal(cell.output)?.name.clone();
        let bits: Vec<SignalId> = match &cell.op {
            CombOp::Const(v) => {
                let mut out = Vec::new();
                for i in 0..v.width() {
                    out.push(
                        self.gate
                            .constant(BitVec::bit(v.bit_at(i)), format!("{out_name}.{i}"))?,
                    );
                }
                out
            }
            CombOp::Not => {
                let a = self.bits_of(cell.inputs[0])?.clone();
                a.iter()
                    .enumerate()
                    .map(|(i, bit)| self.gate.not(*bit, format!("{out_name}.{i}")))
                    .collect::<Result<_>>()?
            }
            CombOp::And | CombOp::Or | CombOp::Xor => {
                let a = self.bits_of(cell.inputs[0])?.clone();
                let b = self.bits_of(cell.inputs[1])?.clone();
                let mut out = Vec::new();
                for (i, (ab, bb)) in a.iter().zip(b.iter()).enumerate() {
                    let name = format!("{out_name}.{i}");
                    let s = match cell.op {
                        CombOp::And => self.gate.and(*ab, *bb, name)?,
                        CombOp::Or => self.gate.or(*ab, *bb, name)?,
                        _ => self.gate.xor(*ab, *bb, name)?,
                    };
                    out.push(s);
                }
                out
            }
            CombOp::Mux => {
                let sel = self.bits_of(cell.inputs[0])?[0];
                let a = self.bits_of(cell.inputs[1])?.clone();
                let b = self.bits_of(cell.inputs[2])?.clone();
                let mut out = Vec::new();
                for (i, (ab, bb)) in a.iter().zip(b.iter()).enumerate() {
                    out.push(self.gate.mux(sel, *ab, *bb, format!("{out_name}.{i}"))?);
                }
                out
            }
            CombOp::Add | CombOp::Sub => {
                let a = self.bits_of(cell.inputs[0])?.clone();
                let b_raw = self.bits_of(cell.inputs[1])?.clone();
                let subtract = matches!(cell.op, CombOp::Sub);
                let b: Vec<SignalId> = if subtract {
                    b_raw
                        .iter()
                        .map(|bit| self.not_t(*bit, "sub_nb"))
                        .collect::<Result<_>>()?
                } else {
                    b_raw
                };
                let mut carry = self.const_bit(subtract, "carry_in")?;
                let mut out = Vec::new();
                for (i, (ab, bb)) in a.iter().zip(b.iter()).enumerate() {
                    let (sum, cout) = self.full_adder(*ab, *bb, carry)?;
                    // Rename the sum bit for readability by aliasing through
                    // the bit map only (no extra gate).
                    let _ = i;
                    out.push(sum);
                    carry = cout;
                }
                out
            }
            CombOp::Inc => {
                let a = self.bits_of(cell.inputs[0])?.clone();
                let mut carry = self.const_bit(true, "inc_cin")?;
                let mut out = Vec::new();
                for (i, ab) in a.iter().enumerate() {
                    let sum = self.gate.xor(*ab, carry, format!("{out_name}.{i}"))?;
                    carry = self.and_t(*ab, carry, "inc_c")?;
                    out.push(sum);
                }
                out
            }
            CombOp::Eq => {
                let a = self.bits_of(cell.inputs[0])?.clone();
                let b = self.bits_of(cell.inputs[1])?.clone();
                let mut acc: Option<SignalId> = None;
                for (ab, bb) in a.iter().zip(b.iter()) {
                    let x = self.xor_t(*ab, *bb, "eq_x")?;
                    let xn = self.not_t(x, "eq_xn")?;
                    acc = Some(match acc {
                        None => xn,
                        Some(prev) => self.and_t(prev, xn, "eq_acc")?,
                    });
                }
                let result = match acc {
                    Some(s) => s,
                    None => self.const_bit(true, "eq_empty")?,
                };
                vec![result]
            }
            CombOp::Lt | CombOp::Ge => {
                let a = self.bits_of(cell.inputs[0])?.clone();
                let b = self.bits_of(cell.inputs[1])?.clone();
                let mut lt = self.const_bit(false, "lt_init")?;
                for (ab, bb) in a.iter().zip(b.iter()) {
                    let na = self.not_t(*ab, "lt_na")?;
                    let strictly = self.and_t(na, *bb, "lt_str")?;
                    let x = self.xor_t(*ab, *bb, "lt_x")?;
                    let eqb = self.not_t(x, "lt_eq")?;
                    let keep = self.and_t(eqb, lt, "lt_keep")?;
                    lt = self.or_t(strictly, keep, "lt_acc")?;
                }
                let result = if matches!(cell.op, CombOp::Ge) {
                    self.gate.not(lt, format!("{out_name}.0"))?
                } else {
                    lt
                };
                vec![result]
            }
            CombOp::Concat => {
                // inputs[0] is the high part, inputs[1] the low part; the
                // result's LSB-first bit list is low bits then high bits.
                let high = self.bits_of(cell.inputs[0])?.clone();
                let low = self.bits_of(cell.inputs[1])?.clone();
                let mut out = low;
                out.extend(high);
                out
            }
            CombOp::Slice { hi, lo } => {
                let a = self.bits_of(cell.inputs[0])?.clone();
                a[*lo as usize..=*hi as usize].to_vec()
            }
        };
        self.bit_map.insert(cell.output, bits);
        Ok(())
    }
}

/// Bit-blasts an RT-level netlist into an equivalent gate-level netlist.
///
/// # Errors
///
/// Fails if the input netlist is structurally invalid.
pub fn bit_blast(rt: &Netlist) -> Result<BitBlasted> {
    rt.validate()?;
    let order = rt.topo_order()?;
    let mut low = Lowering {
        rt,
        gate: Netlist::new(format!("{}_gates", rt.name())),
        bit_map: BTreeMap::new(),
        tmp: 0,
    };

    // Primary inputs become per-bit inputs.
    for &id in rt.inputs() {
        let sig = rt.signal(id)?;
        let bits: Vec<SignalId> = (0..sig.width)
            .map(|i| low.gate.add_input(format!("{}.{i}", sig.name), 1))
            .collect();
        low.bit_map.insert(id, bits);
    }
    // Register outputs become per-bit signals (driven by per-bit registers
    // added below).
    for r in rt.registers() {
        let sig = rt.signal(r.output)?;
        let bits: Vec<SignalId> = (0..sig.width)
            .map(|i| low.gate.add_signal(format!("{}.{i}", sig.name), 1))
            .collect();
        low.bit_map.insert(r.output, bits);
    }
    // Lower all cells in dependency order.
    for ci in order {
        low.lower_cell(ci)?;
    }
    // Per-bit registers.
    for r in rt.registers() {
        let d_bits = low.bits_of(r.input)?.clone();
        let q_bits = low.bits_of(r.output)?.clone();
        for (i, (d, q)) in d_bits.iter().zip(q_bits.iter()).enumerate() {
            low.gate
                .add_register(*d, *q, BitVec::bit(r.init.bit_at(i as u32)))?;
        }
    }
    // Primary outputs.
    for &id in rt.outputs() {
        let bits = low.bits_of(id)?.clone();
        for b in bits {
            low.gate.mark_output(b);
        }
    }
    low.gate.validate()?;
    Ok(BitBlasted {
        netlist: low.gate,
        bit_map: low.bit_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{random_stimuli, Simulator};

    /// Simulates the RT netlist and its bit-blasted version on the same
    /// stimuli and checks that the output bits agree.
    fn check_equivalent(rt: &Netlist, cycles: usize, seed: u64) {
        let blasted = bit_blast(rt).expect("bit blasting succeeds");
        let gate = &blasted.netlist;
        assert!(gate.is_gate_level(), "lowered netlist must be gate level");

        let stim = random_stimuli(rt, cycles, seed);
        let mut rt_sim = Simulator::new(rt).unwrap();
        let mut gate_sim = Simulator::new(gate).unwrap();
        for inp in &stim {
            let rt_out = rt_sim.step(inp).unwrap();
            // Split RT inputs into bits for the gate-level netlist.
            let gate_inp: Vec<BitVec> = inp
                .iter()
                .flat_map(|v| (0..v.width()).map(|i| BitVec::bit(v.bit_at(i))))
                .collect();
            let gate_out = gate_sim.step(&gate_inp).unwrap();
            let rt_bits: Vec<bool> = rt_out
                .iter()
                .flat_map(|v| (0..v.width()).map(|i| v.bit_at(i)))
                .collect();
            let gate_bits: Vec<bool> = gate_out.iter().map(|v| v.is_true()).collect();
            assert_eq!(rt_bits, gate_bits, "gate-level outputs must match RT level");
        }
    }

    #[test]
    fn arithmetic_datapath_is_preserved() {
        // out = (a + b) == (inc c) ? a - b : a ^ b
        let mut n = Netlist::new("datapath");
        let a = n.add_input("a", 6);
        let b = n.add_input("b", 6);
        let c = n.add_input("c", 6);
        let sum = n.add(a, b, "sum").unwrap();
        let ci = n.inc(c, "ci").unwrap();
        let cond = n.eq(sum, ci, "cond").unwrap();
        let diff = n.cell(CombOp::Sub, &[a, b], "diff").unwrap();
        let x = n.xor(a, b, "x").unwrap();
        let out = n.mux(cond, diff, x, "out").unwrap();
        n.mark_output(out);
        check_equivalent(&n, 64, 7);
    }

    #[test]
    fn comparators_are_preserved() {
        let mut n = Netlist::new("cmp");
        let a = n.add_input("a", 5);
        let b = n.add_input("b", 5);
        let lt = n.cell(CombOp::Lt, &[a, b], "lt").unwrap();
        let ge = n.ge(a, b, "ge").unwrap();
        n.mark_output(lt);
        n.mark_output(ge);
        check_equivalent(&n, 64, 11);
    }

    #[test]
    fn sequential_counter_is_preserved() {
        let mut n = Netlist::new("seq");
        let en = n.add_input("en", 1);
        let q = n.add_signal("q", 4);
        let qi = n.inc(q, "qi").unwrap();
        let next = n.mux(en, qi, q, "next").unwrap();
        n.add_register(next, q, BitVec::new(5, 4).unwrap()).unwrap();
        n.mark_output(q);
        check_equivalent(&n, 40, 3);
    }

    #[test]
    fn concat_and_slice_are_wiring_only() {
        let mut n = Netlist::new("wires");
        let a = n.add_input("a", 3);
        let b = n.add_input("b", 5);
        let cat = n.cell(CombOp::Concat, &[a, b], "cat").unwrap();
        let hi = n
            .cell(CombOp::Slice { hi: 7, lo: 5 }, &[cat], "hi")
            .unwrap();
        let lo = n
            .cell(CombOp::Slice { hi: 4, lo: 0 }, &[cat], "lo")
            .unwrap();
        n.mark_output(hi);
        n.mark_output(lo);
        let before = bit_blast(&n).unwrap();
        // Wiring-only operators add no gates beyond the inputs.
        assert_eq!(before.netlist.cells().len(), 0);
        check_equivalent(&n, 32, 5);
    }

    #[test]
    fn flip_flop_counts_match() {
        let mut n = Netlist::new("ffs");
        let d = n.add_input("d", 9);
        let q = n.register(d, BitVec::zero(9), "q").unwrap();
        n.mark_output(q);
        let blasted = bit_blast(&n).unwrap();
        assert_eq!(blasted.netlist.registers().len(), 9);
        assert_eq!(blasted.bit_map[&q].len(), 9);
    }
}
