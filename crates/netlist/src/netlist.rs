//! The synchronous netlist data structure and its builder API.
//!
//! A [`Netlist`] is a synchronous circuit: primary inputs, primary outputs,
//! combinational cells and registers. The structure corresponds directly to
//! the circuits manipulated by the paper — a combinational part plus a bank
//! of registers with initial values — and is the common representation used
//! by the conventional retiming heuristics (`hash-retiming`), the formal
//! synthesis procedure (`hash-core`), the verification baselines
//! (`hash-equiv`) and the benchmark generators (`hash-circuits`).

use crate::cell::{Cell, CombOp, Register, Signal, SignalId};
use crate::error::{NetlistError, Result};
use crate::value::BitVec;
use std::collections::{BTreeMap, VecDeque};

/// Who drives a signal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Driver {
    /// The signal is a primary input.
    Input,
    /// The signal is driven by the cell with this index.
    Cell(usize),
    /// The signal is the output of the register with this index.
    Register(usize),
}

/// A synchronous netlist.
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    signals: Vec<Signal>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    cells: Vec<Cell>,
    registers: Vec<Register>,
}

impl Netlist {
    /// Creates an empty netlist with the given name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            signals: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            cells: Vec::new(),
            registers: Vec::new(),
        }
    }

    /// The netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the netlist.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // -- Construction --------------------------------------------------------

    /// Adds an internal signal and returns its id.
    pub fn add_signal(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(Signal {
            name: name.into(),
            width,
        });
        id
    }

    /// Adds a primary input signal and returns its id.
    pub fn add_input(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        let id = self.add_signal(name, width);
        self.inputs.push(id);
        id
    }

    /// Marks an existing signal as a primary output.
    pub fn mark_output(&mut self, id: SignalId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Adds a combinational cell driving an existing signal.
    ///
    /// # Errors
    ///
    /// Fails if a signal id is unknown or the widths/arity do not fit.
    pub fn add_cell(&mut self, op: CombOp, inputs: Vec<SignalId>, output: SignalId) -> Result<()> {
        let in_widths: Vec<u32> = inputs
            .iter()
            .map(|id| self.width(*id))
            .collect::<Result<_>>()?;
        let out_width = op.output_width(&in_widths)?;
        let actual = self.width(output)?;
        if actual != out_width {
            return Err(NetlistError::WidthMismatch {
                context: format!("output of {op}"),
                expected: out_width,
                found: actual,
            });
        }
        self.cells.push(Cell { op, inputs, output });
        Ok(())
    }

    /// Adds a combinational cell, creating its output signal with the
    /// inferred width, and returns the new signal id.
    ///
    /// # Errors
    ///
    /// Fails if a signal id is unknown or the widths/arity do not fit.
    pub fn cell(
        &mut self,
        op: CombOp,
        inputs: &[SignalId],
        name: impl Into<String>,
    ) -> Result<SignalId> {
        let in_widths: Vec<u32> = inputs
            .iter()
            .map(|id| self.width(*id))
            .collect::<Result<_>>()?;
        let out_width = op.output_width(&in_widths)?;
        let out = self.add_signal(name, out_width);
        self.cells.push(Cell {
            op,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok(out)
    }

    /// Adds a register with data input `input`, initial value `init`, and a
    /// freshly created output signal which is returned.
    ///
    /// # Errors
    ///
    /// Fails if the input id is unknown or the initial value width differs.
    pub fn register(
        &mut self,
        input: SignalId,
        init: BitVec,
        name: impl Into<String>,
    ) -> Result<SignalId> {
        let w = self.width(input)?;
        if w != init.width() {
            return Err(NetlistError::WidthMismatch {
                context: "register initial value".into(),
                expected: w,
                found: init.width(),
            });
        }
        let out = self.add_signal(name, w);
        self.registers.push(Register {
            input,
            output: out,
            init,
        });
        Ok(out)
    }

    /// Adds a register between two existing signals.
    ///
    /// # Errors
    ///
    /// Fails if either id is unknown or the widths differ.
    pub fn add_register(&mut self, input: SignalId, output: SignalId, init: BitVec) -> Result<()> {
        let wi = self.width(input)?;
        let wo = self.width(output)?;
        if wi != wo || wi != init.width() {
            return Err(NetlistError::WidthMismatch {
                context: "register".into(),
                expected: wi,
                found: if wi != wo { wo } else { init.width() },
            });
        }
        self.registers.push(Register {
            input,
            output,
            init,
        });
        Ok(())
    }

    // -- Convenience cell constructors ---------------------------------------

    /// Adds a constant cell.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn constant(&mut self, value: BitVec, name: impl Into<String>) -> Result<SignalId> {
        self.cell(CombOp::Const(value), &[], name)
    }

    /// Adds a bitwise NOT cell.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn not(&mut self, a: SignalId, name: impl Into<String>) -> Result<SignalId> {
        self.cell(CombOp::Not, &[a], name)
    }

    /// Adds a bitwise AND cell.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn and(&mut self, a: SignalId, b: SignalId, name: impl Into<String>) -> Result<SignalId> {
        self.cell(CombOp::And, &[a, b], name)
    }

    /// Adds a bitwise OR cell.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn or(&mut self, a: SignalId, b: SignalId, name: impl Into<String>) -> Result<SignalId> {
        self.cell(CombOp::Or, &[a, b], name)
    }

    /// Adds a bitwise XOR cell.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn xor(&mut self, a: SignalId, b: SignalId, name: impl Into<String>) -> Result<SignalId> {
        self.cell(CombOp::Xor, &[a, b], name)
    }

    /// Adds an adder cell.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn add(&mut self, a: SignalId, b: SignalId, name: impl Into<String>) -> Result<SignalId> {
        self.cell(CombOp::Add, &[a, b], name)
    }

    /// Adds an incrementer cell (the paper's `+1` component).
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn inc(&mut self, a: SignalId, name: impl Into<String>) -> Result<SignalId> {
        self.cell(CombOp::Inc, &[a], name)
    }

    /// Adds an equality comparator cell.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn eq(&mut self, a: SignalId, b: SignalId, name: impl Into<String>) -> Result<SignalId> {
        self.cell(CombOp::Eq, &[a, b], name)
    }

    /// Adds an unsigned greater-or-equal comparator cell.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn ge(&mut self, a: SignalId, b: SignalId, name: impl Into<String>) -> Result<SignalId> {
        self.cell(CombOp::Ge, &[a, b], name)
    }

    /// Adds a two-way multiplexer cell.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn mux(
        &mut self,
        sel: SignalId,
        a: SignalId,
        b: SignalId,
        name: impl Into<String>,
    ) -> Result<SignalId> {
        self.cell(CombOp::Mux, &[sel, a, b], name)
    }

    // -- Accessors ------------------------------------------------------------

    /// The signals of the netlist.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// A signal by id.
    ///
    /// # Errors
    ///
    /// Fails if the id does not belong to this netlist.
    pub fn signal(&self, id: SignalId) -> Result<&Signal> {
        self.signals
            .get(id.index())
            .ok_or(NetlistError::UnknownSignal { id: id.index() })
    }

    /// The width of a signal.
    ///
    /// # Errors
    ///
    /// Fails if the id does not belong to this netlist.
    pub fn width(&self, id: SignalId) -> Result<u32> {
        Ok(self.signal(id)?.width)
    }

    /// Finds a signal by name.
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| SignalId(i as u32))
    }

    /// The primary inputs.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// The primary outputs.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// The combinational cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The registers.
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// Iterator over all signal ids.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.signals.len() as u32).map(SignalId)
    }

    /// Whether every cell belongs to the gate-level subset and every signal
    /// is one bit wide.
    pub fn is_gate_level(&self) -> bool {
        self.signals.iter().all(|s| s.width == 1)
            && self.cells.iter().all(|c| c.op.is_gate_level_op())
    }

    // -- Validation and analysis ----------------------------------------------

    /// Computes the driver of every signal.
    ///
    /// # Errors
    ///
    /// Fails if a signal has several drivers or a referenced id is unknown.
    pub fn drivers(&self) -> Result<Vec<Option<Driver>>> {
        let mut drivers: Vec<Option<Driver>> = vec![None; self.signals.len()];
        let mut set = |id: SignalId, d: Driver, signals: &[Signal]| -> Result<()> {
            let slot = drivers
                .get_mut(id.index())
                .ok_or(NetlistError::UnknownSignal { id: id.index() })?;
            if slot.is_some() {
                return Err(NetlistError::MultipleDrivers {
                    signal: signals[id.index()].name.clone(),
                });
            }
            *slot = Some(d);
            Ok(())
        };
        for id in &self.inputs {
            set(*id, Driver::Input, &self.signals)?;
        }
        for (i, c) in self.cells.iter().enumerate() {
            set(c.output, Driver::Cell(i), &self.signals)?;
        }
        for (i, r) in self.registers.iter().enumerate() {
            set(r.output, Driver::Register(i), &self.signals)?;
        }
        Ok(drivers)
    }

    /// Validates the netlist: every signal has exactly one driver, every
    /// referenced id exists, widths fit, and the combinational part is
    /// acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found.
    pub fn validate(&self) -> Result<()> {
        let drivers = self.drivers()?;
        for (i, d) in drivers.iter().enumerate() {
            if d.is_none() {
                return Err(NetlistError::Undriven {
                    signal: self.signals[i].name.clone(),
                });
            }
        }
        // Check referenced ids and widths.
        for c in &self.cells {
            let widths: Vec<u32> = c
                .inputs
                .iter()
                .map(|id| self.width(*id))
                .collect::<Result<_>>()?;
            let out = c.op.output_width(&widths)?;
            if out != self.width(c.output)? {
                return Err(NetlistError::WidthMismatch {
                    context: format!("cell {} output", c.op),
                    expected: out,
                    found: self.width(c.output)?,
                });
            }
        }
        for r in &self.registers {
            let wi = self.width(r.input)?;
            if wi != self.width(r.output)? || wi != r.init.width() {
                return Err(NetlistError::WidthMismatch {
                    context: "register".into(),
                    expected: wi,
                    found: r.init.width(),
                });
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// A topological order of the combinational cells (cell indices): each
    /// cell appears after all cells driving its inputs.
    ///
    /// # Errors
    ///
    /// Fails if the combinational part contains a cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>> {
        // Map from signal to driving cell (registers and inputs are sources).
        let mut producer: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, c) in self.cells.iter().enumerate() {
            producer.insert(c.output.index(), i);
        }
        // Dependency counts between cells.
        let mut deps: Vec<usize> = vec![0; self.cells.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.cells.len()];
        for (i, c) in self.cells.iter().enumerate() {
            for inp in &c.inputs {
                if let Some(&p) = producer.get(&inp.index()) {
                    deps[i] += 1;
                    dependents[p].push(i);
                }
            }
        }
        let mut queue: VecDeque<usize> = (0..self.cells.len()).filter(|i| deps[*i] == 0).collect();
        let mut order = Vec::with_capacity(self.cells.len());
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &d in &dependents[i] {
                deps[d] -= 1;
                if deps[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        if order.len() != self.cells.len() {
            let blocked = (0..self.cells.len())
                .find(|i| deps[*i] > 0)
                .expect("a blocked cell exists when the order is incomplete");
            return Err(NetlistError::CombinationalCycle {
                signal: self.signals[self.cells[blocked].output.index()]
                    .name
                    .clone(),
            });
        }
        Ok(order)
    }

    /// The set of cell indices in the transitive fan-in cone of the given
    /// signals, stopping at register outputs and primary inputs.
    pub fn comb_cone(&self, roots: &[SignalId]) -> Vec<usize> {
        let mut producer: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, c) in self.cells.iter().enumerate() {
            producer.insert(c.output.index(), i);
        }
        let mut seen = vec![false; self.cells.len()];
        let mut stack: Vec<SignalId> = roots.to_vec();
        while let Some(s) = stack.pop() {
            if let Some(&ci) = producer.get(&s.index()) {
                if !seen[ci] {
                    seen[ci] = true;
                    stack.extend(self.cells[ci].inputs.iter().copied());
                }
            }
        }
        (0..self.cells.len()).filter(|i| seen[*i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_counter(width: u32) -> Netlist {
        // A counter: q' = q + 1, output q.
        let mut n = Netlist::new("counter");
        let q = n.add_signal("q", width);
        let next = n.inc(q, "next").unwrap();
        n.add_register(next, q, BitVec::zero(width)).unwrap();
        n.mark_output(q);
        n
    }

    #[test]
    fn build_and_validate_counter() {
        let n = simple_counter(4);
        n.validate().expect("counter is well formed");
        assert_eq!(n.registers().len(), 1);
        assert_eq!(n.cells().len(), 1);
        assert_eq!(n.outputs().len(), 1);
        assert!(n.find_signal("next").is_some());
        assert!(n.find_signal("missing").is_none());
    }

    #[test]
    fn undriven_and_multiple_drivers_detected() {
        let mut n = Netlist::new("bad");
        let a = n.add_signal("a", 4);
        n.mark_output(a);
        assert!(matches!(n.validate(), Err(NetlistError::Undriven { .. })));

        let mut m = Netlist::new("bad2");
        let x = m.add_input("x", 4);
        let y = m.add_signal("y", 4);
        m.add_cell(CombOp::Inc, vec![x], y).unwrap();
        m.add_cell(CombOp::Not, vec![x], y).unwrap();
        assert!(matches!(
            m.validate(),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn width_checks_on_cells_and_registers() {
        let mut n = Netlist::new("w");
        let a = n.add_input("a", 4);
        let b = n.add_input("b", 8);
        assert!(n.add(a, b, "sum").is_err());
        assert!(n.register(a, BitVec::zero(8), "r").is_err());
        let narrow = n.add_signal("narrow", 2);
        assert!(n.add_cell(CombOp::Inc, vec![a], narrow).is_err());
    }

    #[test]
    fn combinational_cycles_are_detected() {
        let mut n = Netlist::new("cycle");
        let a = n.add_signal("a", 1);
        let b = n.add_signal("b", 1);
        n.add_cell(CombOp::Not, vec![a], b).unwrap();
        n.add_cell(CombOp::Not, vec![b], a).unwrap();
        assert!(matches!(
            n.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn registers_break_cycles() {
        let n = simple_counter(4);
        // The feedback loop goes through the register, so there is no
        // combinational cycle.
        assert!(n.topo_order().is_ok());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut n = Netlist::new("topo");
        let a = n.add_input("a", 4);
        let b = n.add_input("b", 4);
        let s = n.add(a, b, "s").unwrap();
        let t = n.inc(s, "t").unwrap();
        let u = n.xor(t, a, "u").unwrap();
        n.mark_output(u);
        let order = n.topo_order().unwrap();
        let pos = |ci: usize| order.iter().position(|x| *x == ci).unwrap();
        assert!(pos(0) < pos(1), "adder before incrementer");
        assert!(pos(1) < pos(2), "incrementer before xor");
    }

    #[test]
    fn comb_cone_stops_at_registers() {
        let mut n = Netlist::new("cone");
        let a = n.add_input("a", 4);
        let inc = n.inc(a, "inc").unwrap();
        let q = n.register(inc, BitVec::zero(4), "q").unwrap();
        let out = n.inc(q, "out").unwrap();
        n.mark_output(out);
        let cone = n.comb_cone(&[out]);
        assert_eq!(cone.len(), 1, "the cone must stop at the register output");
        let cone_all = n.comb_cone(&[out, inc]);
        assert_eq!(cone_all.len(), 2);
    }

    #[test]
    fn gate_level_detection() {
        let mut n = Netlist::new("g");
        let a = n.add_input("a", 1);
        let b = n.add_input("b", 1);
        let c = n.and(a, b, "c").unwrap();
        n.mark_output(c);
        assert!(n.is_gate_level());
        let mut m = Netlist::new("rt");
        let x = m.add_input("x", 4);
        let y = m.inc(x, "y").unwrap();
        m.mark_output(y);
        assert!(!m.is_gate_level());
    }
}
