//! Signals, combinational operators, cells and registers.
//!
//! A netlist is made of *signals* (named wires with a bit width), *cells*
//! (instances of combinational operators driving one signal) and
//! *registers* (D flip-flop banks with an initial value). The operator set
//! covers the RT-level components used by the paper's example circuit
//! (incrementer, comparator, multiplexer) plus the usual boolean and
//! arithmetic operators, and a gate-level subset used after bit-blasting.

use crate::error::{NetlistError, Result};
use crate::value::BitVec;
use std::fmt;

/// An opaque handle to a signal within a [`crate::netlist::Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// The raw index of the signal.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A named wire with a bit width.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signal {
    /// The signal's name (unique within a netlist).
    pub name: String,
    /// The signal's width in bits.
    pub width: u32,
}

/// A combinational operator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CombOp {
    /// A constant value (no operands).
    Const(BitVec),
    /// Bitwise negation (1 operand).
    Not,
    /// Bitwise AND (2 operands of equal width).
    And,
    /// Bitwise OR (2 operands of equal width).
    Or,
    /// Bitwise XOR (2 operands of equal width).
    Xor,
    /// Addition modulo `2^w` (2 operands of equal width).
    Add,
    /// Subtraction modulo `2^w` (2 operands of equal width).
    Sub,
    /// Increment modulo `2^w` (1 operand) — the paper's `+1` component.
    Inc,
    /// Equality comparison (2 operands, 1-bit result).
    Eq,
    /// Unsigned less-than (2 operands, 1-bit result).
    Lt,
    /// Unsigned greater-or-equal (2 operands, 1-bit result).
    Ge,
    /// Two-way multiplexer (3 operands: select, then, else).
    Mux,
    /// Concatenation (2 operands: high part, low part).
    Concat,
    /// Bit slice `[hi:lo]` of a single operand.
    Slice {
        /// The most significant selected bit (inclusive).
        hi: u32,
        /// The least significant selected bit (inclusive).
        lo: u32,
    },
}

impl CombOp {
    /// The number of operands the operator takes.
    pub fn arity(&self) -> usize {
        match self {
            CombOp::Const(_) => 0,
            CombOp::Not | CombOp::Inc | CombOp::Slice { .. } => 1,
            CombOp::And
            | CombOp::Or
            | CombOp::Xor
            | CombOp::Add
            | CombOp::Sub
            | CombOp::Eq
            | CombOp::Lt
            | CombOp::Ge
            | CombOp::Concat => 2,
            CombOp::Mux => 3,
        }
    }

    /// A short name used in diagnostics and statistics.
    pub fn name(&self) -> &'static str {
        match self {
            CombOp::Const(_) => "const",
            CombOp::Not => "not",
            CombOp::And => "and",
            CombOp::Or => "or",
            CombOp::Xor => "xor",
            CombOp::Add => "add",
            CombOp::Sub => "sub",
            CombOp::Inc => "inc",
            CombOp::Eq => "eq",
            CombOp::Lt => "lt",
            CombOp::Ge => "ge",
            CombOp::Mux => "mux",
            CombOp::Concat => "concat",
            CombOp::Slice { .. } => "slice",
        }
    }

    /// Computes the output width of the operator given its operand widths.
    ///
    /// # Errors
    ///
    /// Fails if the operand count or widths are incompatible.
    pub fn output_width(&self, operand_widths: &[u32]) -> Result<u32> {
        if operand_widths.len() != self.arity() {
            return Err(NetlistError::ArityMismatch {
                op: self.name().to_string(),
                expected: self.arity(),
                found: operand_widths.len(),
            });
        }
        let same = |a: u32, b: u32, ctx: &str| -> Result<u32> {
            if a == b {
                Ok(a)
            } else {
                Err(NetlistError::WidthMismatch {
                    context: ctx.to_string(),
                    expected: a,
                    found: b,
                })
            }
        };
        match self {
            CombOp::Const(v) => Ok(v.width()),
            CombOp::Not | CombOp::Inc => Ok(operand_widths[0]),
            CombOp::And | CombOp::Or | CombOp::Xor | CombOp::Add | CombOp::Sub => {
                same(operand_widths[0], operand_widths[1], self.name())
            }
            CombOp::Eq | CombOp::Lt | CombOp::Ge => {
                same(operand_widths[0], operand_widths[1], self.name())?;
                Ok(1)
            }
            CombOp::Mux => {
                if operand_widths[0] != 1 {
                    return Err(NetlistError::WidthMismatch {
                        context: "mux select".into(),
                        expected: 1,
                        found: operand_widths[0],
                    });
                }
                same(operand_widths[1], operand_widths[2], "mux")
            }
            CombOp::Concat => Ok(operand_widths[0] + operand_widths[1]),
            CombOp::Slice { hi, lo } => {
                if *lo > *hi || *hi >= operand_widths[0] {
                    Err(NetlistError::Structure {
                        message: format!(
                            "invalid slice [{hi}:{lo}] of a {}-bit signal",
                            operand_widths[0]
                        ),
                    })
                } else {
                    Ok(hi - lo + 1)
                }
            }
        }
    }

    /// Evaluates the operator on concrete values.
    ///
    /// # Errors
    ///
    /// Fails if the operand count or widths are incompatible.
    pub fn eval(&self, operands: &[BitVec]) -> Result<BitVec> {
        if operands.len() != self.arity() {
            return Err(NetlistError::ArityMismatch {
                op: self.name().to_string(),
                expected: self.arity(),
                found: operands.len(),
            });
        }
        match self {
            CombOp::Const(v) => Ok(*v),
            CombOp::Not => Ok(operands[0].not()),
            CombOp::And => operands[0].and(&operands[1]),
            CombOp::Or => operands[0].or(&operands[1]),
            CombOp::Xor => operands[0].xor(&operands[1]),
            CombOp::Add => operands[0].add(&operands[1]),
            CombOp::Sub => operands[0].sub(&operands[1]),
            CombOp::Inc => Ok(operands[0].inc()),
            CombOp::Eq => operands[0].eq_bit(&operands[1]),
            CombOp::Lt => operands[0].lt_bit(&operands[1]),
            CombOp::Ge => operands[0].ge_bit(&operands[1]),
            CombOp::Mux => BitVec::mux(&operands[0], &operands[1], &operands[2]),
            CombOp::Concat => operands[0].concat(&operands[1]),
            CombOp::Slice { hi, lo } => operands[0].slice(*hi, *lo),
        }
    }

    /// Whether the operator belongs to the gate-level subset (single-bit
    /// boolean operators, single-bit constants and single-bit multiplexers).
    pub fn is_gate_level_op(&self) -> bool {
        matches!(
            self,
            CombOp::Not | CombOp::And | CombOp::Or | CombOp::Xor | CombOp::Mux | CombOp::Const(_)
        )
    }

    /// An estimate of the number of two-input gates needed to realise the
    /// operator on `w`-bit operands (used for the gate counts reported in
    /// the experiment tables).
    pub fn gate_cost(&self, width: u32) -> usize {
        let w = width as usize;
        match self {
            CombOp::Const(_) => 0,
            CombOp::Not => w,
            CombOp::And | CombOp::Or | CombOp::Xor => w,
            // Ripple-carry structures: ~5 gates per full-adder bit.
            CombOp::Add | CombOp::Sub => 5 * w,
            CombOp::Inc => 2 * w,
            // XNOR per bit plus an AND-reduce tree.
            CombOp::Eq => 2 * w.max(1) - 1,
            CombOp::Lt | CombOp::Ge => 3 * w,
            CombOp::Mux => 3 * w,
            CombOp::Concat | CombOp::Slice { .. } => 0,
        }
    }
}

impl fmt::Display for CombOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombOp::Const(v) => write!(f, "const({v})"),
            CombOp::Slice { hi, lo } => write!(f, "slice[{hi}:{lo}]"),
            other => write!(f, "{}", other.name()),
        }
    }
}

/// A combinational cell: an operator instance driving a single signal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cell {
    /// The operator.
    pub op: CombOp,
    /// The operand signals (in operator order).
    pub inputs: Vec<SignalId>,
    /// The driven signal.
    pub output: SignalId,
}

/// A register bank (D flip-flops) with an initial value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Register {
    /// The data input (D).
    pub input: SignalId,
    /// The registered output (Q).
    pub output: SignalId,
    /// The initial value loaded at reset.
    pub init: BitVec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_names() {
        assert_eq!(CombOp::Const(BitVec::zero(4)).arity(), 0);
        assert_eq!(CombOp::Inc.arity(), 1);
        assert_eq!(CombOp::Add.arity(), 2);
        assert_eq!(CombOp::Mux.arity(), 3);
        assert_eq!(CombOp::Mux.name(), "mux");
        assert_eq!(CombOp::Slice { hi: 3, lo: 0 }.to_string(), "slice[3:0]");
    }

    #[test]
    fn output_width_inference() {
        assert_eq!(CombOp::Add.output_width(&[8, 8]).unwrap(), 8);
        assert!(CombOp::Add.output_width(&[8, 4]).is_err());
        assert!(CombOp::Add.output_width(&[8]).is_err());
        assert_eq!(CombOp::Eq.output_width(&[8, 8]).unwrap(), 1);
        assert_eq!(CombOp::Mux.output_width(&[1, 8, 8]).unwrap(), 8);
        assert!(CombOp::Mux.output_width(&[2, 8, 8]).is_err());
        assert_eq!(CombOp::Concat.output_width(&[3, 5]).unwrap(), 8);
        assert_eq!(
            CombOp::Slice { hi: 6, lo: 3 }.output_width(&[8]).unwrap(),
            4
        );
        assert!(CombOp::Slice { hi: 8, lo: 3 }.output_width(&[8]).is_err());
        assert_eq!(
            CombOp::Const(BitVec::new(5, 3).unwrap())
                .output_width(&[])
                .unwrap(),
            3
        );
    }

    #[test]
    fn evaluation_matches_bitvec_semantics() {
        let a = BitVec::new(10, 4).unwrap();
        let b = BitVec::new(7, 4).unwrap();
        assert_eq!(CombOp::Add.eval(&[a, b]).unwrap().as_u64(), 1);
        assert_eq!(CombOp::Sub.eval(&[a, b]).unwrap().as_u64(), 3);
        assert_eq!(CombOp::Inc.eval(&[a]).unwrap().as_u64(), 11);
        assert!(CombOp::Lt.eval(&[b, a]).unwrap().is_true());
        assert!(CombOp::Ge.eval(&[a, b]).unwrap().is_true());
        assert!(!CombOp::Eq.eval(&[a, b]).unwrap().is_true());
        let sel = BitVec::bit(true);
        assert_eq!(CombOp::Mux.eval(&[sel, a, b]).unwrap(), a);
        assert!(CombOp::Add.eval(&[a]).is_err());
    }

    #[test]
    fn gate_level_classification_and_cost() {
        assert!(CombOp::And.is_gate_level_op());
        assert!(CombOp::Mux.is_gate_level_op());
        assert!(!CombOp::Add.is_gate_level_op());
        assert_eq!(CombOp::Add.gate_cost(8), 40);
        assert_eq!(CombOp::Concat.gate_cost(8), 0);
        assert!(CombOp::Eq.gate_cost(8) > 0);
    }
}
