//! Circuit statistics: the flip-flop and gate counts reported in the
//! paper's experiment tables.

use crate::netlist::Netlist;
use std::fmt;

/// Size statistics of a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stats {
    /// The netlist name.
    pub name: String,
    /// Number of primary input bits.
    pub input_bits: usize,
    /// Number of primary output bits.
    pub output_bits: usize,
    /// Number of flip-flops (register bits).
    pub flip_flops: usize,
    /// Number of RT-level cells.
    pub cells: usize,
    /// Estimated number of two-input gates after bit-blasting.
    pub gate_estimate: usize,
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} flip-flops, {} cells (~{} gates)",
            self.name,
            self.input_bits,
            self.output_bits,
            self.flip_flops,
            self.cells,
            self.gate_estimate
        )
    }
}

/// Computes the size statistics of a netlist.
pub fn stats(netlist: &Netlist) -> Stats {
    let bit_count = |ids: &[crate::cell::SignalId]| {
        ids.iter()
            .map(|id| netlist.width(*id).unwrap_or(0) as usize)
            .sum()
    };
    let flip_flops = netlist
        .registers()
        .iter()
        .map(|r| r.init.width() as usize)
        .sum();
    let gate_estimate = netlist
        .cells()
        .iter()
        .map(|c| {
            let w = c
                .inputs
                .first()
                .and_then(|id| netlist.width(*id).ok())
                .unwrap_or_else(|| netlist.width(c.output).unwrap_or(1));
            c.op.gate_cost(w)
        })
        .sum();
    Stats {
        name: netlist.name().to_string(),
        input_bits: bit_count(netlist.inputs()),
        output_bits: bit_count(netlist.outputs()),
        flip_flops,
        cells: netlist.cells().len(),
        gate_estimate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BitVec;

    #[test]
    fn stats_count_bits_not_signals() {
        let mut n = Netlist::new("s");
        let a = n.add_input("a", 8);
        let b = n.add_input("b", 8);
        let s = n.add(a, b, "s").unwrap();
        let q = n.register(s, BitVec::zero(8), "q").unwrap();
        n.mark_output(q);
        let st = stats(&n);
        assert_eq!(st.input_bits, 16);
        assert_eq!(st.output_bits, 8);
        assert_eq!(st.flip_flops, 8);
        assert_eq!(st.cells, 1);
        assert_eq!(st.gate_estimate, 40);
        assert!(st.to_string().contains("flip-flops"));
    }

    #[test]
    fn gate_level_stats_match_structure() {
        let mut n = Netlist::new("g");
        let a = n.add_input("a", 1);
        let b = n.add_input("b", 1);
        let c = n.and(a, b, "c").unwrap();
        let d = n.not(c, "d").unwrap();
        n.mark_output(d);
        let st = stats(&n);
        assert_eq!(st.cells, 2);
        assert_eq!(st.gate_estimate, 2);
        assert_eq!(st.flip_flops, 0);
    }
}
