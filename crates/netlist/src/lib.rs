//! # hash-netlist
//!
//! Synchronous circuit representation for the DATE'97 HASH retiming
//! reproduction: RT-level and gate-level netlists, cycle-accurate
//! simulation, bit-blasting and size statistics.
//!
//! A [`Netlist`] consists of primary inputs/outputs, combinational
//! [`Cell`]s and [`Register`]s with initial
//! values — exactly the "combinational part plus registers" view of a
//! synchronous circuit the paper's Automata theory formalises. The same
//! structure is shared by:
//!
//! * the conventional retiming heuristics (`hash-retiming`),
//! * the formal synthesis procedure (`hash-core`), which translates the
//!   netlist into a logical term and back,
//! * the post-synthesis verification baselines (`hash-equiv`), which work
//!   on the bit-blasted gate-level form, and
//! * the benchmark circuit generators (`hash-circuits`).
//!
//! ## Example
//!
//! ```
//! use hash_netlist::prelude::*;
//!
//! # fn main() -> std::result::Result<(), NetlistError> {
//! // A 4-bit counter: q' = q + 1.
//! let mut n = Netlist::new("counter");
//! let q = n.add_signal("q", 4);
//! let next = n.inc(q, "next")?;
//! n.add_register(next, q, BitVec::zero(4))?;
//! n.mark_output(q);
//!
//! let mut sim = Simulator::new(&n)?;
//! assert_eq!(sim.step(&[])?[0].as_u64(), 0);
//! assert_eq!(sim.step(&[])?[0].as_u64(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cell;
pub mod error;
pub mod gate;
pub mod netlist;
pub mod sim;
pub mod stats;
pub mod value;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::cell::{Cell, CombOp, Register, Signal, SignalId};
    pub use crate::error::{NetlistError, Result};
    pub use crate::gate::{bit_blast, BitBlasted};
    pub use crate::netlist::{Driver, Netlist};
    pub use crate::sim::{random_stimuli, traces_equal, Simulator};
    pub use crate::stats::{stats, Stats};
    pub use crate::value::BitVec;
}

pub use cell::{Cell, CombOp, Register, Signal, SignalId};
pub use error::NetlistError;
pub use netlist::Netlist;
pub use sim::Simulator;
pub use value::BitVec;
