//! Cycle-accurate simulation of synchronous netlists.
//!
//! The simulator is the executable semantics against which everything else
//! in the reproduction is cross-checked: the conventional retiming of
//! `hash-retiming`, the formal retiming of `hash-core` (whose theorems are
//! additionally validated by simulating both sides) and the verification
//! baselines of `hash-equiv`.

use crate::cell::SignalId;
use crate::error::{NetlistError, Result};
use crate::netlist::Netlist;
use crate::value::BitVec;
use std::collections::BTreeMap;

/// A cycle-accurate simulator for a [`Netlist`].
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<usize>,
    /// Current register values, indexed like `netlist.registers()`.
    state: Vec<BitVec>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator, validating the netlist and computing the
    /// evaluation order. Registers start at their initial values.
    ///
    /// # Errors
    ///
    /// Fails if the netlist is structurally invalid.
    pub fn new(netlist: &'a Netlist) -> Result<Simulator<'a>> {
        netlist.validate()?;
        let order = netlist.topo_order()?;
        let state = netlist.registers().iter().map(|r| r.init).collect();
        Ok(Simulator {
            netlist,
            order,
            state,
        })
    }

    /// Resets all registers to their initial values.
    pub fn reset(&mut self) {
        self.state = self.netlist.registers().iter().map(|r| r.init).collect();
    }

    /// The current register values (in register order).
    pub fn state(&self) -> &[BitVec] {
        &self.state
    }

    /// Overrides the current register values (used by reachability-style
    /// analyses). The values must match the register widths.
    ///
    /// # Errors
    ///
    /// Fails on a count or width mismatch.
    pub fn set_state(&mut self, state: &[BitVec]) -> Result<()> {
        if state.len() != self.state.len() {
            return Err(NetlistError::BadStimulus {
                message: format!(
                    "expected {} register values, got {}",
                    self.state.len(),
                    state.len()
                ),
            });
        }
        for (r, v) in self.netlist.registers().iter().zip(state.iter()) {
            if r.init.width() != v.width() {
                return Err(NetlistError::BadStimulus {
                    message: "register value width mismatch".to_string(),
                });
            }
        }
        self.state = state.to_vec();
        Ok(())
    }

    /// Evaluates all signal values for the current state and the given
    /// primary-input values (in `netlist.inputs()` order) without advancing
    /// the state.
    ///
    /// # Errors
    ///
    /// Fails if the inputs do not match the interface.
    pub fn evaluate(&self, inputs: &[BitVec]) -> Result<BTreeMap<SignalId, BitVec>> {
        let n = self.netlist;
        if inputs.len() != n.inputs().len() {
            return Err(NetlistError::BadStimulus {
                message: format!(
                    "expected {} input values, got {}",
                    n.inputs().len(),
                    inputs.len()
                ),
            });
        }
        let mut values: BTreeMap<SignalId, BitVec> = BTreeMap::new();
        for (id, v) in n.inputs().iter().zip(inputs.iter()) {
            if n.width(*id)? != v.width() {
                return Err(NetlistError::BadStimulus {
                    message: format!(
                        "input {} expects width {}, got {}",
                        n.signal(*id)?.name,
                        n.width(*id)?,
                        v.width()
                    ),
                });
            }
            values.insert(*id, *v);
        }
        for (r, v) in n.registers().iter().zip(self.state.iter()) {
            values.insert(r.output, *v);
        }
        for &ci in &self.order {
            let cell = &n.cells()[ci];
            let operands: Vec<BitVec> = cell
                .inputs
                .iter()
                .map(|id| {
                    values.get(id).copied().ok_or(NetlistError::Undriven {
                        signal: n.signals()[id.index()].name.clone(),
                    })
                })
                .collect::<Result<_>>()?;
            let out = cell.op.eval(&operands)?;
            values.insert(cell.output, out);
        }
        Ok(values)
    }

    /// Performs one clock cycle: evaluates the combinational logic with the
    /// given inputs, returns the primary-output values, and advances the
    /// registers.
    ///
    /// # Errors
    ///
    /// Fails if the inputs do not match the interface.
    pub fn step(&mut self, inputs: &[BitVec]) -> Result<Vec<BitVec>> {
        let values = self.evaluate(inputs)?;
        let outputs = self
            .netlist
            .outputs()
            .iter()
            .map(|id| {
                values.get(id).copied().ok_or(NetlistError::Undriven {
                    signal: self.netlist.signals()[id.index()].name.clone(),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let next_state = self
            .netlist
            .registers()
            .iter()
            .map(|r| {
                values.get(&r.input).copied().ok_or(NetlistError::Undriven {
                    signal: self.netlist.signals()[r.input.index()].name.clone(),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        self.state = next_state;
        Ok(outputs)
    }

    /// Runs a sequence of input vectors from the initial state and returns
    /// the output trace.
    ///
    /// # Errors
    ///
    /// Fails if any stimulus vector does not match the interface.
    pub fn run(&mut self, stimuli: &[Vec<BitVec>]) -> Result<Vec<Vec<BitVec>>> {
        self.reset();
        stimuli.iter().map(|inp| self.step(inp)).collect()
    }
}

/// Checks that two netlists with the same interface produce identical output
/// traces on the given stimuli, starting from their initial states.
///
/// This is the *simulation-based validation* the paper contrasts with formal
/// methods in Section II; it is used in the test-suite to cross-check the
/// formal results.
///
/// # Errors
///
/// Fails if a netlist is invalid or the stimuli do not match an interface.
pub fn traces_equal(a: &Netlist, b: &Netlist, stimuli: &[Vec<BitVec>]) -> Result<bool> {
    let mut sa = Simulator::new(a)?;
    let mut sb = Simulator::new(b)?;
    let ta = sa.run(stimuli)?;
    let tb = sb.run(stimuli)?;
    Ok(ta == tb)
}

/// Generates a deterministic pseudo-random stimulus sequence for a netlist
/// (used by tests and by the simulation-based baseline).
pub fn random_stimuli(netlist: &Netlist, cycles: usize, seed: u64) -> Vec<Vec<BitVec>> {
    // A small xorshift generator keeps this crate dependency-free.
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..cycles)
        .map(|_| {
            netlist
                .inputs()
                .iter()
                .map(|id| {
                    let w = netlist.width(*id).unwrap_or(1);
                    BitVec::truncate(next(), w)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BitVec;

    fn counter(width: u32, init: u64) -> Netlist {
        let mut n = Netlist::new("counter");
        let q = n.add_signal("q", width);
        let next = n.inc(q, "next").unwrap();
        n.add_register(next, q, BitVec::new(init, width).unwrap())
            .unwrap();
        n.mark_output(q);
        n
    }

    #[test]
    fn counter_counts() {
        let n = counter(4, 0);
        let mut sim = Simulator::new(&n).unwrap();
        let outs: Vec<u64> = (0..20)
            .map(|_| sim.step(&[]).unwrap()[0].as_u64())
            .collect();
        let expected: Vec<u64> = (0..20).map(|i| i % 16).collect();
        assert_eq!(outs, expected);
    }

    #[test]
    fn reset_restores_initial_state() {
        let n = counter(4, 7);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step(&[]).unwrap();
        sim.step(&[]).unwrap();
        assert_eq!(sim.state()[0].as_u64(), 9);
        sim.reset();
        assert_eq!(sim.state()[0].as_u64(), 7);
    }

    #[test]
    fn step_checks_inputs() {
        let mut n = Netlist::new("io");
        let a = n.add_input("a", 4);
        let b = n.inc(a, "b").unwrap();
        n.mark_output(b);
        let mut sim = Simulator::new(&n).unwrap();
        assert!(sim.step(&[]).is_err());
        assert!(sim.step(&[BitVec::zero(8)]).is_err());
        let out = sim.step(&[BitVec::new(3, 4).unwrap()]).unwrap();
        assert_eq!(out[0].as_u64(), 4);
    }

    #[test]
    fn combinational_mux_circuit() {
        // out = if a >= b then a + 1 else b
        let mut n = Netlist::new("maxinc");
        let a = n.add_input("a", 8);
        let b = n.add_input("b", 8);
        let cmp = n.ge(a, b, "cmp").unwrap();
        let ai = n.inc(a, "ai").unwrap();
        let out = n.mux(cmp, ai, b, "out").unwrap();
        n.mark_output(out);
        let mut sim = Simulator::new(&n).unwrap();
        let o1 = sim
            .step(&[BitVec::new(5, 8).unwrap(), BitVec::new(3, 8).unwrap()])
            .unwrap();
        assert_eq!(o1[0].as_u64(), 6);
        let o2 = sim
            .step(&[BitVec::new(2, 8).unwrap(), BitVec::new(9, 8).unwrap()])
            .unwrap();
        assert_eq!(o2[0].as_u64(), 9);
    }

    #[test]
    fn set_state_validation() {
        let n = counter(4, 0);
        let mut sim = Simulator::new(&n).unwrap();
        assert!(sim.set_state(&[]).is_err());
        assert!(sim.set_state(&[BitVec::zero(8)]).is_err());
        sim.set_state(&[BitVec::new(12, 4).unwrap()]).unwrap();
        assert_eq!(sim.step(&[]).unwrap()[0].as_u64(), 12);
    }

    #[test]
    fn traces_equal_detects_difference() {
        let a = counter(4, 0);
        let b = counter(4, 0);
        let c = counter(4, 1);
        let stim: Vec<Vec<BitVec>> = (0..10).map(|_| Vec::new()).collect();
        assert!(traces_equal(&a, &b, &stim).unwrap());
        assert!(!traces_equal(&a, &c, &stim).unwrap());
    }

    #[test]
    fn random_stimuli_are_deterministic() {
        let mut n = Netlist::new("io");
        let a = n.add_input("a", 6);
        let b = n.inc(a, "b").unwrap();
        n.mark_output(b);
        let s1 = random_stimuli(&n, 16, 42);
        let s2 = random_stimuli(&n, 16, 42);
        let s3 = random_stimuli(&n, 16, 43);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert!(s1.iter().all(|v| v[0].width() == 6));
    }
}
