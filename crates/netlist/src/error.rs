//! Error type for netlist construction, validation and simulation.

use std::fmt;

/// Errors raised while building, validating or simulating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A signal id was used that does not belong to the netlist.
    UnknownSignal {
        /// The offending id (raw index).
        id: usize,
    },
    /// A signal is driven by more than one cell/register/input.
    MultipleDrivers {
        /// The signal's name.
        signal: String,
    },
    /// A signal has no driver.
    Undriven {
        /// The signal's name.
        signal: String,
    },
    /// An operation was applied to signals of incompatible widths.
    WidthMismatch {
        /// Description of the context.
        context: String,
        /// Expected width.
        expected: u32,
        /// Actual width.
        found: u32,
    },
    /// An operation received the wrong number of operands.
    ArityMismatch {
        /// The operation name.
        op: String,
        /// Expected operand count.
        expected: usize,
        /// Actual operand count.
        found: usize,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle {
        /// A signal participating in the cycle.
        signal: String,
    },
    /// A bit-vector value does not fit the requested width.
    ValueOutOfRange {
        /// The value.
        value: u64,
        /// The width it was supposed to fit in.
        width: u32,
    },
    /// Width 0 or above the supported maximum was requested.
    UnsupportedWidth {
        /// The requested width.
        width: u32,
    },
    /// Simulation was given inputs that do not match the netlist interface.
    BadStimulus {
        /// Description of the mismatch.
        message: String,
    },
    /// Generic structural error.
    Structure {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownSignal { id } => write!(f, "unknown signal id {id}"),
            NetlistError::MultipleDrivers { signal } => {
                write!(f, "signal {signal} has multiple drivers")
            }
            NetlistError::Undriven { signal } => write!(f, "signal {signal} has no driver"),
            NetlistError::WidthMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "width mismatch in {context}: expected {expected}, found {found}"
            ),
            NetlistError::ArityMismatch {
                op,
                expected,
                found,
            } => write!(
                f,
                "operation {op} expects {expected} operands, found {found}"
            ),
            NetlistError::CombinationalCycle { signal } => {
                write!(f, "combinational cycle through signal {signal}")
            }
            NetlistError::ValueOutOfRange { value, width } => {
                write!(f, "value {value} does not fit in {width} bits")
            }
            NetlistError::UnsupportedWidth { width } => {
                write!(f, "unsupported bit-vector width {width} (must be 1..=64)")
            }
            NetlistError::BadStimulus { message } => write!(f, "bad stimulus: {message}"),
            NetlistError::Structure { message } => write!(f, "netlist structure error: {message}"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NetlistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NetlistError::WidthMismatch {
            context: "add".into(),
            expected: 8,
            found: 4,
        };
        let s = e.to_string();
        assert!(s.contains("add") && s.contains('8') && s.contains('4'));
        assert!(NetlistError::Undriven { signal: "x".into() }
            .to_string()
            .contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
