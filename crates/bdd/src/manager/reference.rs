//! The textbook ROBDD manager kept as the differential-testing oracle.
//!
//! This is the PR-2-era minimal implementation: two terminal nodes, no
//! complement edges, unbounded per-operation `HashMap` caches, no garbage
//! collection and a fixed variable order. It exists solely so that
//! `tests/manager_properties.rs` can pin the production
//! [`crate::BddManager`] against an independent implementation of the same
//! semantics (mirroring the `hash_logic::term::reference` pattern). Do not
//! use it for anything performance-sensitive.

use crate::error::{BddError, Result};
use std::collections::HashMap;

/// A reference to a BDD node within a reference [`BddManager`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant FALSE.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant TRUE.
    pub const TRUE: BddRef = BddRef(1);

    /// The raw index (used only for statistics).
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// Whether this is one of the two terminal nodes.
    pub fn is_terminal(&self) -> bool {
        self.0 <= 1
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Node {
    var: u32,
    low: BddRef,
    high: BddRef,
}

const TERMINAL_VAR: u32 = u32::MAX;

/// The textbook reduced ordered BDD manager with a fixed variable order
/// (variable `0` is the topmost).
#[derive(Clone, Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    num_vars: u32,
    node_limit: usize,
}

impl BddManager {
    /// Creates a manager for the given number of variables.
    pub fn new(num_vars: u32) -> BddManager {
        let mut nodes = Vec::with_capacity(1024);
        nodes.push(Node {
            var: TERMINAL_VAR,
            low: BddRef::FALSE,
            high: BddRef::FALSE,
        });
        nodes.push(Node {
            var: TERMINAL_VAR,
            low: BddRef::TRUE,
            high: BddRef::TRUE,
        });
        BddManager {
            nodes,
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars,
            node_limit: usize::MAX,
        }
    }

    /// Sets a soft node limit; operations that would exceed it fail with
    /// [`BddError::ResourceLimit`]. Unlike the production manager this
    /// counts every allocation ever made (there is no GC).
    pub fn with_node_limit(mut self, limit: usize) -> BddManager {
        self.node_limit = limit;
        self
    }

    /// The number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The total number of allocated nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The BDD for a constant.
    pub fn constant(&self, value: bool) -> BddRef {
        if value {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        }
    }

    /// The BDD for a single variable.
    ///
    /// # Errors
    ///
    /// Fails if the variable index is out of range.
    pub fn var(&mut self, var: u32) -> Result<BddRef> {
        if var >= self.num_vars {
            return Err(BddError::UnknownVariable { var });
        }
        self.mk_node(var, BddRef::FALSE, BddRef::TRUE)
    }

    /// The BDD for the negation of a single variable.
    ///
    /// # Errors
    ///
    /// Fails if the variable index is out of range.
    pub fn nvar(&mut self, var: u32) -> Result<BddRef> {
        if var >= self.num_vars {
            return Err(BddError::UnknownVariable { var });
        }
        self.mk_node(var, BddRef::TRUE, BddRef::FALSE)
    }

    fn var_of(&self, f: BddRef) -> u32 {
        self.nodes[f.index()].var
    }

    fn node(&self, f: BddRef) -> Node {
        self.nodes[f.index()]
    }

    fn mk_node(&mut self, var: u32, low: BddRef, high: BddRef) -> Result<BddRef> {
        if low == high {
            return Ok(low);
        }
        if let Some(&existing) = self.unique.get(&(var, low, high)) {
            return Ok(existing);
        }
        if self.nodes.len() >= self.node_limit {
            return Err(BddError::node_limit(self.node_limit));
        }
        let id = BddRef(self.nodes.len() as u32);
        self.nodes.push(Node { var, low, high });
        self.unique.insert((var, low, high), id);
        Ok(id)
    }

    fn cofactors(&self, f: BddRef, var: u32) -> (BddRef, BddRef) {
        let n = self.node(f);
        if n.var == var {
            (n.low, n.high)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> Result<BddRef> {
        if f == BddRef::TRUE {
            return Ok(g);
        }
        if f == BddRef::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return Ok(f);
        }
        if let Some(&cached) = self.ite_cache.get(&(f, g, h)) {
            return Ok(cached);
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let t = self.ite(f1, g1, h1)?;
        let e = self.ite(f0, g0, h0)?;
        let result = self.mk_node(top, e, t)?;
        self.ite_cache.insert((f, g, h), result);
        Ok(result)
    }

    /// Negation.
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn not(&mut self, f: BddRef) -> Result<BddRef> {
        self.ite(f, BddRef::FALSE, BddRef::TRUE)
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> Result<BddRef> {
        self.ite(f, g, BddRef::FALSE)
    }

    /// Disjunction.
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> Result<BddRef> {
        self.ite(f, BddRef::TRUE, g)
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef> {
        let ng = self.not(g)?;
        self.ite(f, ng, g)
    }

    /// Equivalence (XNOR).
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn xnor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef> {
        let ng = self.not(g)?;
        self.ite(f, g, ng)
    }

    /// Implication.
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn implies(&mut self, f: BddRef, g: BddRef) -> Result<BddRef> {
        self.ite(f, g, BddRef::TRUE)
    }

    /// Existential quantification over a set of variables.
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn exists(&mut self, f: BddRef, vars: &[u32]) -> Result<BddRef> {
        let mut cache = HashMap::new();
        self.exists_rec(f, vars, &mut cache)
    }

    fn exists_rec(
        &mut self,
        f: BddRef,
        vars: &[u32],
        cache: &mut HashMap<BddRef, BddRef>,
    ) -> Result<BddRef> {
        if f.is_terminal() {
            return Ok(f);
        }
        if let Some(&c) = cache.get(&f) {
            return Ok(c);
        }
        let n = self.node(f);
        let low = self.exists_rec(n.low, vars, cache)?;
        let high = self.exists_rec(n.high, vars, cache)?;
        let result = if vars.contains(&n.var) {
            self.or(low, high)?
        } else {
            self.mk_node(n.var, low, high)?
        };
        cache.insert(f, result);
        Ok(result)
    }

    /// Universal quantification over a set of variables.
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn forall(&mut self, f: BddRef, vars: &[u32]) -> Result<BddRef> {
        let nf = self.not(f)?;
        let ex = self.exists(nf, vars)?;
        self.not(ex)
    }

    /// Relational product: `∃ vars. f ∧ g`.
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn and_exists(&mut self, f: BddRef, g: BddRef, vars: &[u32]) -> Result<BddRef> {
        let conj = self.and(f, g)?;
        self.exists(conj, vars)
    }

    /// Renames variables according to `map` (old → new). The mapping must be
    /// monotone with respect to the variable order, so that the result is
    /// still ordered.
    ///
    /// # Errors
    ///
    /// Fails if the mapping is not monotone or a variable is out of range.
    pub fn rename(&mut self, f: BddRef, map: &[(u32, u32)]) -> Result<BddRef> {
        let mut sorted = map.to_vec();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0].1 >= w[1].1 {
                return Err(BddError::NonMonotoneRename);
            }
        }
        for &(a, b) in map {
            if a >= self.num_vars || b >= self.num_vars {
                return Err(BddError::UnknownVariable { var: a.max(b) });
            }
        }
        let mut cache = HashMap::new();
        self.rename_rec(f, map, &mut cache)
    }

    fn rename_rec(
        &mut self,
        f: BddRef,
        map: &[(u32, u32)],
        cache: &mut HashMap<BddRef, BddRef>,
    ) -> Result<BddRef> {
        if f.is_terminal() {
            return Ok(f);
        }
        if let Some(&c) = cache.get(&f) {
            return Ok(c);
        }
        let n = self.node(f);
        let low = self.rename_rec(n.low, map, cache)?;
        let high = self.rename_rec(n.high, map, cache)?;
        let new_var = map
            .iter()
            .find(|(a, _)| *a == n.var)
            .map(|(_, b)| *b)
            .unwrap_or(n.var);
        let result = self.mk_node(new_var, low, high)?;
        cache.insert(f, result);
        Ok(result)
    }

    /// Functional composition: substitutes the function `g` for the
    /// variable `var` in `f`.
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn compose(&mut self, f: BddRef, var: u32, g: BddRef) -> Result<BddRef> {
        let f1 = self.restrict(f, var, true)?;
        let f0 = self.restrict(f, var, false)?;
        self.ite(g, f1, f0)
    }

    /// Substitutes several variables by functions, one after another.
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn compose_many(&mut self, f: BddRef, subs: &[(u32, BddRef)]) -> Result<BddRef> {
        let mut acc = f;
        for (var, g) in subs {
            acc = self.compose(acc, *var, *g)?;
        }
        Ok(acc)
    }

    /// Restricts a variable to a constant value.
    ///
    /// # Errors
    ///
    /// Fails only if the node limit is exceeded.
    pub fn restrict(&mut self, f: BddRef, var: u32, value: bool) -> Result<BddRef> {
        let lit = if value {
            self.var(var)?
        } else {
            self.nvar(var)?
        };
        let conj = self.and(f, lit)?;
        self.exists(conj, &[var])
    }

    /// Evaluates the function under a complete assignment
    /// (`assignment[i]` is the value of variable `i`).
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.node(cur);
            let v = assignment.get(n.var as usize).copied().unwrap_or(false);
            cur = if v { n.high } else { n.low };
        }
        cur == BddRef::TRUE
    }

    /// The number of satisfying assignments over all `num_vars` variables.
    pub fn sat_count(&self, f: BddRef) -> f64 {
        let mut cache: HashMap<BddRef, f64> = HashMap::new();
        fn frac(m: &BddManager, f: BddRef, cache: &mut HashMap<BddRef, f64>) -> f64 {
            if f == BddRef::TRUE {
                return 1.0;
            }
            if f == BddRef::FALSE {
                return 0.0;
            }
            if let Some(&c) = cache.get(&f) {
                return c;
            }
            let n = m.node(f);
            let r = 0.5 * frac(m, n.low, cache) + 0.5 * frac(m, n.high, cache);
            cache.insert(f, r);
            r
        }
        frac(self, f, &mut cache) * 2f64.powi(self.num_vars as i32)
    }

    /// The support of a function: the variables it depends on.
    pub fn support(&self, f: BddRef) -> Vec<u32> {
        let mut seen = std::collections::BTreeSet::new();
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            if g.is_terminal() || !visited.insert(g) {
                continue;
            }
            let n = self.node(g);
            seen.insert(n.var);
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.into_iter().collect()
    }

    /// The number of distinct nodes reachable from `f` plus the terminals.
    pub fn size(&self, f: BddRef) -> usize {
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            if g.is_terminal() || !visited.insert(g) {
                continue;
            }
            let n = self.node(g);
            stack.push(n.low);
            stack.push(n.high);
        }
        visited.len() + 2
    }

    /// Finds one satisfying assignment, if any (variables not in the
    /// support are set to `false`).
    pub fn any_sat(&self, f: BddRef) -> Option<Vec<bool>> {
        if f == BddRef::FALSE {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.node(cur);
            if n.high != BddRef::FALSE {
                assignment[n.var as usize] = true;
                cur = n.high;
            } else {
                assignment[n.var as usize] = false;
                cur = n.low;
            }
        }
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_algebra_laws() {
        let mut m = BddManager::new(3);
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let z = m.var(2).unwrap();
        let yz = m.or(y, z).unwrap();
        let lhs = m.and(x, yz).unwrap();
        let xy = m.and(x, y).unwrap();
        let xz = m.and(x, z).unwrap();
        let rhs = m.or(xy, xz).unwrap();
        assert_eq!(lhs, rhs, "canonical form makes equal functions identical");
        let nn = {
            let n1 = m.not(x).unwrap();
            m.not(n1).unwrap()
        };
        assert_eq!(nn, x);
    }

    #[test]
    fn node_limit_reported() {
        let mut m = BddManager::new(16).with_node_limit(8);
        let mut acc = BddRef::TRUE;
        let mut hit_limit = false;
        for i in 0..16 {
            let step = m.var(i).and_then(|v| m.and(acc, v));
            match step {
                Ok(r) => acc = r,
                Err(e) if e.is_resource_limit() => {
                    hit_limit = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(hit_limit, "the node limit must eventually trigger");
    }

    #[test]
    fn non_monotone_rename_rejected() {
        let mut m = BddManager::new(4);
        let x0 = m.var(0).unwrap();
        let x1 = m.var(1).unwrap();
        let f = m.and(x0, x1).unwrap();
        let renamed = m.rename(f, &[(0, 2), (1, 3)]).unwrap();
        let x2 = m.var(2).unwrap();
        let x3 = m.var(3).unwrap();
        let expect = m.and(x2, x3).unwrap();
        assert_eq!(renamed, expect);
        assert!(m.rename(f, &[(0, 3), (1, 2)]).is_err());
    }
}
