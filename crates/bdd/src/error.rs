//! Error type for the BDD package.

use std::fmt;

/// The resource whose budget was exhausted by a BDD operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// The live-node budget of the manager ([`crate::BddManager::with_node_limit`]).
    /// The manager garbage-collects and retries before reporting this, so
    /// hitting it means the *live* (externally reachable) BDDs genuinely
    /// need more nodes than the budget allows.
    Nodes,
    /// The recursion-depth guard ([`crate::BddManager::with_depth_limit`]):
    /// instead of overflowing the native stack on pathologically deep
    /// BDDs, operations fail with this error.
    Depth,
    /// The wall-clock deadline ([`crate::BddManager::with_time_limit`]),
    /// checked in the node constructor (CUDD-style): long-running
    /// traversals abort mid-operation with the manager's structural
    /// invariants intact. The limit is reported in milliseconds.
    Time,
    /// The per-operation allocation budget of a *trial* conjunction
    /// ([`crate::BddManager::and_within`]): the caller asked for the
    /// operation to be abandoned once it had constructed more than `limit`
    /// fresh nodes. Unlike [`ResourceKind::Nodes`] there is no
    /// collect-and-retry — the abort is the requested outcome, and
    /// [`crate::BddManager::and_within`] converts it to `Ok(None)` rather
    /// than letting it escape.
    TrialNodes,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Nodes => write!(f, "live BDD nodes"),
            ResourceKind::Depth => write!(f, "recursion depth"),
            ResourceKind::Time => write!(f, "milliseconds of wall clock"),
            ResourceKind::TrialNodes => write!(f, "fresh nodes of a trial operation"),
        }
    }
}

/// Errors raised by BDD operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// A variable index outside the manager's range was used.
    UnknownVariable {
        /// The offending variable index.
        var: u32,
    },
    /// A resource budget was exceeded; the verification run is reported
    /// as a blow-up (the dashes in the paper's tables).
    ResourceLimit {
        /// Which budget ran out.
        resource: ResourceKind,
        /// The configured limit.
        limit: usize,
    },
    /// A variable renaming was not monotone in the variable order. Only the
    /// textbook [`crate::manager::reference`] implementation raises this;
    /// the production manager renames arbitrary (injective) maps.
    NonMonotoneRename,
}

impl BddError {
    /// Shorthand for the live-node budget error.
    pub fn node_limit(limit: usize) -> BddError {
        BddError::ResourceLimit {
            resource: ResourceKind::Nodes,
            limit,
        }
    }

    /// Shorthand for the wall-clock budget error (`limit` in milliseconds).
    pub fn time_limit(limit: usize) -> BddError {
        BddError::ResourceLimit {
            resource: ResourceKind::Time,
            limit,
        }
    }

    /// Whether this is a resource blow-up (node or depth budget).
    pub fn is_resource_limit(&self) -> bool {
        matches!(self, BddError::ResourceLimit { .. })
    }
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::UnknownVariable { var } => write!(f, "unknown BDD variable {var}"),
            BddError::ResourceLimit { resource, limit } => {
                write!(f, "BDD limit of {limit} {resource} exceeded")
            }
            BddError::NonMonotoneRename => write!(f, "variable renaming is not monotone"),
        }
    }
}

impl std::error::Error for BddError {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, BddError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        assert!(BddError::UnknownVariable { var: 7 }
            .to_string()
            .contains('7'));
        let e = BddError::node_limit(100);
        assert!(e.to_string().contains("100"));
        assert!(e.is_resource_limit());
        let d = BddError::ResourceLimit {
            resource: ResourceKind::Depth,
            limit: 32,
        };
        assert!(d.to_string().contains("depth"));
        assert!(d.is_resource_limit());
        let t = BddError::time_limit(50);
        assert!(t.to_string().contains("50") && t.to_string().contains("wall clock"));
        assert!(t.is_resource_limit());
        assert!(!BddError::NonMonotoneRename.is_resource_limit());
        assert!(!BddError::NonMonotoneRename.to_string().is_empty());
    }
}
