//! Error type for the BDD package.

use std::fmt;

/// Errors raised by BDD operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// A variable index outside the manager's range was used.
    UnknownVariable {
        /// The offending variable index.
        var: u32,
    },
    /// The soft node limit was exceeded; the verification run is reported
    /// as a blow-up (the dashes in the paper's tables).
    NodeLimit {
        /// The configured limit.
        limit: usize,
    },
    /// A variable renaming was not monotone in the variable order.
    NonMonotoneRename,
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::UnknownVariable { var } => write!(f, "unknown BDD variable {var}"),
            BddError::NodeLimit { limit } => {
                write!(f, "BDD node limit of {limit} nodes exceeded")
            }
            BddError::NonMonotoneRename => write!(f, "variable renaming is not monotone"),
        }
    }
}

impl std::error::Error for BddError {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, BddError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        assert!(BddError::UnknownVariable { var: 7 }
            .to_string()
            .contains('7'));
        assert!(BddError::NodeLimit { limit: 100 }
            .to_string()
            .contains("100"));
        assert!(!BddError::NonMonotoneRename.to_string().is_empty());
    }
}
