//! The production ROBDD engine: complement edges, ref-counted garbage
//! collection, a unified size-bounded operation cache and Rudell sifting
//! dynamic variable reordering.
//!
//! This is the data structure underlying every post-synthesis verification
//! baseline the paper compares against: the SMV-style symbolic model
//! checker, the SIS-style FSM equivalence check and van Eijk's method all
//! represent sets of states and transition functions as BDDs. The paper's
//! complexity argument — "both the number of traversal steps and the size
//! of the BDD grow exponentially with the number of state variables" — is
//! reproduced by measuring exactly these structures, so the engine mirrors
//! classic production BDD packages (Brace/Rudell/Bryant unique table + ITE
//! cache, CUDD-style attributed edges and sifting):
//!
//! * **Complement edges.** A [`BddRef`] is a node index with a complement
//!   bit in its lowest bit; there is a single terminal node and negation is
//!   an O(1) bit flip ([`BddManager::not`] is infallible). Canonicity is
//!   kept by the invariant that the *high* (then) edge of a node is never
//!   complemented.
//! * **Garbage collection.** Nodes carry reference counts (parents plus
//!   external [`BddManager::protect`] roots plus pinned variable nodes);
//!   [`BddManager::collect_garbage`] sweeps the dead cascade and reclaims
//!   slots. When an operation would exceed the live-node budget, the
//!   manager collects and retries once before reporting
//!   [`BddError::ResourceLimit`], so the budget counts *live* nodes, not
//!   every allocation ever made.
//! * **Unified operation cache.** One direct-mapped, size-bounded cache
//!   serves `ite`, `exists`, `and_exists`, `compose`, `rename` and
//!   `restrict`; collisions evict (no unbounded per-op `HashMap`s).
//! * **Reordering.** Rudell sifting ([`BddManager::reorder`]) swaps
//!   adjacent levels in place — external references stay valid — and an
//!   optional growth trigger ([`BddManager::with_dynamic_reordering`])
//!   runs it automatically; [`BddManager::set_order`] installs an explicit
//!   order.
//! * **Depth-bounded recursion.** Every recursive operation carries a
//!   depth budget and fails with [`BddError::ResourceLimit`] instead of
//!   overflowing the native stack.
//!
//! The pre-rewrite textbook implementation survives as
//! [`mod@reference`] for differential testing
//! (`tests/manager_properties.rs`), mirroring `hash_logic::term::reference`.
//!
//! # Threading model
//!
//! A [`BddManager`] owns all of its state — node table, unique table,
//! operation cache, interned cubes and protection roots — with no interior
//! mutability, no globals and no thread-locals, so the type is [`Send`]:
//! a manager can be *moved* to (or built on) a worker thread, which is how
//! the Table-II harness runs its benchmarks in parallel, one manager per
//! worker. It is **not** [`Sync`] in any useful sense: every operation
//! takes `&mut self`, so a single manager cannot be shared across threads,
//! and a [`BddRef`] or [`VarCube`] is only meaningful for the manager that
//! created it — sending a ref between threads without its manager is a
//! logic error the type system does not (and cannot cheaply) prevent.
//! Per-manager budgets (`node_limit`, deadline, depth) therefore isolate
//! naturally: one worker's blow-up cannot evict another's cache or skew its
//! peak-live statistics.

pub mod reference;

use crate::error::{BddError, ResourceKind, Result};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A reference to a BDD node within a [`BddManager`], with an attributed
/// complement edge in the lowest bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant TRUE: the terminal node, uncomplemented.
    pub const TRUE: BddRef = BddRef(0);
    /// The constant FALSE: the complement edge to the terminal node.
    pub const FALSE: BddRef = BddRef(1);

    fn new(idx: u32, complemented: bool) -> BddRef {
        BddRef(idx << 1 | complemented as u32)
    }

    fn idx(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// The raw node index (used only for statistics; the complement bit is
    /// stripped).
    pub fn index(&self) -> usize {
        self.idx()
    }

    /// Whether this edge carries the complement attribute.
    pub fn is_complemented(&self) -> bool {
        self.0 & 1 == 1
    }

    /// The complement edge to the same node: `¬f` in O(1).
    pub fn complement(self) -> BddRef {
        BddRef(self.0 ^ 1)
    }

    /// Whether this is one of the two constant functions.
    pub fn is_terminal(&self) -> bool {
        self.0 <= 1
    }
}

/// An interned quantification cube (a sorted, deduplicated variable set)
/// of a [`BddManager`], produced by [`BddManager::cube`].
///
/// Image-computation schedules quantify a *different* variable set at every
/// conjunction step of every image; interning the sets once at schedule
/// construction lets [`BddManager::and_exists_cube`] skip the per-call
/// sort/dedup/hash of [`BddManager::and_exists`] on the traversal hot path.
/// A cube is only meaningful for the manager that interned it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VarCube(u32);

/// Variable tag of the single terminal node.
const TERMINAL_VAR: u32 = u32::MAX;
/// Variable tag of a freed slot awaiting reuse.
const FREE_VAR: u32 = u32::MAX - 1;
/// Default number of slots in the unified operation cache.
const DEFAULT_CACHE_CAPACITY: usize = 1 << 16;
/// Minimum garbage (allocations since the last collection) before an
/// automatic collection is worthwhile.
const MIN_GC_THRESHOLD: usize = 8_192;
/// Initial live-node count that arms the automatic-reordering trigger.
const INITIAL_REORDER_THRESHOLD: usize = 4_096;
/// Automatic reorders stop after this many runs (explicit calls still work).
const MAX_AUTO_REORDERS: usize = 64;
/// Allocations between wall-clock deadline checks: `Instant::now` is a
/// syscall-class cost, so the deadline is polled once per this many node
/// constructions (a few microseconds of work), which bounds the overshoot
/// past the deadline without taxing the allocation fast path.
const TIME_CHECK_INTERVAL: u32 = 1_024;

#[derive(Clone, Copy, Debug)]
struct Node {
    var: u32,
    low: BddRef,
    high: BddRef,
    rc: u32,
}

/// Keys of the unified operation cache. All refs are stored raw (index plus
/// complement bit), so complemented operands hash and compare correctly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CacheKey {
    Ite(u32, u32, u32),
    AndExists(u32, u32, u32),
    Exists(u32, u32),
    Compose(u32, u32, u32),
    Rename(u32, u32),
    Restrict(u32, u32, u32),
}

impl CacheKey {
    fn hash(&self) -> usize {
        let (tag, a, b, c) = match *self {
            CacheKey::Ite(a, b, c) => (0x9E37u64, a, b, c),
            CacheKey::AndExists(a, b, c) => (0x85EBu64, a, b, c),
            CacheKey::Exists(a, b) => (0xC2B2u64, a, b, 0),
            CacheKey::Compose(a, b, c) => (0x27D4u64, a, b, c),
            CacheKey::Rename(a, b) => (0x1656u64, a, b, 0),
            CacheKey::Restrict(a, b, c) => (0x6C62u64, a, b, c),
        };
        let mut h = tag
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(a));
        h = h
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(u64::from(b));
        h = h
            .wrapping_mul(0x94D0_49BB_1331_11EB)
            .wrapping_add(u64::from(c));
        (h ^ (h >> 29)) as usize
    }
}

/// The unified, size-bounded, direct-mapped operation cache. A colliding
/// insertion evicts the previous entry, so memory is bounded by the
/// configured capacity regardless of workload.
#[derive(Clone, Debug)]
struct OpCache {
    slots: Vec<Option<(CacheKey, u32)>>,
    mask: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl OpCache {
    fn new(capacity: usize) -> OpCache {
        let cap = capacity.next_power_of_two().max(16);
        OpCache {
            slots: vec![None; cap],
            mask: cap - 1,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn lookup(&mut self, key: CacheKey) -> Option<BddRef> {
        match self.slots[key.hash() & self.mask] {
            Some((k, r)) if k == key => {
                self.hits += 1;
                Some(BddRef(r))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: CacheKey, result: BddRef) {
        let slot = &mut self.slots[key.hash() & self.mask];
        if matches!(slot, Some((k, _)) if *k != key) {
            self.evictions += 1;
        }
        *slot = Some((key, result.0));
    }

    fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
    }
}

/// Counters exposed by [`BddManager::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Currently live nodes (see [`BddManager::node_count`]).
    pub live_nodes: usize,
    /// High-water mark of the live-node count.
    pub peak_live_nodes: usize,
    /// Allocated node slots, live or awaiting reuse.
    pub allocated_slots: usize,
    /// Operation-cache hits since creation.
    pub cache_hits: u64,
    /// Operation-cache misses since creation.
    pub cache_misses: u64,
    /// Operation-cache entries evicted by collisions.
    pub cache_evictions: u64,
    /// Garbage collections run.
    pub gc_runs: usize,
    /// Total nodes reclaimed by garbage collection.
    pub gc_freed: usize,
    /// Sifting reorder passes run (automatic or explicit).
    pub reorders: usize,
}

/// A reduced ordered BDD manager with complement edges, garbage collection
/// and dynamic variable reordering.
///
/// The one rule callers must follow is the **protection discipline**: any
/// ref held across another BDD operation must be registered as a garbage
/// collection root with [`BddManager::protect`] (released again with
/// [`BddManager::unprotect`], or transferred with
/// [`BddManager::update_protected`] for loop state), because operations
/// may collect garbage at their safe points and an unprotected
/// intermediate is exactly what they reclaim. Variable nodes are pinned
/// and never need protection.
///
/// ```
/// use hash_bdd::BddManager;
///
/// # fn main() -> Result<(), hash_bdd::BddError> {
/// let mut m = BddManager::new(8);
/// let x = m.var(0)?;
/// let y = m.var(1)?;
/// let f = m.and(x, y)?;
/// m.protect(f); // `f` is held across the operations below
/// let mut reached = f;
/// for v in 2..8 {
///     let lit = m.var(v)?; // may garbage collect: `f` survives, pinned
///     let next = m.or(reached, lit)?;
///     if v == 2 {
///         m.protect(next); // first iteration: root the loop state …
///         reached = next;
///     } else {
///         m.update_protected(&mut reached, next); // … then transfer it
///     }
/// }
/// m.unprotect(reached);
/// m.unprotect(f);
/// assert!(m.eval(f, &[true, true, false, false, false, false, false, false]));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    /// Unique table: (var, low bits, high bits) → node index.
    unique: HashMap<(u32, u32, u32), u32>,
    cache: OpCache,
    free_list: Vec<u32>,
    /// External protection counts per node index (subset of `rc`).
    ext_refs: HashMap<u32, u32>,
    /// Pinned single-variable nodes, never collected.
    var_nodes: Vec<Option<u32>>,
    /// `order[level] = var`: the variable order, top level first.
    order: Vec<u32>,
    /// `level[var] = level`: inverse of `order`.
    level: Vec<u32>,
    /// Interned quantification sets (sorted, deduplicated).
    var_sets: Vec<Vec<u32>>,
    set_ids: HashMap<Vec<u32>, u32>,
    /// Interned rename maps (sorted by source variable).
    var_maps: Vec<Vec<(u32, u32)>>,
    map_ids: HashMap<Vec<(u32, u32)>, u32>,
    num_vars: u32,
    /// Allocated, non-free, non-terminal slots.
    active: usize,
    /// Active nodes whose reference count is currently zero.
    dead: usize,
    peak_live: usize,
    node_limit: usize,
    depth_limit: usize,
    allocs_since_gc: usize,
    auto_gc: bool,
    auto_reorder: bool,
    reorder_threshold: usize,
    in_reorder: bool,
    /// Whether an operation's recursion is in flight; garbage collection
    /// must not run then (intermediate results are not yet referenced).
    in_op: bool,
    gc_runs: usize,
    gc_freed: usize,
    reorders: usize,
    /// Growth-triggered passes only; explicit [`BddManager::reorder`]
    /// calls do not consume the automatic budget.
    auto_reorders: usize,
    /// Wall-clock deadline ([`BddManager::with_time_limit`]), polled in the
    /// node constructor every [`TIME_CHECK_INTERVAL`] allocations.
    deadline: Option<Instant>,
    /// The configured wall-clock budget in milliseconds (for the error).
    time_limit_ms: usize,
    /// Countdown to the next deadline poll.
    time_check: u32,
    /// Allocation budget of the trial operation currently in flight
    /// ([`BddManager::and_within`]); `None` outside trial operations.
    trial_budget: Option<usize>,
    /// Fresh nodes constructed by the running trial operation.
    trial_allocs: usize,
}

/// The manager is self-contained (no interior mutability, no globals), so
/// it can be moved to a worker thread — one manager per worker is the
/// concurrency model of the parallel Table-II sweep. Compile-time proof:
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<BddManager>();
    assert_send::<BddRef>();
    assert_send::<VarCube>();
    assert_send::<BddStats>();
    assert_send::<BddError>();
};

impl BddManager {
    /// Creates a manager for the given number of variables. Garbage
    /// collection is enabled; dynamic reordering is off (see
    /// [`BddManager::with_dynamic_reordering`]).
    pub fn new(num_vars: u32) -> BddManager {
        let mut nodes = Vec::with_capacity(1024);
        nodes.push(Node {
            var: TERMINAL_VAR,
            low: BddRef::TRUE,
            high: BddRef::TRUE,
            rc: 1,
        });
        BddManager {
            nodes,
            unique: HashMap::new(),
            cache: OpCache::new(DEFAULT_CACHE_CAPACITY),
            free_list: Vec::new(),
            ext_refs: HashMap::new(),
            var_nodes: vec![None; num_vars as usize],
            order: (0..num_vars).collect(),
            level: (0..num_vars).collect(),
            var_sets: Vec::new(),
            set_ids: HashMap::new(),
            var_maps: Vec::new(),
            map_ids: HashMap::new(),
            num_vars,
            active: 0,
            dead: 0,
            peak_live: 1,
            node_limit: usize::MAX,
            depth_limit: (4 * num_vars as usize + 64).min(8_192),
            allocs_since_gc: 0,
            auto_gc: true,
            auto_reorder: false,
            reorder_threshold: INITIAL_REORDER_THRESHOLD,
            in_reorder: false,
            in_op: false,
            gc_runs: 0,
            gc_freed: 0,
            reorders: 0,
            auto_reorders: 0,
            deadline: None,
            time_limit_ms: 0,
            time_check: TIME_CHECK_INTERVAL,
            trial_budget: None,
            trial_allocs: 0,
        }
    }

    /// Sets the live-node budget; operations that would exceed it garbage
    /// collect and retry once, then fail with [`BddError::ResourceLimit`].
    pub fn with_node_limit(mut self, limit: usize) -> BddManager {
        self.node_limit = limit;
        self
    }

    /// Arms a wall-clock budget measured from this call: once it elapses,
    /// the next deadline poll in the node constructor fails the running
    /// operation with [`BddError::ResourceLimit`] of kind
    /// [`ResourceKind::Time`]. Unlike the live-node budget there is no
    /// collect-and-retry — time cannot be reclaimed — but the abort leaves
    /// the manager structurally intact ([`BddManager::check_invariants`]
    /// still passes), so callers can keep using surviving BDDs. The
    /// deadline is suspended during reordering (a sift pass always runs to
    /// completion; the poll after it fires immediately).
    pub fn with_time_limit(mut self, limit: Duration) -> BddManager {
        self.deadline = Some(Instant::now() + limit);
        self.time_limit_ms = limit.as_millis().try_into().unwrap_or(usize::MAX);
        // Poll on the very next allocation, so an already-expired deadline
        // fires deterministically even on tiny workloads.
        self.time_check = 1;
        self
    }

    /// Bounds the unified operation cache (rounded up to a power of two,
    /// minimum 16 slots — tiny capacities are allowed so tests can force
    /// eviction-heavy behaviour).
    pub fn with_cache_capacity(mut self, capacity: usize) -> BddManager {
        self.cache = OpCache::new(capacity);
        self
    }

    /// Sets the recursion-depth budget (default `4 · num_vars + 64`,
    /// capped at 8192 so pathological managers cannot smash the stack).
    pub fn with_depth_limit(mut self, limit: usize) -> BddManager {
        self.depth_limit = limit;
        self
    }

    /// Enables or disables Rudell-sifting reordering triggered on growth.
    pub fn with_dynamic_reordering(mut self, enabled: bool) -> BddManager {
        self.auto_reorder = enabled;
        self
    }

    /// Enables or disables automatic garbage collection (on by default).
    pub fn with_auto_gc(mut self, enabled: bool) -> BddManager {
        self.auto_gc = enabled;
        self
    }

    /// The number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The number of *live* nodes (reachable from protected roots or linked
    /// as someone's child), including the terminal. Dead-but-uncollected
    /// roots are excluded; collected slots are excluded.
    pub fn node_count(&self) -> usize {
        self.active - self.dead + 1
    }

    /// High-water mark of [`BddManager::node_count`].
    pub fn peak_live_nodes(&self) -> usize {
        self.peak_live
    }

    /// Engine counters (cache effectiveness, GC and reordering activity).
    pub fn stats(&self) -> BddStats {
        BddStats {
            live_nodes: self.node_count(),
            peak_live_nodes: self.peak_live,
            allocated_slots: self.nodes.len() - 1,
            cache_hits: self.cache.hits,
            cache_misses: self.cache.misses,
            cache_evictions: self.cache.evictions,
            gc_runs: self.gc_runs,
            gc_freed: self.gc_freed,
            reorders: self.reorders,
        }
    }

    /// The current variable order, topmost level first.
    pub fn order(&self) -> Vec<u32> {
        self.order.clone()
    }

    /// Adds `extra` fresh variables at the bottom of the order and returns
    /// the index of the first new variable.
    pub fn add_vars(&mut self, extra: u32) -> u32 {
        let first = self.num_vars;
        for v in first..first + extra {
            self.order.push(v);
            self.level.push(self.order.len() as u32 - 1);
            self.var_nodes.push(None);
        }
        self.num_vars += extra;
        self.depth_limit = self
            .depth_limit
            .max((4 * self.num_vars as usize + 64).min(8_192));
        first
    }

    // ------------------------------------------------------------------
    // External references and garbage collection
    // ------------------------------------------------------------------

    /// Registers an external reference: the node (and everything it
    /// reaches) survives garbage collection until a matching
    /// [`BddManager::unprotect`]. Terminals need no protection.
    pub fn protect(&mut self, f: BddRef) {
        let i = f.idx();
        if i == 0 {
            return;
        }
        assert!(
            self.nodes[i].var != FREE_VAR,
            "protect() on a collected node"
        );
        *self.ext_refs.entry(i as u32).or_insert(0) += 1;
        self.inc_rc(f);
    }

    /// Releases an external reference taken with [`BddManager::protect`].
    pub fn unprotect(&mut self, f: BddRef) {
        let i = f.idx();
        if i == 0 {
            return;
        }
        match self.ext_refs.get_mut(&(i as u32)) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.ext_refs.remove(&(i as u32));
            }
            None => {
                debug_assert!(false, "unprotect() without matching protect()");
                return;
            }
        }
        self.dec_rc(f);
    }

    /// Replaces the value in `slot` with `new`, transferring the external
    /// reference: `new` is protected, the old value released. The common
    /// idiom for loop state (`reached`, `frontier`, …).
    pub fn update_protected(&mut self, slot: &mut BddRef, new: BddRef) {
        self.protect(new);
        self.unprotect(*slot);
        *slot = new;
    }

    fn inc_rc(&mut self, f: BddRef) {
        let i = f.idx();
        if i == 0 {
            return;
        }
        let n = &mut self.nodes[i];
        if n.rc == 0 {
            self.dead -= 1;
        }
        n.rc += 1;
    }

    fn dec_rc(&mut self, f: BddRef) {
        let i = f.idx();
        if i == 0 {
            return;
        }
        let n = &mut self.nodes[i];
        debug_assert!(n.rc > 0, "reference count underflow");
        n.rc -= 1;
        if n.rc == 0 {
            self.dead += 1;
        }
    }

    /// Sweeps every node unreachable from the protected roots (and pinned
    /// variable nodes), reclaiming slots and clearing the operation cache.
    /// Returns the number of nodes freed.
    pub fn collect_garbage(&mut self) -> usize {
        self.allocs_since_gc = 0;
        if self.dead == 0 {
            return 0;
        }
        let mut queue: Vec<u32> = (1..self.nodes.len() as u32)
            .filter(|&i| {
                let n = &self.nodes[i as usize];
                n.var != FREE_VAR && n.rc == 0
            })
            .collect();
        let mut freed = 0usize;
        while let Some(i) = queue.pop() {
            let n = self.nodes[i as usize];
            debug_assert!(n.var != FREE_VAR && n.rc == 0);
            self.unique.remove(&(n.var, n.low.0, n.high.0));
            for child in [n.low, n.high] {
                let ci = child.idx();
                if ci == 0 {
                    continue;
                }
                let c = &mut self.nodes[ci];
                debug_assert!(c.rc > 0);
                c.rc -= 1;
                if c.rc == 0 {
                    queue.push(ci as u32);
                }
            }
            self.nodes[i as usize] = Node {
                var: FREE_VAR,
                low: BddRef::TRUE,
                high: BddRef::TRUE,
                rc: 0,
            };
            self.free_list.push(i);
            freed += 1;
        }
        self.active -= freed;
        self.dead = 0;
        self.cache.clear();
        self.gc_runs += 1;
        self.gc_freed += freed;
        freed
    }

    // ------------------------------------------------------------------
    // Node construction
    // ------------------------------------------------------------------

    fn alloc_node(&mut self, var: u32, low: BddRef, high: BddRef) -> Result<BddRef> {
        if !self.in_reorder {
            if self.active - self.dead >= self.node_limit {
                return Err(BddError::node_limit(self.node_limit));
            }
            self.check_deadline()?;
            if let Some(budget) = self.trial_budget {
                if self.trial_allocs >= budget {
                    return Err(BddError::ResourceLimit {
                        resource: ResourceKind::TrialNodes,
                        limit: budget,
                    });
                }
                self.trial_allocs += 1;
            }
        }
        let idx = match self.free_list.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    var,
                    low,
                    high,
                    rc: 0,
                };
                i
            }
            None => {
                assert!(
                    self.nodes.len() < (u32::MAX >> 1) as usize,
                    "BDD node index space exhausted"
                );
                self.nodes.push(Node {
                    var,
                    low,
                    high,
                    rc: 0,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.active += 1;
        self.dead += 1; // rc == 0 until a parent or protection links it
        self.allocs_since_gc += 1;
        self.inc_rc(low);
        self.inc_rc(high);
        self.unique.insert((var, low.0, high.0), idx);
        let live = self.active - self.dead + 1;
        if live > self.peak_live {
            self.peak_live = live;
        }
        Ok(BddRef::new(idx, false))
    }

    /// Polls the wall-clock deadline (if armed) every
    /// [`TIME_CHECK_INTERVAL`] calls. Called from the node constructor, the
    /// one place every recursive operation funnels through.
    fn check_deadline(&mut self) -> Result<()> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        self.time_check -= 1;
        if self.time_check > 0 {
            return Ok(());
        }
        self.time_check = TIME_CHECK_INTERVAL;
        if Instant::now() >= deadline {
            return Err(BddError::time_limit(self.time_limit_ms));
        }
        Ok(())
    }

    /// Canonical node constructor: collapses redundant tests and keeps the
    /// no-complemented-high-edge invariant by pushing the attribute to the
    /// result edge.
    fn mk_node(&mut self, var: u32, low: BddRef, high: BddRef) -> Result<BddRef> {
        if low == high {
            return Ok(low);
        }
        if high.is_complemented() {
            let r = self.mk_node_regular(var, low.complement(), high.complement())?;
            return Ok(r.complement());
        }
        self.mk_node_regular(var, low, high)
    }

    fn mk_node_regular(&mut self, var: u32, low: BddRef, high: BddRef) -> Result<BddRef> {
        debug_assert!(!high.is_complemented());
        if let Some(&i) = self.unique.get(&(var, low.0, high.0)) {
            return Ok(BddRef::new(i, false));
        }
        self.alloc_node(var, low, high)
    }

    /// The BDD for a constant.
    pub fn constant(&self, value: bool) -> BddRef {
        if value {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        }
    }

    /// The BDD for a single variable. Variable nodes are pinned: they are
    /// never garbage collected, so refs to them stay valid for the life of
    /// the manager.
    ///
    /// # Errors
    ///
    /// Fails if the variable index is out of range.
    pub fn var(&mut self, var: u32) -> Result<BddRef> {
        if var >= self.num_vars {
            return Err(BddError::UnknownVariable { var });
        }
        self.var_node(var)
    }

    fn var_node(&mut self, var: u32) -> Result<BddRef> {
        if let Some(i) = self.var_nodes[var as usize] {
            return Ok(BddRef::new(i, false));
        }
        let r = match self.mk_node(var, BddRef::FALSE, BddRef::TRUE) {
            Err(BddError::ResourceLimit {
                resource: ResourceKind::Nodes,
                ..
            }) if self.auto_gc && !self.in_op && !self.in_reorder => {
                // Creating a variable node at the budget: collect and retry
                // (safe here — no operation recursion is in flight).
                if self.collect_garbage() == 0 {
                    return Err(BddError::node_limit(self.node_limit));
                }
                self.mk_node(var, BddRef::FALSE, BddRef::TRUE)?
            }
            other => other?,
        };
        self.inc_rc(r); // pin
        self.var_nodes[var as usize] = Some(r.idx() as u32);
        Ok(r)
    }

    /// The BDD for the negation of a single variable.
    ///
    /// # Errors
    ///
    /// Fails if the variable index is out of range.
    pub fn nvar(&mut self, var: u32) -> Result<BddRef> {
        Ok(self.var(var)?.complement())
    }

    // ------------------------------------------------------------------
    // Structure access
    // ------------------------------------------------------------------

    fn level_of(&self, f: BddRef) -> u32 {
        let i = f.idx();
        if i == 0 {
            u32::MAX
        } else {
            self.level[self.nodes[i].var as usize]
        }
    }

    fn top_var(&self, f: BddRef) -> Option<u32> {
        let i = f.idx();
        if i == 0 {
            None
        } else {
            Some(self.nodes[i].var)
        }
    }

    /// The (else, then) cofactors of `f` with respect to `var`, resolving
    /// the complement attribute on the incoming edge.
    fn cofactor(&self, f: BddRef, var: u32) -> (BddRef, BddRef) {
        let i = f.idx();
        if i == 0 {
            return (f, f);
        }
        let n = &self.nodes[i];
        if n.var != var {
            return (f, f);
        }
        if f.is_complemented() {
            (n.low.complement(), n.high.complement())
        } else {
            (n.low, n.high)
        }
    }

    fn check_depth(&self, depth: usize) -> Result<()> {
        if depth > self.depth_limit {
            return Err(BddError::ResourceLimit {
                resource: ResourceKind::Depth,
                limit: self.depth_limit,
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Operation driver: auto-GC / auto-reorder at safe points, collect and
    // retry when the live-node budget trips mid-operation.
    // ------------------------------------------------------------------

    fn run_op<F>(&mut self, args: &[BddRef], mut op: F) -> Result<BddRef>
    where
        F: FnMut(&mut Self) -> Result<BddRef>,
    {
        self.prepare(args);
        self.in_op = true;
        let first = op(self);
        self.in_op = false;
        match first {
            Err(BddError::ResourceLimit {
                resource: ResourceKind::Nodes,
                ..
            }) if self.auto_gc && !self.in_reorder => {
                for &a in args {
                    self.protect(a);
                }
                let freed = self.collect_garbage();
                let r = if freed == 0 {
                    Err(BddError::node_limit(self.node_limit))
                } else {
                    self.in_op = true;
                    let retry = op(self);
                    self.in_op = false;
                    retry
                };
                for &a in args {
                    self.unprotect(a);
                }
                r
            }
            r => r,
        }
    }

    fn prepare(&mut self, args: &[BddRef]) {
        if self.in_reorder {
            return;
        }
        let live = self.active - self.dead;
        let needs_gc = self.auto_gc && self.allocs_since_gc > live.max(MIN_GC_THRESHOLD);
        let needs_reorder = self.auto_reorder
            && live >= self.reorder_threshold
            && self.auto_reorders < MAX_AUTO_REORDERS;
        if !needs_gc && !needs_reorder {
            return;
        }
        for &a in args {
            self.protect(a);
        }
        if needs_reorder {
            self.auto_reorders += 1;
            self.reorder();
        } else {
            self.collect_garbage();
        }
        for &a in args {
            self.unprotect(a);
        }
    }

    // ------------------------------------------------------------------
    // Boolean operations
    // ------------------------------------------------------------------

    /// Negation: an O(1) complement-edge flip. Infallible.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        f.complement()
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit (live nodes or recursion depth).
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> Result<BddRef> {
        self.run_op(&[f, g, h], |m| m.ite_rec(f, g, h, 0))
    }

    fn ite_rec(&mut self, f: BddRef, g: BddRef, h: BddRef, depth: usize) -> Result<BddRef> {
        self.check_depth(depth)?;
        // Terminal first-argument cases.
        if f == BddRef::TRUE {
            return Ok(g);
        }
        if f == BddRef::FALSE {
            return Ok(h);
        }
        // Collapse branches that repeat the test.
        let mut g = g;
        let mut h = h;
        if g == f {
            g = BddRef::TRUE;
        } else if g == f.complement() {
            g = BddRef::FALSE;
        }
        if h == f {
            h = BddRef::FALSE;
        } else if h == f.complement() {
            h = BddRef::TRUE;
        }
        if g == h {
            return Ok(g);
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return Ok(f);
        }
        if g == BddRef::FALSE && h == BddRef::TRUE {
            return Ok(f.complement());
        }
        // Commutative normalisations improve cache hit rates:
        // and(f, g), or(f, h) and xor-shaped calls order their operands.
        let mut f = f;
        if h == BddRef::FALSE && f.0 > g.0 {
            std::mem::swap(&mut f, &mut g);
        } else if g == BddRef::TRUE && f.0 > h.0 {
            std::mem::swap(&mut f, &mut h);
        } else if h == g.complement() && f.0 > g.0 {
            // ite(f, g, ¬g) = f ≡ g is commutative: test the smaller ref.
            std::mem::swap(&mut f, &mut g);
            h = g.complement();
        }
        // First argument regular.
        if f.is_complemented() {
            f = f.complement();
            std::mem::swap(&mut g, &mut h);
        }
        // Then-branch regular; complement the result instead.
        let mut negate = false;
        if g.is_complemented() {
            negate = true;
            g = g.complement();
            h = h.complement();
        }
        let key = CacheKey::Ite(f.0, g.0, h.0);
        if let Some(r) = self.cache.lookup(key) {
            return Ok(if negate { r.complement() } else { r });
        }
        let top_level = self.level_of(f).min(self.level_of(g)).min(self.level_of(h));
        let v = self.order[top_level as usize];
        let (f0, f1) = self.cofactor(f, v);
        let (g0, g1) = self.cofactor(g, v);
        let (h0, h1) = self.cofactor(h, v);
        let t = self.ite_rec(f1, g1, h1, depth + 1)?;
        let e = self.ite_rec(f0, g0, h0, depth + 1)?;
        let r = if t == e { t } else { self.mk_node(v, e, t)? };
        self.cache.insert(key, r);
        Ok(if negate { r.complement() } else { r })
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> Result<BddRef> {
        self.run_op(&[f, g], |m| m.ite_rec(f, g, BddRef::FALSE, 0))
    }

    /// Disjunction.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> Result<BddRef> {
        self.run_op(&[f, g], |m| m.ite_rec(f, BddRef::TRUE, g, 0))
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef> {
        self.run_op(&[f, g], |m| m.ite_rec(f, g.complement(), g, 0))
    }

    /// Equivalence (XNOR).
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    pub fn xnor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef> {
        self.run_op(&[f, g], |m| m.ite_rec(f, g, g.complement(), 0))
    }

    /// Implication.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    pub fn implies(&mut self, f: BddRef, g: BddRef) -> Result<BddRef> {
        self.run_op(&[f, g], |m| m.ite_rec(f, g, BddRef::TRUE, 0))
    }

    /// Conjunction of a list of functions.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    pub fn and_all(&mut self, fs: &[BddRef]) -> Result<BddRef> {
        // Operands still pending are protected for the duration: an earlier
        // conjunction may trigger a collection, and the caller only had to
        // keep the refs valid at the call.
        for &f in fs {
            self.protect(f);
        }
        let mut acc = BddRef::TRUE;
        let mut result = Ok(());
        for &f in fs {
            match self.and(acc, f) {
                Ok(r) => acc = r,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        for &f in fs {
            self.unprotect(f);
        }
        result.map(|()| acc)
    }

    /// A *trial* conjunction with an allocation budget: computes
    /// `f ∧ g` like [`BddManager::and`], but abandons the operation and
    /// returns `Ok(None)` once it has constructed more than `new_nodes`
    /// fresh nodes. Within a single operation every fresh node is reachable
    /// from the operation's result (parents of fresh nodes are necessarily
    /// fresh, and the unique table cannot hold a pre-existing parent of a
    /// fresh child), so an abort *proves* the conjunction has more than
    /// `new_nodes` nodes — while a conjunction that already exists mostly
    /// or fully in the node table completes cheaply no matter its size.
    ///
    /// This is the probe greedy clustering wants: "would this product stay
    /// under the cluster limit?" can be answered without materialising an
    /// over-limit product only to discard it. The abandoned intermediates
    /// are ordinary garbage, reclaimed by the next collection.
    ///
    /// # Errors
    ///
    /// Fails only on a genuine resource limit (live nodes, depth, time) —
    /// exhausting the trial budget is reported as `Ok(None)`, not an error.
    pub fn and_within(&mut self, f: BddRef, g: BddRef, new_nodes: usize) -> Result<Option<BddRef>> {
        self.trial_budget = Some(new_nodes);
        let result = self.run_op(&[f, g], |m| {
            m.trial_allocs = 0;
            m.ite_rec(f, g, BddRef::FALSE, 0)
        });
        self.trial_budget = None;
        match result {
            Ok(r) => Ok(Some(r)),
            Err(BddError::ResourceLimit {
                resource: ResourceKind::TrialNodes,
                ..
            }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    // ------------------------------------------------------------------
    // Quantification, composition, renaming, restriction
    // ------------------------------------------------------------------

    fn intern_set(&mut self, vars: &[u32]) -> u32 {
        let mut set: Vec<u32> = vars
            .iter()
            .copied()
            .filter(|&v| v < self.num_vars)
            .collect();
        set.sort_unstable();
        set.dedup();
        if let Some(&id) = self.set_ids.get(&set) {
            return id;
        }
        let id = self.var_sets.len() as u32;
        self.var_sets.push(set.clone());
        self.set_ids.insert(set, id);
        id
    }

    fn set_contains(&self, set_id: u32, var: u32) -> bool {
        self.var_sets[set_id as usize].binary_search(&var).is_ok()
    }

    /// The deepest level any variable of the set currently occupies;
    /// recursion below it can stop quantifying.
    fn set_deepest(&self, set_id: u32) -> u32 {
        self.var_sets[set_id as usize]
            .iter()
            .map(|&v| self.level[v as usize])
            .max()
            .unwrap_or(0)
    }

    /// Existential quantification over a set of variables.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    pub fn exists(&mut self, f: BddRef, vars: &[u32]) -> Result<BddRef> {
        let set = self.intern_set(vars);
        if self.var_sets[set as usize].is_empty() {
            return Ok(f);
        }
        self.run_op(&[f], |m| {
            let deepest = m.set_deepest(set);
            m.exists_rec(f, set, deepest, 0)
        })
    }

    fn exists_rec(&mut self, f: BddRef, set: u32, deepest: u32, depth: usize) -> Result<BddRef> {
        self.check_depth(depth)?;
        if f.is_terminal() || self.level_of(f) > deepest {
            return Ok(f);
        }
        let key = CacheKey::Exists(f.0, set);
        if let Some(r) = self.cache.lookup(key) {
            return Ok(r);
        }
        let v = self.top_var(f).expect("non-terminal");
        let (f0, f1) = self.cofactor(f, v);
        let quantified = self.set_contains(set, v);
        let low = self.exists_rec(f0, set, deepest, depth + 1)?;
        let r = if quantified && low == BddRef::TRUE {
            BddRef::TRUE
        } else {
            let high = self.exists_rec(f1, set, deepest, depth + 1)?;
            if quantified {
                self.ite_rec(low, BddRef::TRUE, high, depth + 1)?
            } else if low == high {
                low
            } else {
                self.mk_node(v, low, high)?
            }
        };
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Universal quantification over a set of variables.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    pub fn forall(&mut self, f: BddRef, vars: &[u32]) -> Result<BddRef> {
        Ok(self.exists(f.complement(), vars)?.complement())
    }

    /// Relational product `∃ vars. f ∧ g`, computed in one fused pass: the
    /// conjunction is never materialised, which is what keeps image
    /// computations on product machines from blowing up on the
    /// intermediate.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    pub fn and_exists(&mut self, f: BddRef, g: BddRef, vars: &[u32]) -> Result<BddRef> {
        let cube = self.cube(vars);
        self.and_exists_cube(f, g, cube)
    }

    /// Interns a quantification variable set for reuse across many
    /// [`BddManager::and_exists_cube`] calls (out-of-range variables are
    /// dropped, matching [`BddManager::exists`]). Interning is idempotent:
    /// the same set always yields the same cube.
    pub fn cube(&mut self, vars: &[u32]) -> VarCube {
        VarCube(self.intern_set(vars))
    }

    /// The variables of an interned cube (sorted ascending).
    pub fn cube_vars(&self, cube: VarCube) -> &[u32] {
        &self.var_sets[cube.0 as usize]
    }

    /// [`BddManager::and_exists`] with a pre-interned quantification cube —
    /// the per-step entry point of image-computation schedules, which
    /// quantify a different set at every conjunction step.
    ///
    /// Passing a cube interned by a *different* manager is a logic error:
    /// the assert below only catches ids beyond this manager's intern
    /// table, while a foreign cube whose id happens to be in range
    /// silently selects whatever variable set this manager interned under
    /// that id.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    ///
    /// # Panics
    ///
    /// Panics if `cube`'s id is beyond this manager's interned sets.
    pub fn and_exists_cube(&mut self, f: BddRef, g: BddRef, cube: VarCube) -> Result<BddRef> {
        let set = cube.0;
        assert!(
            (set as usize) < self.var_sets.len(),
            "cube from a different manager"
        );
        self.run_op(&[f, g], |m| {
            let deepest = m.set_deepest(set);
            m.and_exists_rec(f, g, set, deepest, 0)
        })
    }

    fn and_exists_rec(
        &mut self,
        f: BddRef,
        g: BddRef,
        set: u32,
        deepest: u32,
        depth: usize,
    ) -> Result<BddRef> {
        self.check_depth(depth)?;
        if f == BddRef::FALSE || g == BddRef::FALSE || f == g.complement() {
            return Ok(BddRef::FALSE);
        }
        if f == BddRef::TRUE || f == g {
            return self.exists_rec(g, set, deepest, depth + 1);
        }
        if g == BddRef::TRUE {
            return self.exists_rec(f, set, deepest, depth + 1);
        }
        // Below the deepest quantified level this is a plain conjunction.
        if self.level_of(f) > deepest && self.level_of(g) > deepest {
            return self.ite_rec(f, g, BddRef::FALSE, depth + 1);
        }
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = CacheKey::AndExists(f.0, g.0, set);
        if let Some(r) = self.cache.lookup(key) {
            return Ok(r);
        }
        let top_level = self.level_of(f).min(self.level_of(g));
        let v = self.order[top_level as usize];
        let (f0, f1) = self.cofactor(f, v);
        let (g0, g1) = self.cofactor(g, v);
        let r = if self.set_contains(set, v) {
            let t = self.and_exists_rec(f1, g1, set, deepest, depth + 1)?;
            if t == BddRef::TRUE {
                BddRef::TRUE
            } else {
                let e = self.and_exists_rec(f0, g0, set, deepest, depth + 1)?;
                self.ite_rec(t, BddRef::TRUE, e, depth + 1)?
            }
        } else {
            let t = self.and_exists_rec(f1, g1, set, deepest, depth + 1)?;
            let e = self.and_exists_rec(f0, g0, set, deepest, depth + 1)?;
            if t == e {
                t
            } else {
                self.mk_node(v, e, t)?
            }
        };
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Functional composition: substitutes the function `g` for the
    /// variable `var` in `f` (Shannon expansion `ite(g, f|var=1, f|var=0)`).
    ///
    /// # Errors
    ///
    /// Fails if `var` is out of range or on a resource limit.
    pub fn compose(&mut self, f: BddRef, var: u32, g: BddRef) -> Result<BddRef> {
        if var >= self.num_vars {
            return Err(BddError::UnknownVariable { var });
        }
        self.run_op(&[f, g], |m| m.compose_rec(f, var, g, 0))
    }

    fn compose_rec(&mut self, f: BddRef, var: u32, g: BddRef, depth: usize) -> Result<BddRef> {
        self.check_depth(depth)?;
        if self.level_of(f) > self.level[var as usize] {
            return Ok(f); // var cannot occur in f
        }
        let key = CacheKey::Compose(f.0, var, g.0);
        if let Some(r) = self.cache.lookup(key) {
            return Ok(r);
        }
        let v = self.top_var(f).expect("non-terminal");
        let (f0, f1) = self.cofactor(f, v);
        let r = if v == var {
            self.ite_rec(g, f1, f0, depth + 1)?
        } else {
            let t = self.compose_rec(f1, var, g, depth + 1)?;
            let e = self.compose_rec(f0, var, g, depth + 1)?;
            let vn = self.var_node(v)?;
            self.ite_rec(vn, t, e, depth + 1)?
        };
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Substitutes several variables by functions, one after another. The
    /// substituted variables must not occur in the replacement functions of
    /// *other* substitutions (which holds for the variable-to-representative
    /// merging it is used for).
    ///
    /// # Errors
    ///
    /// Fails if a variable is out of range or on a resource limit.
    pub fn compose_many(&mut self, f: BddRef, subs: &[(u32, BddRef)]) -> Result<BddRef> {
        // Replacement functions used by later substitutions are protected
        // while the earlier ones run (they are usually pinned variable
        // nodes, but the API does not require that).
        for &(_, g) in subs {
            self.protect(g);
        }
        let mut acc = f;
        let mut result = Ok(());
        for &(var, g) in subs {
            match self.compose(acc, var, g) {
                Ok(r) => acc = r,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        for &(_, g) in subs {
            self.unprotect(g);
        }
        result.map(|()| acc)
    }

    fn intern_map(&mut self, map: &[(u32, u32)]) -> u32 {
        let mut seen = std::collections::HashSet::new();
        let mut m: Vec<(u32, u32)> = map
            .iter()
            .copied()
            .filter(|(a, _)| seen.insert(*a))
            .collect();
        m.sort_unstable();
        if let Some(&id) = self.map_ids.get(&m) {
            return id;
        }
        let id = self.var_maps.len() as u32;
        self.var_maps.push(m.clone());
        self.map_ids.insert(m, id);
        id
    }

    fn map_lookup(&self, map_id: u32, var: u32) -> u32 {
        let m = &self.var_maps[map_id as usize];
        match m.binary_search_by_key(&var, |&(a, _)| a) {
            Ok(i) => m[i].1,
            Err(_) => var,
        }
    }

    /// Renames variables according to `map` (old → new), as a simultaneous
    /// substitution. Unlike the textbook implementation, the mapping need
    /// not be monotone in the variable order — dynamic reordering makes a
    /// "monotone" map meaningless anyway — though monotone maps are
    /// cheapest.
    ///
    /// # Errors
    ///
    /// Fails if a variable is out of range or on a resource limit.
    pub fn rename(&mut self, f: BddRef, map: &[(u32, u32)]) -> Result<BddRef> {
        for &(a, b) in map {
            if a >= self.num_vars || b >= self.num_vars {
                return Err(BddError::UnknownVariable { var: a.max(b) });
            }
        }
        let map_id = self.intern_map(map);
        if self.var_maps[map_id as usize].is_empty() {
            return Ok(f);
        }
        self.run_op(&[f], |m| m.rename_rec(f, map_id, 0))
    }

    fn rename_rec(&mut self, f: BddRef, map_id: u32, depth: usize) -> Result<BddRef> {
        self.check_depth(depth)?;
        if f.is_terminal() {
            return Ok(f);
        }
        let key = CacheKey::Rename(f.0, map_id);
        if let Some(r) = self.cache.lookup(key) {
            return Ok(r);
        }
        let v = self.top_var(f).expect("non-terminal");
        let (f0, f1) = self.cofactor(f, v);
        let t = self.rename_rec(f1, map_id, depth + 1)?;
        let e = self.rename_rec(f0, map_id, depth + 1)?;
        let w = self.map_lookup(map_id, v);
        let wn = self.var_node(w)?;
        let r = self.ite_rec(wn, t, e, depth + 1)?;
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Restricts a variable to a constant value (a single cofactor walk,
    /// not a conjunction plus quantification).
    ///
    /// # Errors
    ///
    /// Fails if `var` is out of range or on a resource limit.
    pub fn restrict(&mut self, f: BddRef, var: u32, value: bool) -> Result<BddRef> {
        if var >= self.num_vars {
            return Err(BddError::UnknownVariable { var });
        }
        self.run_op(&[f], |m| m.restrict_rec(f, var, value, 0))
    }

    fn restrict_rec(&mut self, f: BddRef, var: u32, value: bool, depth: usize) -> Result<BddRef> {
        self.check_depth(depth)?;
        if self.level_of(f) > self.level[var as usize] {
            return Ok(f);
        }
        let key = CacheKey::Restrict(f.0, var, value as u32);
        if let Some(r) = self.cache.lookup(key) {
            return Ok(r);
        }
        let v = self.top_var(f).expect("non-terminal");
        let (f0, f1) = self.cofactor(f, v);
        let r = if v == var {
            if value {
                f1
            } else {
                f0
            }
        } else {
            let t = self.restrict_rec(f1, var, value, depth + 1)?;
            let e = self.restrict_rec(f0, var, value, depth + 1)?;
            if t == e {
                t
            } else {
                self.mk_node(v, e, t)?
            }
        };
        self.cache.insert(key, r);
        Ok(r)
    }

    // ------------------------------------------------------------------
    // Analysis (read-only)
    // ------------------------------------------------------------------

    /// Evaluates the function under a complete assignment
    /// (`assignment[i]` is the value of variable `i`).
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        let mut cur = f;
        let mut parity = false;
        loop {
            parity ^= cur.is_complemented();
            let i = cur.idx();
            if i == 0 {
                return !parity;
            }
            let n = &self.nodes[i];
            let v = assignment.get(n.var as usize).copied().unwrap_or(false);
            cur = if v { n.high } else { n.low };
        }
    }

    /// The number of satisfying assignments over all `num_vars` variables.
    pub fn sat_count(&self, f: BddRef) -> f64 {
        fn frac(m: &BddManager, f: BddRef, cache: &mut HashMap<u32, f64>) -> f64 {
            let i = f.idx();
            let regular = if i == 0 {
                1.0
            } else if let Some(&c) = cache.get(&(i as u32)) {
                c
            } else {
                let n = m.nodes[i];
                let r = 0.5 * frac(m, n.low, cache) + 0.5 * frac(m, n.high, cache);
                cache.insert(i as u32, r);
                r
            };
            if f.is_complemented() {
                1.0 - regular
            } else {
                regular
            }
        }
        let mut cache = HashMap::new();
        frac(self, f, &mut cache) * 2f64.powi(self.num_vars as i32)
    }

    /// The support of a function: the variables it depends on, ascending.
    pub fn support(&self, f: BddRef) -> Vec<u32> {
        self.support_union(&[f])
    }

    /// The support of a conjunction `f₁ ∧ … ∧ fₖ` without building it: the
    /// union of the operands' supports, ascending (and the shared walk
    /// behind the single-function [`BddManager::support`]). Lets a
    /// quantification scheduler ask what a candidate cluster would depend
    /// on before any cluster product is materialised.
    pub fn support_union(&self, fs: &[BddRef]) -> Vec<u32> {
        let mut seen = std::collections::BTreeSet::new();
        let mut visited = std::collections::HashSet::new();
        let mut stack: Vec<usize> = fs.iter().map(|f| f.idx()).collect();
        while let Some(i) = stack.pop() {
            if i == 0 || !visited.insert(i) {
                continue;
            }
            let n = &self.nodes[i];
            seen.insert(n.var);
            stack.push(n.low.idx());
            stack.push(n.high.idx());
        }
        seen.into_iter().collect()
    }

    /// The number of distinct nodes reachable from `f`, including the
    /// terminal (a size measure for the experiment reports).
    pub fn size(&self, f: BddRef) -> usize {
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![f.idx()];
        while let Some(i) = stack.pop() {
            if i == 0 || !visited.insert(i) {
                continue;
            }
            let n = &self.nodes[i];
            stack.push(n.low.idx());
            stack.push(n.high.idx());
        }
        visited.len() + 1
    }

    /// Finds one satisfying assignment, if any (variables not in the
    /// support are set to `false`).
    pub fn any_sat(&self, f: BddRef) -> Option<Vec<bool>> {
        if f == BddRef::FALSE {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut cur = f;
        let mut parity = false;
        loop {
            parity ^= cur.is_complemented();
            let i = cur.idx();
            if i == 0 {
                debug_assert!(!parity, "walk reached FALSE");
                return Some(assignment);
            }
            let n = &self.nodes[i];
            // The high edge is stored regular, so under the accumulated
            // parity it denotes FALSE exactly when it is the terminal and
            // the parity is odd.
            let high_is_false = n.high.idx() == 0 && parity;
            if !high_is_false {
                assignment[n.var as usize] = true;
                cur = n.high;
            } else {
                assignment[n.var as usize] = false;
                cur = n.low;
            }
        }
    }

    // ------------------------------------------------------------------
    // Variable reordering (Rudell sifting)
    // ------------------------------------------------------------------

    /// Runs one pass of Rudell sifting: each variable (most-populated
    /// levels first) is moved through the order by adjacent-level swaps and
    /// left at its best position. In-place swaps preserve every external
    /// [`BddRef`]'s meaning. Returns the number of live nodes saved.
    pub fn reorder(&mut self) -> usize {
        if self.num_vars < 2 || self.in_reorder {
            return 0;
        }
        self.in_reorder = true;
        self.collect_garbage();
        let before = self.active - self.dead;
        let mut levels = self.build_levels();
        let mut by_size: Vec<(usize, u32)> = (0..self.num_vars)
            .map(|v| (levels[self.level[v as usize] as usize].len(), v))
            .collect();
        by_size.sort_unstable_by(|a, b| b.cmp(a));
        let mut budget = (before * 6).max(50_000);
        for (population, var) in by_size {
            if budget == 0 {
                break;
            }
            if population == 0 {
                continue;
            }
            self.sift_var(var, &mut levels, &mut budget);
        }
        self.collect_garbage();
        self.in_reorder = false;
        self.reorders += 1;
        let after = self.active - self.dead;
        // Re-arm the growth trigger well above the (hopefully smaller) new
        // size so reordering amortises.
        self.reorder_threshold = (after * 4).max(self.reorder_threshold);
        before.saturating_sub(after)
    }

    /// Installs an explicit variable order (`new_order[0]` becomes the top
    /// level), by adjacent swaps. Must be a permutation of all variables.
    ///
    /// # Errors
    ///
    /// Fails with [`BddError::UnknownVariable`] if `new_order` is not a
    /// permutation of `0..num_vars`.
    pub fn set_order(&mut self, new_order: &[u32]) -> Result<()> {
        let mut seen = vec![false; self.num_vars as usize];
        for &v in new_order {
            if v >= self.num_vars || seen[v as usize] {
                return Err(BddError::UnknownVariable { var: v });
            }
            seen[v as usize] = true;
        }
        if new_order.len() != self.num_vars as usize {
            return Err(BddError::UnknownVariable { var: self.num_vars });
        }
        self.in_reorder = true;
        self.collect_garbage();
        let mut levels = self.build_levels();
        for (target, &var) in new_order.iter().enumerate() {
            let mut cur = self.level[var as usize] as usize;
            while cur > target {
                self.swap_levels(cur - 1, &mut levels);
                cur -= 1;
            }
        }
        self.collect_garbage();
        self.in_reorder = false;
        Ok(())
    }

    fn build_levels(&self) -> Vec<Vec<u32>> {
        let mut levels = vec![Vec::new(); self.num_vars as usize];
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            if n.var != FREE_VAR {
                levels[self.level[n.var as usize] as usize].push(i as u32);
            }
        }
        levels
    }

    /// Sifts one variable: explore towards the nearer end of the order
    /// first, then the other end, then settle at the best position seen.
    fn sift_var(&mut self, var: u32, levels: &mut [Vec<u32>], budget: &mut usize) {
        let n_levels = self.num_vars as usize;
        let start = self.level[var as usize] as usize;
        let start_size = self.active - self.dead;
        let grow_limit = start_size * 2 + 16;
        let mut best_size = start_size;
        let mut best_pos = start;
        let mut cur = start;
        let down_first = n_levels - 1 - start <= start;
        for phase in 0..2 {
            let downwards = down_first == (phase == 0);
            loop {
                let can_move = if downwards {
                    cur + 1 < n_levels
                } else {
                    cur > 0
                };
                if !can_move || *budget == 0 {
                    break;
                }
                let work = if downwards {
                    let w = self.swap_levels(cur, levels);
                    cur += 1;
                    w
                } else {
                    let w = self.swap_levels(cur - 1, levels);
                    cur -= 1;
                    w
                };
                *budget = budget.saturating_sub(work);
                let size = self.active - self.dead;
                if size < best_size {
                    best_size = size;
                    best_pos = cur;
                }
                if size > grow_limit {
                    break;
                }
            }
        }
        while cur < best_pos {
            self.swap_levels(cur, levels);
            cur += 1;
        }
        while cur > best_pos {
            self.swap_levels(cur - 1, levels);
            cur -= 1;
        }
    }

    /// Swaps the variables at levels `l` and `l + 1` in place. Every node
    /// at level `l` that depends on the lower variable is rewritten to test
    /// the lower variable first; its index — and therefore every external
    /// reference to it — keeps denoting the same function. Returns a work
    /// estimate for the sifting budget.
    fn swap_levels(&mut self, l: usize, levels: &mut [Vec<u32>]) -> usize {
        let x = self.order[l];
        let y = self.order[l + 1];
        let old_x_list = std::mem::take(&mut levels[l]);
        let mut stay_x: Vec<u32> = Vec::new();
        let mut moved: Vec<u32> = Vec::new();
        let mut work = old_x_list.len().max(1);
        for ni in old_x_list {
            let node = self.nodes[ni as usize];
            debug_assert_eq!(node.var, x);
            let t1 = node.high;
            let e1 = node.low;
            let t_dep = self.top_var(t1) == Some(y);
            let e_dep = self.top_var(e1) == Some(y);
            if !t_dep && !e_dep {
                stay_x.push(ni);
                continue;
            }
            // Cofactors of the children with respect to y. The high edge is
            // regular by invariant, so its cofactors are the stored ones;
            // the low edge may carry the complement attribute.
            let (t11, t10) = if t_dep {
                let c = self.nodes[t1.idx()];
                (c.high, c.low)
            } else {
                (t1, t1)
            };
            let (e11, e10) = if e_dep {
                let c = self.nodes[e1.idx()];
                if e1.is_complemented() {
                    (c.high.complement(), c.low.complement())
                } else {
                    (c.high, c.low)
                }
            } else {
                (e1, e1)
            };
            self.unique.remove(&(x, e1.0, t1.0));
            self.dec_rc(t1);
            self.dec_rc(e1);
            let (new_t, created_t) = self.mk_node_inplace(x, e11, t11);
            if created_t {
                stay_x.push(new_t.idx() as u32);
                work += 1;
            }
            let (new_e, created_e) = self.mk_node_inplace(x, e10, t10);
            if created_e {
                stay_x.push(new_e.idx() as u32);
                work += 1;
            }
            // The new then-child is built from cofactors of the old regular
            // then-edge, so it comes out regular: the invariant holds
            // without touching external references.
            debug_assert!(!new_t.is_complemented());
            self.inc_rc(new_t);
            self.inc_rc(new_e);
            let rc = self.nodes[ni as usize].rc;
            self.nodes[ni as usize] = Node {
                var: y,
                low: new_e,
                high: new_t,
                rc,
            };
            self.unique.insert((y, new_e.0, new_t.0), ni);
            moved.push(ni);
            work += 2;
        }
        let mut new_upper = std::mem::take(&mut levels[l + 1]);
        new_upper.extend(moved);
        levels[l] = new_upper;
        levels[l + 1] = stay_x;
        self.order.swap(l, l + 1);
        self.level[x as usize] = (l + 1) as u32;
        self.level[y as usize] = l as u32;
        work
    }

    /// `mk_node` for reordering: never fails (the node limit is suspended
    /// during a reorder pass) and reports whether a fresh node was created.
    fn mk_node_inplace(&mut self, var: u32, low: BddRef, high: BddRef) -> (BddRef, bool) {
        if low == high {
            return (low, false);
        }
        if high.is_complemented() {
            let (r, created) =
                self.mk_node_inplace_regular(var, low.complement(), high.complement());
            return (r.complement(), created);
        }
        self.mk_node_inplace_regular(var, low, high)
    }

    fn mk_node_inplace_regular(&mut self, var: u32, low: BddRef, high: BddRef) -> (BddRef, bool) {
        if let Some(&i) = self.unique.get(&(var, low.0, high.0)) {
            return (BddRef::new(i, false), false);
        }
        debug_assert!(self.in_reorder);
        let r = self.alloc_node(var, low, high).expect("limit suspended");
        (r, true)
    }

    // ------------------------------------------------------------------
    // Self-checks (used by the differential test suite)
    // ------------------------------------------------------------------

    /// Verifies the structural invariants of the whole manager: regular
    /// high edges, strict level ordering along edges, unique-table
    /// consistency and exact reference counts. Expensive; test use only.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let mut parent_counts: HashMap<usize, u32> = HashMap::new();
        let mut active = 0usize;
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            if n.var == FREE_VAR {
                continue;
            }
            active += 1;
            if n.high.is_complemented() {
                return Err(format!("node {i} has a complemented high edge"));
            }
            if n.low == n.high {
                return Err(format!("node {i} is a redundant test"));
            }
            let my_level = self.level[n.var as usize];
            for child in [n.low, n.high] {
                let ci = child.idx();
                if ci != 0 {
                    let c = &self.nodes[ci];
                    if c.var == FREE_VAR {
                        return Err(format!("node {i} points at freed slot {ci}"));
                    }
                    if self.level[c.var as usize] <= my_level {
                        return Err(format!("node {i} violates the level order"));
                    }
                }
                *parent_counts.entry(ci).or_insert(0) += 1;
            }
            match self.unique.get(&(n.var, n.low.0, n.high.0)) {
                Some(&u) if u as usize == i => {}
                _ => return Err(format!("node {i} missing from the unique table")),
            }
        }
        if self.unique.len() != active {
            return Err(format!(
                "unique table has {} entries for {} active nodes",
                self.unique.len(),
                active
            ));
        }
        if active != self.active {
            return Err(format!(
                "active count {} does not match table {}",
                self.active, active
            ));
        }
        let mut dead = 0usize;
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            if n.var == FREE_VAR {
                continue;
            }
            let mut expected = parent_counts.get(&i).copied().unwrap_or(0);
            expected += self.ext_refs.get(&(i as u32)).copied().unwrap_or(0);
            if self.var_nodes[self.nodes[i].var as usize] == Some(i as u32)
                && self.nodes[i].var != FREE_VAR
            {
                expected += 1;
            }
            if n.rc != expected {
                return Err(format!(
                    "node {i} has rc {} but {} references",
                    n.rc, expected
                ));
            }
            if n.rc == 0 {
                dead += 1;
            }
        }
        if dead != self.dead {
            return Err(format!(
                "dead count {} does not match table {}",
                self.dead, dead
            ));
        }
        for (lvl, &v) in self.order.iter().enumerate() {
            if self.level[v as usize] as usize != lvl {
                return Err("order/level arrays disagree".to_string());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(m: &BddManager) {
        m.check_invariants().expect("invariants hold");
    }

    #[test]
    fn constants_and_variables() {
        let mut m = BddManager::new(3);
        assert_eq!(m.constant(true), BddRef::TRUE);
        assert_eq!(m.constant(false), BddRef::FALSE);
        let x = m.var(0).unwrap();
        let nx = m.nvar(0).unwrap();
        let n = m.not(x);
        assert_eq!(n, nx);
        assert!(m.var(3).is_err());
        check(&m);
    }

    #[test]
    fn negation_is_free() {
        let mut m = BddManager::new(4);
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let f = m.and(x, y).unwrap();
        let before = m.stats().allocated_slots;
        let g = m.not(f);
        assert_eq!(m.stats().allocated_slots, before, "no allocation");
        assert_eq!(m.not(g), f, "double complement is the identity");
        assert_ne!(g, f);
        check(&m);
    }

    #[test]
    fn boolean_algebra_laws() {
        let mut m = BddManager::new(3);
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let z = m.var(2).unwrap();
        let yz = m.or(y, z).unwrap();
        let lhs = m.and(x, yz).unwrap();
        let xy = m.and(x, y).unwrap();
        let xz = m.and(x, z).unwrap();
        let rhs = m.or(xy, xz).unwrap();
        assert_eq!(lhs, rhs, "canonical form makes equal functions identical");
        let nxy = {
            let a = m.and(x, y).unwrap();
            m.not(a)
        };
        let nx = m.not(x);
        let ny = m.not(y);
        let or_n = m.or(nx, ny).unwrap();
        assert_eq!(nxy, or_n, "De Morgan");
        check(&m);
    }

    #[test]
    fn xor_and_xnor() {
        let mut m = BddManager::new(2);
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let a = m.xor(x, y).unwrap();
        let b = m.xnor(x, y).unwrap();
        assert_eq!(a, m.not(b));
        let self_xor = m.xor(x, x).unwrap();
        assert_eq!(self_xor, BddRef::FALSE);
        check(&m);
    }

    #[test]
    fn evaluation_matches_semantics() {
        let mut m = BddManager::new(3);
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let z = m.var(2).unwrap();
        let xy = m.and(x, y).unwrap();
        let f = m.or(xy, z).unwrap();
        for bits in 0..8u32 {
            let a = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let expected = (a[0] && a[1]) || a[2];
            assert_eq!(m.eval(f, &a), expected, "assignment {a:?}");
            assert!(m.eval(m.constant(true), &a));
            assert!(!m.eval(m.constant(false), &a));
        }
    }

    #[test]
    fn quantification() {
        let mut m = BddManager::new(3);
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let f = m.and(x, y).unwrap();
        let ex = m.exists(f, &[0]).unwrap();
        assert_eq!(ex, y);
        let fa = m.forall(f, &[0]).unwrap();
        assert_eq!(fa, BddRef::FALSE);
        let both = m.exists(f, &[0, 1]).unwrap();
        assert_eq!(both, BddRef::TRUE);
        assert_eq!(m.exists(f, &[]).unwrap(), f);
        check(&m);
    }

    #[test]
    fn and_exists_is_fused_relational_product() {
        let mut m = BddManager::new(4);
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let z = m.var(2).unwrap();
        let f = m.xor(x, y).unwrap();
        let g = m.xnor(y, z).unwrap();
        let direct = {
            let conj = m.and(f, g).unwrap();
            m.exists(conj, &[1]).unwrap()
        };
        let fused = m.and_exists(f, g, &[1]).unwrap();
        assert_eq!(direct, fused);
        check(&m);
    }

    #[test]
    fn rename_arbitrary_maps() {
        let mut m = BddManager::new(4);
        let x0 = m.var(0).unwrap();
        let x1 = m.var(1).unwrap();
        let f = m.implies(x0, x1).unwrap();
        // Monotone map.
        let renamed = m.rename(f, &[(0, 2), (1, 3)]).unwrap();
        let x2 = m.var(2).unwrap();
        let x3 = m.var(3).unwrap();
        let expect = m.implies(x2, x3).unwrap();
        assert_eq!(renamed, expect);
        // Non-monotone (order-reversing) map: now supported.
        let swapped = m.rename(f, &[(0, 3), (1, 2)]).unwrap();
        let expect2 = m.implies(x3, x2).unwrap();
        assert_eq!(swapped, expect2);
        // A simultaneous swap of 0 and 1.
        let sw = m.rename(f, &[(0, 1), (1, 0)]).unwrap();
        let expect3 = m.implies(x1, x0).unwrap();
        assert_eq!(sw, expect3);
        assert!(m.rename(f, &[(0, 9)]).is_err());
        check(&m);
    }

    #[test]
    fn restrict_compose_support() {
        let mut m = BddManager::new(3);
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let z = m.var(2).unwrap();
        let f = m.xor(x, y).unwrap();
        assert_eq!(m.support(f), vec![0, 1]);
        let f_x1 = m.restrict(f, 0, true).unwrap();
        assert_eq!(f_x1, m.not(y));
        let f_x0 = m.restrict(f, 0, false).unwrap();
        assert_eq!(f_x0, y);
        // compose x := z into x ⊕ y gives z ⊕ y.
        let composed = m.compose(f, 0, z).unwrap();
        let expect = m.xor(z, y).unwrap();
        assert_eq!(composed, expect);
        check(&m);
    }

    #[test]
    fn sat_count_and_any_sat() {
        let mut m = BddManager::new(3);
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let f = m.and(x, y).unwrap();
        assert!((m.sat_count(f) - 2.0).abs() < 1e-9);
        let nf = m.not(f);
        assert!((m.sat_count(nf) - 6.0).abs() < 1e-9);
        let a = m.any_sat(f).unwrap();
        assert!(m.eval(f, &a));
        let an = m.any_sat(nf).unwrap();
        assert!(m.eval(nf, &an));
        assert!(m.any_sat(BddRef::FALSE).is_none());
        assert!((m.sat_count(BddRef::TRUE) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn node_limit_counts_live_nodes() {
        // The budget is on live nodes: churning through temporaries far in
        // excess of the limit succeeds because garbage is collected, while
        // a genuinely large live structure still trips it.
        let mut m = BddManager::new(16).with_node_limit(64);
        let vs: Vec<BddRef> = (0..16).map(|i| m.var(i).unwrap()).collect();
        let (x, y) = (vs[0], vs[1]);
        for _ in 0..2_000 {
            let t = m.xor(x, y).unwrap();
            let _ = m.and(t, x).unwrap(); // becomes garbage immediately
        }
        check(&m);
        // Pile up *protected* distinct functions until the live budget is
        // genuinely needed.
        let mut acc = m.constant(false);
        m.protect(acc);
        let mut kept = vec![acc];
        for (i, &v) in vs.iter().enumerate() {
            let r = match m.xor(acc, v) {
                Ok(r) => r,
                Err(e) if e.is_resource_limit() => break,
                Err(e) => panic!("unexpected error {e}"),
            };
            m.protect(r);
            kept.push(r);
            acc = r;
            let lo = vs[i / 2];
            let extra = match m.and(acc, lo) {
                Ok(extra) => extra,
                Err(e) if e.is_resource_limit() => break,
                Err(e) => panic!("unexpected error {e}"),
            };
            m.protect(extra);
            kept.push(extra);
        }
        assert!(m.node_count() <= 64 + 1, "live nodes stay within budget");
        check(&m);
    }

    #[test]
    fn gc_reclaims_garbage_but_not_protected() {
        let mut m = BddManager::new(8);
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let keep = m.and(x, y).unwrap();
        m.protect(keep);
        for i in 2..8 {
            let v = m.var(i).unwrap();
            let _ = m.xor(keep, v).unwrap(); // garbage
        }
        let before = m.node_count();
        let freed = m.collect_garbage();
        assert!(freed > 0, "temporaries are reclaimed");
        assert!(m.node_count() < before);
        assert!(m.eval(
            keep,
            &[true, true, false, false, false, false, false, false]
        ));
        check(&m);
        // Releasing the protection lets the node go on the next collection.
        m.unprotect(keep);
        let freed2 = m.collect_garbage();
        assert!(freed2 >= 1);
        check(&m);
    }

    #[test]
    fn depth_limit_reports_resource_limit() {
        let mut m = BddManager::new(8).with_depth_limit(3);
        let vs: Vec<BddRef> = (0..8).map(|i| m.var(i).unwrap()).collect();
        // The conjunction chain descends one level per variable, so it must
        // eventually exceed a depth budget of 3.
        match m.and_all(&vs) {
            Err(BddError::ResourceLimit {
                resource: ResourceKind::Depth,
                ..
            }) => {}
            other => panic!("expected a depth limit, got {other:?}"),
        }
    }

    #[test]
    fn cache_is_bounded_and_evicts() {
        let mut m = BddManager::new(24).with_cache_capacity(1024);
        let mut fs = Vec::new();
        for i in 0..24 {
            let v = m.var(i).unwrap();
            fs.push(v);
        }
        let f = m.and_all(&fs).unwrap();
        m.protect(f);
        for i in 0..23 {
            let _ = m.exists(f, &[i]).unwrap();
            let _ = m.restrict(f, i, true).unwrap();
        }
        // The same query again is answered from the cache.
        let e1 = m.exists(f, &[5]).unwrap();
        let e2 = m.exists(f, &[5]).unwrap();
        assert_eq!(e1, e2);
        let st = m.stats();
        assert!(st.cache_hits > 0);
        assert!(st.cache_misses > 0);
        check(&m);
    }

    #[test]
    fn sifting_shrinks_an_adversarial_order() {
        // f = (x0∧x3) ∨ (x1∧x4) ∨ (x2∧x5) under the interleaved order
        // 0,1,2,3,4,5 is exponential in the number of pairs; sifting finds
        // the paired order and shrinks it.
        let mut m = BddManager::new(6);
        let mut f = m.constant(false);
        for i in 0..3 {
            let a = m.var(i).unwrap();
            let b = m.var(i + 3).unwrap();
            let ab = m.and(a, b).unwrap();
            f = m.or(f, ab).unwrap();
        }
        m.protect(f);
        let before = m.size(f);
        let saved = m.reorder();
        let after = m.size(f);
        assert!(after < before, "sifting shrinks {before} -> {after}");
        assert!(saved > 0);
        check(&m);
        // Semantics preserved across the reorder.
        for bits in 0..64u32 {
            let a: Vec<bool> = (0..6).map(|i| (bits >> i) & 1 != 0).collect();
            let expected = (a[0] && a[3]) || (a[1] && a[4]) || (a[2] && a[5]);
            assert_eq!(m.eval(f, &a), expected);
        }
        assert!(m.stats().reorders >= 1);
    }

    #[test]
    fn explicit_order_round_trips() {
        let mut m = BddManager::new(4);
        let x0 = m.var(0).unwrap();
        let x2 = m.var(2).unwrap();
        let f = m.xor(x0, x2).unwrap();
        m.protect(f);
        m.set_order(&[3, 2, 1, 0]).unwrap();
        assert_eq!(m.order(), vec![3, 2, 1, 0]);
        check(&m);
        for bits in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 != 0).collect();
            assert_eq!(m.eval(f, &a), a[0] ^ a[2]);
        }
        m.set_order(&[0, 1, 2, 3]).unwrap();
        assert_eq!(m.order(), vec![0, 1, 2, 3]);
        assert!(m.set_order(&[0, 0, 1, 2]).is_err());
        assert!(m.set_order(&[0, 1]).is_err());
        check(&m);
    }

    #[test]
    fn dynamic_reordering_triggers_on_growth() {
        // The adversarially-interleaved pair function over 13 pairs peaks
        // well above INITIAL_REORDER_THRESHOLD (4096) live nodes, so the
        // growth trigger in `prepare` must fire at least once mid-build.
        const PAIRS: u32 = 13;
        let mut m = BddManager::new(2 * PAIRS).with_dynamic_reordering(true);
        let mut f = m.constant(false);
        m.protect(f);
        for i in 0..PAIRS {
            let a = m.var(i).unwrap();
            let b = m.var(PAIRS + i).unwrap();
            let ab = m.and(a, b).unwrap();
            let next = m.or(f, ab).unwrap();
            m.update_protected(&mut f, next);
        }
        assert!(
            m.stats().reorders >= 1,
            "growth past the threshold runs a sifting pass"
        );
        for bits in [0u32, !0u32, 0x00FF_13FF, 0x1234_5678, 0x0357_9BDF] {
            let a: Vec<bool> = (0..2 * PAIRS).map(|i| (bits >> i) & 1 != 0).collect();
            let expected = (0..PAIRS as usize).any(|i| a[i] && a[i + PAIRS as usize]);
            assert_eq!(m.eval(f, &a), expected);
        }
        check(&m);
    }

    #[test]
    fn size_is_canonical() {
        let mut m = BddManager::new(4);
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let f1 = m.and(x, y).unwrap();
        assert!(m.size(f1) >= 3);
        assert_eq!(m.and(x, y).unwrap(), f1, "hash consing returns same node");
        assert_eq!(m.size(BddRef::TRUE), 1);
    }

    #[test]
    fn expired_deadline_aborts_with_time_limit_and_intact_invariants() {
        // A deliberately tiny (already elapsed) deadline: the very next
        // node construction must fail with ResourceKind::Time, and the
        // manager must remain structurally consistent after the abort.
        let mut m = BddManager::new(16).with_time_limit(Duration::ZERO);
        let x = m.var(0);
        let err = match x {
            Err(e) => e,
            Ok(x) => {
                // var(0) can only succeed if the poll had not yet fired;
                // the first real operation must then trip it.
                let y = m.var(1).unwrap_or(x);
                m.xor(x, y).expect_err("deadline expired")
            }
        };
        match err {
            BddError::ResourceLimit {
                resource: ResourceKind::Time,
                ..
            } => {}
            other => panic!("expected a time limit, got {other:?}"),
        }
        check(&m);
        // The deadline also aborts mid-operation on a non-empty manager,
        // again leaving the invariants intact.
        let mut m = BddManager::new(16);
        let vs: Vec<BddRef> = (0..16).map(|i| m.var(i).unwrap()).collect();
        let f = m.and_all(&vs[..8]).unwrap();
        m.protect(f);
        let mut m = m.with_time_limit(Duration::ZERO);
        let err = m.and_all(&vs).expect_err("deadline expired");
        assert!(matches!(
            err,
            BddError::ResourceLimit {
                resource: ResourceKind::Time,
                ..
            }
        ));
        check(&m);
        // Surviving BDDs stay usable for read-only queries.
        assert!(m.eval(f, &[true; 16]));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let mut m = BddManager::new(8).with_time_limit(Duration::from_secs(3600));
        let vs: Vec<BddRef> = (0..8).map(|i| m.var(i).unwrap()).collect();
        let f = m.and_all(&vs).unwrap();
        assert_ne!(f, BddRef::FALSE);
        check(&m);
    }

    #[test]
    fn support_union_is_the_conjunction_support() {
        let mut m = BddManager::new(6);
        let x = m.var(0).unwrap();
        let y = m.var(2).unwrap();
        let z = m.var(4).unwrap();
        let f = m.xor(x, y).unwrap();
        let g = m.and(y, z).unwrap();
        assert_eq!(m.support_union(&[f, g]), vec![0, 2, 4]);
        let conj = m.and(f, g).unwrap();
        assert_eq!(m.support_union(&[f, g]), m.support(conj));
        assert!(m.support_union(&[]).is_empty());
        assert!(m.support_union(&[BddRef::TRUE, BddRef::FALSE]).is_empty());
    }

    #[test]
    fn interned_cubes_drive_and_exists() {
        let mut m = BddManager::new(4);
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let z = m.var(2).unwrap();
        let f = m.xor(x, y).unwrap();
        let g = m.xnor(y, z).unwrap();
        // Out-of-range variables are dropped; duplicates collapse.
        let cube = m.cube(&[1, 1, 9]);
        assert_eq!(m.cube_vars(cube), &[1]);
        assert_eq!(m.cube(&[9, 1]), cube, "interning is idempotent");
        let fused = m.and_exists_cube(f, g, cube).unwrap();
        assert_eq!(fused, m.and_exists(f, g, &[1]).unwrap());
        let empty = m.cube(&[]);
        let plain = m.and_exists_cube(f, g, empty).unwrap();
        assert_eq!(plain, m.and(f, g).unwrap());
        check(&m);
    }

    #[test]
    fn and_within_budget_is_a_sound_size_probe() {
        // A conjunction of interleaved pair products under an adversarial
        // order is large; a tiny trial budget must abandon it, while a
        // generous one computes exactly what `and` computes.
        const PAIRS: u32 = 8;
        let mut m = BddManager::new(2 * PAIRS);
        let mut f = m.constant(true);
        let mut g = m.constant(true);
        m.protect(f);
        m.protect(g);
        for i in 0..PAIRS {
            let a = m.var(i).unwrap();
            let b = m.var(PAIRS + i).unwrap();
            let ab = m.xnor(a, b).unwrap();
            if i % 2 == 0 {
                let next = m.and(f, ab).unwrap();
                m.update_protected(&mut f, next);
            } else {
                let next = m.and(g, ab).unwrap();
                m.update_protected(&mut g, next);
            }
        }
        let full = m.and(f, g).unwrap();
        m.protect(full);
        let size = m.size(full);
        // Generous budget: same canonical result as the plain conjunction.
        let ok = m.and_within(f, g, usize::MAX).unwrap();
        assert_eq!(ok, Some(full));
        // Unbudgeted probe of an already-materialised conjunction: every
        // node pre-exists, so even a zero budget completes.
        let cached = m.and_within(f, g, 0).unwrap();
        assert_eq!(cached, Some(full));
        // Force a genuinely fresh computation in a new manager and starve
        // it: the abort must fire, leave the invariants intact, and prove
        // the result would have exceeded the budget.
        let mut m2 = BddManager::new(2 * PAIRS);
        let mut f2 = m2.constant(true);
        let mut g2 = m2.constant(true);
        m2.protect(f2);
        m2.protect(g2);
        for i in 0..PAIRS {
            let a = m2.var(i).unwrap();
            let b = m2.var(PAIRS + i).unwrap();
            let ab = m2.xnor(a, b).unwrap();
            if i % 2 == 0 {
                let next = m2.and(f2, ab).unwrap();
                m2.update_protected(&mut f2, next);
            } else {
                let next = m2.and(g2, ab).unwrap();
                m2.update_protected(&mut g2, next);
            }
        }
        let budget = 4usize;
        assert!(size > budget + 1, "the probe target is genuinely large");
        let aborted = m2.and_within(f2, g2, budget).unwrap();
        assert_eq!(aborted, None, "starved trial is abandoned");
        check(&m2);
        // The abandoned garbage is reclaimable and a later unbudgeted run
        // still produces the canonical conjunction.
        m2.collect_garbage();
        let done = m2.and(f2, g2).unwrap();
        assert_eq!(m2.size(done), size);
        check(&m2);
    }

    #[test]
    fn add_vars_extends_the_order() {
        let mut m = BddManager::new(2);
        let first = m.add_vars(2);
        assert_eq!(first, 2);
        assert_eq!(m.num_vars(), 4);
        let v = m.var(3).unwrap();
        let x = m.var(0).unwrap();
        let f = m.and(v, x).unwrap();
        assert!(m.eval(f, &[true, false, false, true]));
        check(&m);
    }
}
