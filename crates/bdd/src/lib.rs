//! # hash-bdd
//!
//! A production-grade reduced ordered binary decision diagram (ROBDD)
//! package, built from scratch as the substrate for the post-synthesis
//! verification baselines of the DATE'97 HASH retiming reproduction
//! (`hash-equiv`): boolean tautology checking, SMV-style symbolic model
//! checking, SIS-style FSM equivalence and van Eijk's signal-correspondence
//! method all represent boolean functions and state sets as BDDs.
//!
//! The manager offers attributed **complement edges** (O(1) negation, one
//! terminal node), **reference-counted garbage collection** with a
//! live-node budget, a unified **size-bounded operation cache**, **Rudell
//! sifting** dynamic variable reordering, fused relational products and
//! depth-bounded recursion — see the [`manager`] module docs for the
//! architecture (including the threading model: a [`BddManager`] is
//! [`Send`] and self-contained, so parallel workloads run one manager per
//! worker thread) and [`manager::reference`] for the textbook oracle used
//! by the differential test suite.
//!
//! ## Example
//!
//! ```
//! use hash_bdd::{BddManager, BddRef};
//!
//! # fn main() -> std::result::Result<(), hash_bdd::BddError> {
//! let mut m = BddManager::new(2);
//! let x = m.var(0)?;
//! let y = m.var(1)?;
//! let f = m.and(x, y)?;
//! let g = m.not(f); // negation is an O(1) complement-edge flip
//! let nx = m.not(x);
//! let ny = m.not(y);
//! let de_morgan = m.or(nx, ny)?;
//! assert_eq!(g, de_morgan); // canonicity: equal functions, equal refs
//! assert_ne!(f, BddRef::FALSE);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod manager;

pub use error::{BddError, ResourceKind, Result};
pub use manager::{BddManager, BddRef, BddStats, VarCube};
