//! Differential property tests: the production manager (complement edges,
//! GC, bounded cache, sifting) is pinned against the textbook
//! `manager::reference` implementation, mirroring the
//! `hash_logic::term::reference` pattern. Any semantic drift between the
//! two — truth tables, quantification, composition, renaming — fails here.

use hash_bdd::manager::reference;
use hash_bdd::{BddManager, BddRef};
use proptest::prelude::*;

const VARS: u32 = 4;

/// A tiny boolean expression language over `VARS` variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = (0u32..VARS).prop_map(Expr::Var);
    if depth == 0 {
        leaf.boxed()
    } else {
        let sub = expr(depth - 1);
        prop_oneof![
            leaf,
            sub.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (sub.clone(), sub.clone(), sub).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
        .boxed()
    }
}

/// Builds the first operand, protects it across the second sub-build
/// (which may trigger a collection in a churning manager), and releases it
/// before combining.
fn build_pair(m: &mut BddManager, x: &Expr, y: &Expr) -> (BddRef, BddRef) {
    let f = build_new(m, x);
    m.protect(f);
    let g = build_new(m, y);
    m.unprotect(f);
    (f, g)
}

fn build_new(m: &mut BddManager, e: &Expr) -> BddRef {
    match e {
        Expr::Var(i) => m.var(*i).unwrap(),
        Expr::Not(x) => {
            let f = build_new(m, x);
            m.not(f)
        }
        Expr::And(x, y) => {
            let (f, g) = build_pair(m, x, y);
            m.and(f, g).unwrap()
        }
        Expr::Or(x, y) => {
            let (f, g) = build_pair(m, x, y);
            m.or(f, g).unwrap()
        }
        Expr::Xor(x, y) => {
            let (f, g) = build_pair(m, x, y);
            m.xor(f, g).unwrap()
        }
        Expr::Ite(x, y, z) => {
            let f = build_new(m, x);
            // The condition must survive the two sub-builds: building them
            // may trigger a collection in a churning manager.
            m.protect(f);
            let g = build_new(m, y);
            m.protect(g);
            let h = build_new(m, z);
            m.unprotect(f);
            m.unprotect(g);
            m.ite(f, g, h).unwrap()
        }
    }
}

fn build_ref(m: &mut reference::BddManager, e: &Expr) -> reference::BddRef {
    match e {
        Expr::Var(i) => m.var(*i).unwrap(),
        Expr::Not(x) => {
            let f = build_ref(m, x);
            m.not(f).unwrap()
        }
        Expr::And(x, y) => {
            let (f, g) = (build_ref(m, x), build_ref(m, y));
            m.and(f, g).unwrap()
        }
        Expr::Or(x, y) => {
            let (f, g) = (build_ref(m, x), build_ref(m, y));
            m.or(f, g).unwrap()
        }
        Expr::Xor(x, y) => {
            let (f, g) = (build_ref(m, x), build_ref(m, y));
            m.xor(f, g).unwrap()
        }
        Expr::Ite(x, y, z) => {
            let f = build_ref(m, x);
            let g = build_ref(m, y);
            let h = build_ref(m, z);
            m.ite(f, g, h).unwrap()
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << VARS)).map(|bits| (0..VARS).map(|i| (bits >> i) & 1 != 0).collect())
}

proptest! {
    // Fixed case count AND fixed RNG seed: CI explores exactly the same
    // cases on every run, and a failure reproduces from the seed alone.
    #![proptest_config(ProptestConfig::with_cases(384).with_rng_seed(0xE15E_4B1E_61E8_0003))]

    /// The two implementations denote the same function, and the new
    /// manager's structural invariants (canonicity, regular high edges,
    /// exact reference counts) hold after every build.
    #[test]
    fn same_truth_table_and_canonical(e in expr(4)) {
        let mut new = BddManager::new(VARS);
        let mut oracle = reference::BddManager::new(VARS);
        let f = build_new(&mut new, &e);
        let g = build_ref(&mut oracle, &e);
        for a in assignments() {
            prop_assert_eq!(new.eval(f, &a), oracle.eval(g, &a));
        }
        prop_assert!((new.sat_count(f) - oracle.sat_count(g)).abs() < 1e-9);
        prop_assert_eq!(new.support(f), oracle.support(g));
        // Canonicity: a second build of the same function is the same ref.
        let f2 = build_new(&mut new, &e);
        prop_assert_eq!(f, f2);
        new.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Quantification, restriction and composition agree with the oracle.
    #[test]
    fn quantify_restrict_compose_agree(e in expr(3), g in expr(2), v in 0u32..VARS) {
        let mut new = BddManager::new(VARS);
        let mut oracle = reference::BddManager::new(VARS);
        let fn_ = build_new(&mut new, &e);
        new.protect(fn_);
        let fo = build_ref(&mut oracle, &e);

        let cases: Vec<(BddRef, reference::BddRef)> = vec![
            (new.exists(fn_, &[v]).unwrap(), oracle.exists(fo, &[v]).unwrap()),
            (new.forall(fn_, &[v]).unwrap(), oracle.forall(fo, &[v]).unwrap()),
            (new.exists(fn_, &[0, 2]).unwrap(), oracle.exists(fo, &[0, 2]).unwrap()),
            (new.restrict(fn_, v, true).unwrap(), oracle.restrict(fo, v, true).unwrap()),
            (new.restrict(fn_, v, false).unwrap(), oracle.restrict(fo, v, false).unwrap()),
        ];
        for (rn, ro) in cases {
            for a in assignments() {
                prop_assert_eq!(new.eval(rn, &a), oracle.eval(ro, &a));
            }
        }
        // Composition f[v := g].
        let gn = build_new(&mut new, &g);
        new.protect(gn);
        let go = build_ref(&mut oracle, &g);
        let cn = new.compose(fn_, v, gn).unwrap();
        let co = oracle.compose(fo, v, go).unwrap();
        for a in assignments() {
            prop_assert_eq!(new.eval(cn, &a), oracle.eval(co, &a));
        }
        // A fused relational product matches conjoin-then-quantify.
        let pn = new.and_exists(fn_, gn, &[v]).unwrap();
        let po = oracle.and_exists(fo, go, &[v]).unwrap();
        for a in assignments() {
            prop_assert_eq!(new.eval(pn, &a), oracle.eval(po, &a));
        }
        new.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Monotone renames agree with the oracle; arbitrary renames (which the
    /// oracle rejects) match evaluation under the permuted assignment.
    #[test]
    fn rename_agrees(e in expr(3)) {
        let mut new = BddManager::new(VARS);
        let mut oracle = reference::BddManager::new(VARS);
        let fn_ = build_new(&mut new, &e);
        new.protect(fn_);
        let fo = build_ref(&mut oracle, &e);
        // Monotone: 0→1, 2→3.
        let rn = new.rename(fn_, &[(0, 1), (2, 3)]).unwrap();
        let ro = oracle.rename(fo, &[(0, 1), (2, 3)]).unwrap();
        for a in assignments() {
            prop_assert_eq!(new.eval(rn, &a), oracle.eval(ro, &a));
        }
        // Order-reversing swap 0↔3 — beyond the oracle, checked against
        // evaluation semantics: (rename f)(a) = f(a ∘ map).
        let sw = new.rename(fn_, &[(0, 3), (3, 0)]).unwrap();
        for a in assignments() {
            let mut permuted = a.clone();
            permuted.swap(0, 3);
            prop_assert_eq!(new.eval(sw, &permuted), new.eval(fn_, &a));
        }
        new.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Garbage collection never frees a reachable (protected) node: the
    /// protected function evaluates identically after collecting, while
    /// unprotected garbage is actually reclaimed.
    #[test]
    fn gc_preserves_reachable(e in expr(4), junk in expr(4)) {
        let mut new = BddManager::new(VARS);
        let f = build_new(&mut new, &e);
        new.protect(f);
        let truth: Vec<bool> = assignments().map(|a| new.eval(f, &a)).collect();
        // Unprotected junk plus its own churn.
        let j = build_new(&mut new, &junk);
        let _ = new.and(j, f).unwrap();
        new.collect_garbage();
        for (a, expect) in assignments().zip(truth.iter()) {
            prop_assert_eq!(new.eval(f, &a), *expect);
        }
        new.check_invariants().map_err(TestCaseError::fail)?;
        // The function is still canonical post-GC: rebuilding returns it.
        let f2 = build_new(&mut new, &e);
        prop_assert_eq!(f, f2);
    }

    /// Reordering — a sifting pass and an explicit reversed order — never
    /// changes the function an external reference denotes.
    #[test]
    fn reordering_preserves_semantics(e in expr(4)) {
        let mut new = BddManager::new(VARS);
        let f = build_new(&mut new, &e);
        new.protect(f);
        let truth: Vec<bool> = assignments().map(|a| new.eval(f, &a)).collect();
        new.reorder();
        for (a, expect) in assignments().zip(truth.iter()) {
            prop_assert_eq!(new.eval(f, &a), *expect);
        }
        new.check_invariants().map_err(TestCaseError::fail)?;
        new.set_order(&[3, 2, 1, 0]).unwrap();
        for (a, expect) in assignments().zip(truth.iter()) {
            prop_assert_eq!(new.eval(f, &a), *expect);
        }
        new.check_invariants().map_err(TestCaseError::fail)?;
        // Operations keep working (and stay correct) under the new order.
        let ex = new.exists(f, &[1]).unwrap();
        let mut oracle = reference::BddManager::new(VARS);
        let fo = build_ref(&mut oracle, &e);
        let exo = oracle.exists(fo, &[1]).unwrap();
        for a in assignments() {
            prop_assert_eq!(new.eval(ex, &a), oracle.eval(exo, &a));
        }
    }

    /// A stressed manager — tiny cache (eviction-heavy), dynamic
    /// reordering on, GC churn — still agrees with the oracle.
    #[test]
    fn stressed_manager_agrees(es in (expr(3), expr(3), expr(3))) {
        let es = [es.0, es.1, es.2];
        let mut new = BddManager::new(VARS)
            .with_cache_capacity(1)
            .with_dynamic_reordering(true);
        let mut oracle = reference::BddManager::new(VARS);
        let mut kept = Vec::new();
        for e in &es {
            let f = build_new(&mut new, e);
            new.protect(f);
            let g = build_ref(&mut oracle, e);
            kept.push((f, g));
            new.collect_garbage();
        }
        for (f, g) in &kept {
            for a in assignments() {
                prop_assert_eq!(new.eval(*f, &a), oracle.eval(*g, &a));
            }
        }
        new.check_invariants().map_err(TestCaseError::fail)?;
    }
}
