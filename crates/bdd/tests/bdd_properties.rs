//! Property-based tests of the BDD package: canonical BDDs agree with a
//! direct truth-table evaluation of the same expression.

use hash_bdd::{BddManager, BddRef};
use proptest::prelude::*;

/// A tiny boolean expression language over three variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = (0u32..3).prop_map(Expr::Var);
    if depth == 0 {
        leaf.boxed()
    } else {
        let sub = expr(depth - 1);
        prop_oneof![
            leaf,
            sub.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (sub.clone(), sub).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
        .boxed()
    }
}

fn eval(e: &Expr, a: &[bool]) -> bool {
    match e {
        Expr::Var(i) => a[*i as usize],
        Expr::Not(x) => !eval(x, a),
        Expr::And(x, y) => eval(x, a) && eval(y, a),
        Expr::Or(x, y) => eval(x, a) || eval(y, a),
        Expr::Xor(x, y) => eval(x, a) ^ eval(y, a),
    }
}

fn build(m: &mut BddManager, e: &Expr) -> BddRef {
    match e {
        Expr::Var(i) => m.var(*i).unwrap(),
        Expr::Not(x) => {
            let f = build(m, x);
            m.not(f)
        }
        Expr::And(x, y) => {
            let (f, g) = (build(m, x), build(m, y));
            m.and(f, g).unwrap()
        }
        Expr::Or(x, y) => {
            let (f, g) = (build(m, x), build(m, y));
            m.or(f, g).unwrap()
        }
        Expr::Xor(x, y) => {
            let (f, g) = (build(m, x), build(m, y));
            m.xor(f, g).unwrap()
        }
    }
}

proptest! {
    // Fixed case count AND fixed RNG seed: CI explores exactly the same
    // cases on every run, and a failure reproduces from the seed alone.
    #![proptest_config(ProptestConfig::with_cases(512).with_rng_seed(0xE15E_4B1E_61E8_0002))]

    #[test]
    fn bdd_matches_truth_table(e in expr(4)) {
        let mut m = BddManager::new(3);
        let f = build(&mut m, &e);
        let mut count = 0.0;
        for bits in 0..8u32 {
            let a = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let expected = eval(&e, &a);
            prop_assert_eq!(m.eval(f, &a), expected);
            if expected {
                count += 1.0;
            }
        }
        prop_assert!((m.sat_count(f) - count).abs() < 1e-9);
    }

    #[test]
    fn canonicity_equal_functions_equal_nodes(e in expr(3)) {
        let mut m = BddManager::new(3);
        let f = build(&mut m, &e);
        // Build (e XOR false) which denotes the same function.
        let false_bdd = m.constant(false);
        let same = m.xor(f, false_bdd).unwrap();
        prop_assert_eq!(f, same);
        // Double negation is the identity (complement-edge flips).
        let n = m.not(f);
        let nn = m.not(n);
        prop_assert_eq!(nn, f);
    }

    #[test]
    fn quantification_matches_cofactors(e in expr(3)) {
        let mut m = BddManager::new(3);
        let f = build(&mut m, &e);
        let f0 = m.restrict(f, 0, false).unwrap();
        let f1 = m.restrict(f, 0, true).unwrap();
        let ex = m.exists(f, &[0]).unwrap();
        let or = m.or(f0, f1).unwrap();
        prop_assert_eq!(ex, or);
        let fa = m.forall(f, &[0]).unwrap();
        let and = m.and(f0, f1).unwrap();
        prop_assert_eq!(fa, and);
    }
}
