//! The scalable example circuit of the paper's Figure 2.
//!
//! The circuit has two `n`-bit data inputs `a` and `b`, an `n`-bit register
//! `D0` on the `a` path, a `+1` incrementer, a comparator and a
//! multiplexer whose select is registered in the one-bit register `D1`:
//!
//! ```text
//!   a ──D0──[+1]──┐
//!                 MUX ──► y
//!   b ────────────┘ │
//!   a ──┐           │
//!       [>=]──D1────┘ (select)
//!   b ──┘
//! ```
//!
//! Retiming shifts `D0` forward across the `+1` component (`f` = {+1},
//! `g` = {comparator, MUX}), turning the initial value `0` into
//! `f(0) = 1` — exactly the transformation of Figures 2 and 3. Choosing
//! `f` = {comparator, MUX} instead reproduces the *false cut* of Figure 4,
//! which every layer of the reproduction rejects.
//!
//! The circuit is scalable in the bit width `n`, which is the parameter
//! swept in Table I.

use hash_netlist::prelude::*;
use hash_retiming::prelude::Cut;

/// Handles to the interesting cells of the Figure-2 circuit.
#[derive(Clone, Debug)]
pub struct Figure2 {
    /// The RT-level netlist.
    pub netlist: Netlist,
    /// Index of the `+1` cell (the block `f` of the paper).
    pub inc_cell: usize,
    /// Index of the comparator cell.
    pub cmp_cell: usize,
    /// Index of the multiplexer cell.
    pub mux_cell: usize,
}

impl Figure2 {
    /// Builds the original (un-retimed) circuit for bit width `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 64 (unsupported widths).
    pub fn new(n: u32) -> Figure2 {
        let mut nl = Netlist::new(format!("figure2_n{n}"));
        let a = nl.add_input("a", n);
        let b = nl.add_input("b", n);
        // D0: the register the retiming will shift across the incrementer.
        let d0 = nl
            .register(a, BitVec::zero(n), "d0")
            .expect("valid register");
        // Cell 0: the +1 component (the block f).
        let inc = nl.inc(d0, "inc").expect("valid incrementer");
        let inc_cell = nl.cells().len() - 1;
        // Cell 1: the comparator a >= b.
        let cmp = nl.ge(a, b, "cmp").expect("valid comparator");
        let cmp_cell = nl.cells().len() - 1;
        // D1: the registered select.
        let d1 = nl
            .register(cmp, BitVec::zero(1), "d1")
            .expect("valid register");
        // Cell 2: the multiplexer.
        let y = nl.mux(d1, inc, b, "y").expect("valid multiplexer");
        let mux_cell = nl.cells().len() - 1;
        nl.mark_output(y);
        Figure2 {
            netlist: nl,
            inc_cell,
            cmp_cell,
            mux_cell,
        }
    }

    /// The correct cut of Figure 3: `f` consists of the `+1` component only.
    pub fn correct_cut(&self) -> Cut {
        Cut::new(vec![self.inc_cell])
    }

    /// The false cut of Figure 4: `f` consists of the comparator and the
    /// multiplexer.
    pub fn false_cut(&self) -> Cut {
        Cut::new(vec![self.cmp_cell, self.mux_cell])
    }

    /// The expected retimed circuit, built directly (register after the
    /// `+1`, initial value `1`). Used as a reference in tests.
    pub fn retimed_reference(n: u32) -> Netlist {
        let mut nl = Netlist::new(format!("figure2_n{n}_retimed_ref"));
        let a = nl.add_input("a", n);
        let b = nl.add_input("b", n);
        let inc = nl.inc(a, "inc").expect("valid incrementer");
        let d0 = nl
            .register(inc, BitVec::one(n), "d0")
            .expect("valid register");
        let cmp = nl.ge(a, b, "cmp").expect("valid comparator");
        let d1 = nl
            .register(cmp, BitVec::zero(1), "d1")
            .expect("valid register");
        let y = nl.mux(d1, d0, b, "y").expect("valid multiplexer");
        nl.mark_output(y);
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_netlist::sim::{random_stimuli, traces_equal};
    use hash_retiming::prelude::*;

    #[test]
    fn figure2_builds_for_various_widths() {
        for n in [1u32, 4, 8, 16, 32, 64] {
            let f = Figure2::new(n);
            f.netlist.validate().expect("figure 2 circuit is valid");
            assert_eq!(f.netlist.registers().len(), 2);
            assert_eq!(f.netlist.cells().len(), 3);
        }
    }

    #[test]
    fn correct_cut_retimes_and_matches_reference() {
        for n in [4u32, 8, 12] {
            let f = Figure2::new(n);
            let retimed = forward_retime(&f.netlist, &f.correct_cut()).unwrap();
            // New initial value is f(0) = 1.
            assert!(retimed.registers().iter().any(|r| r.init.as_u64() == 1));
            let stim = random_stimuli(&f.netlist, 64, 99);
            assert!(traces_equal(&f.netlist, &retimed, &stim).unwrap());
            let reference = Figure2::retimed_reference(n);
            assert!(traces_equal(&retimed, &reference, &stim).unwrap());
        }
    }

    #[test]
    fn false_cut_is_rejected() {
        let f = Figure2::new(8);
        let err = forward_retime(&f.netlist, &f.false_cut()).unwrap_err();
        assert!(matches!(err, RetimingError::BadCut { .. }));
    }

    #[test]
    fn maximal_cut_is_the_incrementer() {
        let f = Figure2::new(8);
        let cut = maximal_forward_cut(&f.netlist);
        assert_eq!(cut.cells, vec![f.inc_cell]);
    }

    #[test]
    fn behaviour_spot_check() {
        // With a >= b the output is the registered a + 1 (one cycle delayed
        // select), otherwise b.
        let f = Figure2::new(8);
        let mut sim = Simulator::new(&f.netlist).unwrap();
        let a0 = BitVec::new(10, 8).unwrap();
        let b0 = BitVec::new(3, 8).unwrap();
        // Cycle 0: d0 = 0, d1 = 0, so y = b.
        let y0 = sim.step(&[a0, b0]).unwrap()[0];
        assert_eq!(y0.as_u64(), 3);
        // Cycle 1: d0 = 10, d1 = (10 >= 3) = 1, so y = 10 + 1.
        let y1 = sim.step(&[a0, b0]).unwrap()[0];
        assert_eq!(y1.as_u64(), 11);
    }
}
