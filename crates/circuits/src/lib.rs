//! # hash-circuits
//!
//! Benchmark circuit generators for the DATE'97 HASH retiming
//! reproduction:
//!
//! * [`figure2`] — the paper's scalable example circuit (Figure 2),
//!   parameterised by the data width `n` and swept in Table I,
//! * [`fracmult`] — sequential fractional multipliers of 8/16/32 bits,
//!   standing in for the multiplier family of Table II,
//! * [`iwls`] — deterministic synthetic stand-ins for the remaining IWLS'91
//!   benchmark circuits of Table II, matched in flip-flop and gate counts.
//!
//! ## Example
//!
//! ```
//! use hash_circuits::figure2::Figure2;
//! use hash_retiming::prelude::*;
//!
//! # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
//! let fig = Figure2::new(8);
//! let retimed = forward_retime(&fig.netlist, &fig.correct_cut())?;
//! assert!(retimed.registers().iter().any(|r| r.init.as_u64() == 1));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figure2;
pub mod fracmult;
pub mod iwls;

pub use figure2::Figure2;
pub use fracmult::FracMult;
pub use iwls::{generate, table2_benchmarks, Benchmark};
