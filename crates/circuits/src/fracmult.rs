//! Sequential fractional (shift-and-add) multipliers.
//!
//! Table II of the paper notes that three of the IWLS'91 benchmark circuits
//! "are all fractional multipliers with different bitwidths (8, 16 and
//! 32)", and uses them to demonstrate how verification cost scales with the
//! data width while the HASH cost grows only moderately. The original
//! netlists are not available here, so this module generates an equivalent
//! family: a classic serial fractional multiplier computing the top `n`
//! bits of `a * b / 2^n`, one partial product per clock cycle.

use hash_netlist::prelude::*;

/// A generated fractional multiplier.
#[derive(Clone, Debug)]
pub struct FracMult {
    /// The RT-level netlist.
    pub netlist: Netlist,
    /// The data width.
    pub width: u32,
}

impl FracMult {
    /// Builds a serial fractional multiplier of the given width.
    ///
    /// Interface: inputs `load`, `a_in[n]`, `b_in[n]`; output `p[n]`
    /// (the running fractional product). When `load` is high the operand
    /// registers are loaded and the accumulator cleared; otherwise one
    /// shift-and-add step is performed per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 63 (one bit of headroom is
    /// needed for the partial-sum carry).
    pub fn new(width: u32) -> FracMult {
        let n = width;
        let mut nl = Netlist::new(format!("fracmult{n}"));
        let load = nl.add_input("load", 1);
        let a_in = nl.add_input("a_in", n);
        let b_in = nl.add_input("b_in", n);

        // State registers: operand A, shifting operand B, accumulator ACC.
        let a_q = nl.add_signal("a_q", n);
        let b_q = nl.add_signal("b_q", n);
        let acc_q = nl.add_signal("acc_q", n);

        // b0 = LSB of B decides whether A is added this cycle.
        let b0 = nl
            .cell(CombOp::Slice { hi: 0, lo: 0 }, &[b_q], "b0")
            .expect("slice");
        let zero = nl.constant(BitVec::zero(n), "zero").expect("constant");
        let addend = nl.mux(b0, a_q, zero, "addend").expect("mux");
        // The partial sum needs one extra carry bit, so both operands are
        // zero-extended to n+1 bits before the addition.
        let zero1 = nl.constant(BitVec::zero(1), "zero1").expect("constant");
        let acc_ext = nl
            .cell(CombOp::Concat, &[zero1, acc_q], "acc_ext")
            .expect("concat");
        let addend_ext = nl
            .cell(CombOp::Concat, &[zero1, addend], "addend_ext")
            .expect("concat");
        let sum = nl.add(acc_ext, addend_ext, "sum").expect("add");
        // Fractional step: keep the top n bits of the (n+1)-bit sum.
        let acc_shifted = nl
            .cell(CombOp::Slice { hi: n, lo: 1 }, &[sum], "acc_shifted")
            .expect("slice");
        // B shifts right by one each step.
        let b_hi = nl
            .cell(CombOp::Slice { hi: n - 1, lo: 1 }, &[b_q], "b_hi")
            .expect("slice");
        let b_shifted = nl
            .cell(CombOp::Concat, &[zero1, b_hi], "b_shifted")
            .expect("concat");

        // Next-state multiplexers controlled by `load`.
        let a_next = nl.mux(load, a_in, a_q, "a_next").expect("mux");
        let b_next = nl.mux(load, b_in, b_shifted, "b_next").expect("mux");
        let acc_zero = nl.constant(BitVec::zero(n), "acc_zero").expect("constant");
        let acc_next = nl
            .mux(load, acc_zero, acc_shifted, "acc_next")
            .expect("mux");

        nl.add_register(a_next, a_q, BitVec::zero(n)).expect("reg");
        nl.add_register(b_next, b_q, BitVec::zero(n)).expect("reg");
        nl.add_register(acc_next, acc_q, BitVec::zero(n))
            .expect("reg");
        nl.mark_output(acc_q);

        // Output stage: a registered copy of the product followed by a
        // rounding incrementer. Besides mirroring the output pipelines of
        // the original benchmarks, it gives the circuit a retimable block
        // (the incrementer reads only the register `p_q`).
        let p_q = nl.register(acc_next, BitVec::zero(n), "p_q").expect("reg");
        let rounded = nl.inc(p_q, "rounded").expect("inc");
        nl.mark_output(rounded);

        FracMult { netlist: nl, width }
    }

    /// Runs a complete multiplication on the simulator and returns the
    /// fractional product register after `width` compute cycles.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn multiply(&self, a: u64, b: u64) -> std::result::Result<u64, NetlistError> {
        let n = self.width;
        let mut sim = Simulator::new(&self.netlist)?;
        let load = [
            BitVec::bit(true),
            BitVec::truncate(a, n),
            BitVec::truncate(b, n),
        ];
        sim.step(&load)?;
        let idle = [BitVec::bit(false), BitVec::zero(n), BitVec::zero(n)];
        for _ in 0..n {
            sim.step(&idle)?;
        }
        // The accumulator is the third register (after A and B).
        Ok(sim.state()[2].as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_multiplications_are_correct() {
        // The serial fractional multiplier computes floor(a*b / 2^n)
        // (up to the truncation of intermediate shifts).
        let m = FracMult::new(8);
        for (a, b) in [(0u64, 0u64), (255, 255), (128, 128), (200, 64), (17, 3)] {
            let got = m.multiply(a, b).unwrap();
            let exact = (a * b) >> 8;
            // The serial truncation may lose at most n LSB carries; allow a
            // small error bound of 1.
            assert!(
                got.abs_diff(exact) <= 1,
                "{a} * {b}: got {got}, expected about {exact}"
            );
        }
    }

    #[test]
    fn widths_scale() {
        for n in [8u32, 16, 32] {
            let m = FracMult::new(n);
            m.netlist.validate().unwrap();
            let st = hash_netlist::stats::stats(&m.netlist);
            assert_eq!(st.flip_flops as u32, 4 * n);
            assert!(st.gate_estimate > 0);
        }
    }

    #[test]
    fn larger_widths_have_more_gates() {
        let g8 = hash_netlist::stats::stats(&FracMult::new(8).netlist).gate_estimate;
        let g16 = hash_netlist::stats::stats(&FracMult::new(16).netlist).gate_estimate;
        let g32 = hash_netlist::stats::stats(&FracMult::new(32).netlist).gate_estimate;
        assert!(g8 < g16 && g16 < g32);
    }
}
