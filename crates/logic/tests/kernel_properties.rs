//! Property-based tests of the kernel invariants: substitution,
//! alpha-equivalence, beta normalisation and the primitive rules.

use hash_logic::conv::beta_norm_thm;
use hash_logic::prelude::*;
use proptest::prelude::*;

/// A small strategy for boolean terms over variables p0..p3 built from
/// equality and lambda application.
fn bool_term(depth: u32) -> BoxedStrategy<TermRef> {
    let leaf = (0u8..4).prop_map(|i| mk_var(format!("p{i}"), Type::bool()));
    if depth == 0 {
        leaf.boxed()
    } else {
        let sub = bool_term(depth - 1);
        prop_oneof![
            leaf,
            (sub.clone(), sub.clone()).prop_map(|(a, b)| mk_eq(&a, &b).expect("same type")),
            (0u8..4, sub).prop_map(|(i, body)| {
                // (\pi. body) pi  — a beta redex that normalises to body.
                let v = Var::new(format!("p{i}"), Type::bool());
                mk_comb(&mk_abs(&v, &body), &v.term()).expect("well typed")
            }),
        ]
        .boxed()
    }
}

proptest! {
    // Fixed case count AND fixed RNG seed: CI explores exactly the same
    // cases on every run, and a failure reproduces from the seed alone.
    #![proptest_config(ProptestConfig::with_cases(256).with_rng_seed(0xE15E_4B1E_61E8_0001))]

    #[test]
    fn aconv_is_reflexive_and_respects_refl(t in bool_term(3)) {
        prop_assert!(t.aconv(&t));
        let th = Theorem::refl(&t).unwrap();
        let (l, r) = th.dest_eq().unwrap();
        prop_assert!(l.aconv(&r));
        prop_assert!(th.is_closed());
    }

    #[test]
    fn substitution_removes_the_variable(t in bool_term(3)) {
        // Substituting a fresh constant for p0 removes p0 from the free
        // variables.
        let p0 = Var::new("p0", Type::bool());
        let replacement = mk_const("T", Type::bool());
        let s = vsubst(&vec![(p0.clone(), replacement)], &t);
        prop_assert!(!s.occurs_free(&p0));
    }

    #[test]
    fn beta_normalisation_is_sound_and_idempotent(t in bool_term(3)) {
        let th = beta_norm_thm(&t).unwrap();
        prop_assert!(th.is_closed());
        let (l, nf) = th.dest_eq().unwrap();
        prop_assert!(l.aconv(&t));
        // Normalising again is the identity.
        let th2 = beta_norm_thm(&nf).unwrap();
        let (_, nf2) = th2.dest_eq().unwrap();
        prop_assert!(nf.aconv(&nf2));
    }

    #[test]
    fn sym_is_an_involution(a in bool_term(2), b in bool_term(2)) {
        let eq = mk_eq(&a, &b).unwrap();
        let th = Theorem::assume(&eq).unwrap();
        let back = th.sym().unwrap().sym().unwrap();
        prop_assert_eq!(back, th);
    }

    #[test]
    fn trans_of_refl_is_identity(t in bool_term(3)) {
        let r = Theorem::refl(&t).unwrap();
        let tr = Theorem::trans(&r, &r).unwrap();
        prop_assert_eq!(tr, r);
    }

    #[test]
    fn instantiation_preserves_closedness(t in bool_term(3)) {
        let th = Theorem::refl(&t).unwrap();
        let q = mk_var("q", Type::bool());
        let inst = th
            .inst(&vec![(Var::new("p0", Type::bool()), q)])
            .unwrap();
        prop_assert!(inst.is_closed());
        prop_assert!(inst.concl().is_eq());
    }
}
