//! Differential property tests of the hash-consing term arena.
//!
//! The arena (PR 2) replaced the recursive `Rc<Term>` kernel representation
//! with interned ids plus memoised operations. These properties pin the
//! refactor down: every memoised arena operation must agree with the
//! original structurally recursive definition (kept verbatim in
//! `hash_logic::term::reference`), and structurally equal terms must always
//! intern to the same id.

use hash_logic::conv::beta_norm_thm;
use hash_logic::prelude::*;
use hash_logic::term::reference;
use proptest::prelude::*;

/// A strategy for well-typed boolean terms over variables p0..p3 built from
/// equality, abstraction and beta redexes — the same shapes the kernel
/// rules manipulate.
fn bool_term(depth: u32) -> BoxedStrategy<TermRef> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(|i| mk_var(format!("p{i}"), Type::bool())),
        Just(mk_const("T", Type::bool())),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let sub = bool_term(depth - 1);
        prop_oneof![
            leaf,
            (sub.clone(), sub.clone()).prop_map(|(a, b)| mk_eq(&a, &b).expect("same type")),
            (0u8..4, sub.clone()).prop_map(|(i, body)| {
                // \pi. body = \pi. body — an equation between abstractions,
                // so binders occur outside redex position too.
                let v = Var::new(format!("p{i}"), Type::bool());
                let lam = mk_abs(&v, &body);
                mk_eq(&lam, &lam).expect("same type")
            }),
            (0u8..4, 0u8..4, sub).prop_map(|(i, j, body)| {
                // (\pi. body) pj — a beta redex.
                let v = Var::new(format!("p{i}"), Type::bool());
                let arg = mk_var(format!("p{j}"), Type::bool());
                mk_comb(&mk_abs(&v, &body), &arg).expect("well typed")
            }),
        ]
        .boxed()
    }
}

/// Rebuilds a term bottom-up through the public constructors. With
/// hash-consing this must return the *identical* handle.
fn rebuild(t: &TermRef) -> TermRef {
    match t.view() {
        Term::Var(v) => mk_var(v.name, v.ty),
        Term::Const(c) => mk_const(c.name, c.ty),
        Term::Comb(f, x) => mk_comb(&rebuild(&f), &rebuild(&x)).expect("well typed"),
        Term::Abs(v, body) => mk_abs(&v, &rebuild(&body)),
    }
}

proptest! {
    // Fixed case count AND fixed RNG seed: CI explores exactly the same
    // cases on every run, and a failure reproduces from the seed alone.
    #![proptest_config(ProptestConfig::with_cases(256).with_rng_seed(0xE15E_4B1E_61E8_0004))]

    #[test]
    fn structurally_equal_terms_intern_to_the_same_id(t in bool_term(3)) {
        let again = rebuild(&t);
        prop_assert_eq!(again, t);
        prop_assert_eq!(again.id(), t.id());
    }

    #[test]
    fn cached_type_agrees_with_recursive_type(t in bool_term(3)) {
        prop_assert_eq!(t.ty(), reference::ty(&t));
    }

    #[test]
    fn cached_size_agrees_with_recursive_size(t in bool_term(3)) {
        prop_assert_eq!(t.size(), reference::size(&t));
    }

    #[test]
    fn memoised_free_vars_agree_with_recursive_collection(t in bool_term(3)) {
        prop_assert_eq!(t.free_vars(), reference::free_vars(&t));
        for v in (0..4).map(|i| Var::new(format!("p{i}"), Type::bool())) {
            prop_assert_eq!(t.occurs_free(&v), reference::free_vars(&t).contains(&v));
        }
    }

    #[test]
    fn memoised_aconv_agrees_with_recursive_aconv(a in bool_term(3), b in bool_term(3)) {
        prop_assert!(a.aconv(&a));
        prop_assert_eq!(a.aconv(&b), reference::aconv(&a, &b));
        // Asking twice exercises the cache path; the answer must not change.
        prop_assert_eq!(a.aconv(&b), reference::aconv(&a, &b));
    }

    #[test]
    fn memoised_substitution_agrees_with_recursive_substitution(
        t in bool_term(3),
        s in bool_term(2),
        i in 0u8..4,
    ) {
        let v = Var::new(format!("p{i}"), Type::bool());
        let theta = vec![(v, s)];
        let fast = vsubst(&theta, &t);
        let slow = reference::vsubst(&theta, &t);
        // The memoised and the recursive substitution produce the *same
        // interned term*, not merely alpha-equivalent ones.
        prop_assert_eq!(fast, slow);
        // Repeating hits the (subst id, term id) cache.
        prop_assert_eq!(vsubst(&theta, &t), fast);
    }

    #[test]
    fn parallel_substitution_agrees_with_reference(
        t in bool_term(3),
        s0 in bool_term(1),
        s1 in bool_term(1),
    ) {
        let theta = vec![
            (Var::new("p0", Type::bool()), s0),
            (Var::new("p1", Type::bool()), s1),
        ];
        prop_assert_eq!(vsubst(&theta, &t), reference::vsubst(&theta, &t));
    }

    #[test]
    fn memoised_beta_normalisation_matches_the_kernel_conversion(t in bool_term(3)) {
        // The arena's direct normaliser must land on the same term the
        // theorem-producing conversion (primitive rules only) reaches.
        let nf = hash_logic::term::beta_normalize(&t);
        let th = beta_norm_thm(&t).unwrap();
        let (_, kernel_nf) = th.dest_eq().unwrap();
        prop_assert!(nf.aconv(&kernel_nf));
        // Normalisation is idempotent on the nose (same id).
        prop_assert_eq!(hash_logic::term::beta_normalize(&nf), nf);
    }

    #[test]
    fn identity_instantiations_return_the_identical_handle(t in bool_term(3)) {
        // Empty and identity substitutions must not rebuild anything.
        prop_assert_eq!(vsubst(&Vec::new(), &t), t);
        let mut theta = TypeSubst::new();
        theta.insert("unused".into(), Type::bv(8));
        prop_assert_eq!(hash_logic::term::inst_type(&theta, &t), t);
    }
}
