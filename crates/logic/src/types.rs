//! Simple types of the higher-order logic.
//!
//! The type language mirrors the HOL family: a type is either a *type
//! variable* or a *type constructor* applied to argument types. The
//! constructors used by the Automata theory are
//! `bool`, `fun` (binary, written `a -> b`), `prod` (binary, written
//! `a # b`), the unit type `one`, and the bit-vector family `bvN`
//! (a nullary constructor per width, e.g. `bv8`).
//!
//! Types are the kernel's first line of defence: the paper's "false cut"
//! example (Fig. 4) is rejected precisely because the equation between the
//! original and the wrongly split combinational block cannot even be
//! *expressed* — the two sides have different types.

use crate::error::{LogicError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A simple type of the logic.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Type {
    /// A type variable, e.g. `'a`.
    Var(String),
    /// A type constructor applied to arguments, e.g. `fun(bool, bool)`.
    Con(String, Vec<Type>),
}

/// A substitution mapping type-variable names to types.
pub type TypeSubst = BTreeMap<String, Type>;

impl Type {
    /// The type of truth values.
    pub fn bool() -> Type {
        Type::Con("bool".into(), Vec::new())
    }

    /// The one-element type (used as the state of purely combinational
    /// automata).
    pub fn one() -> Type {
        Type::Con("one".into(), Vec::new())
    }

    /// The function type `dom -> cod`.
    pub fn fun(dom: Type, cod: Type) -> Type {
        Type::Con("fun".into(), vec![dom, cod])
    }

    /// The product type `a # b`.
    pub fn prod(a: Type, b: Type) -> Type {
        Type::Con("prod".into(), vec![a, b])
    }

    /// A bit-vector type of the given width. `bv1` is used for single wires.
    pub fn bv(width: u32) -> Type {
        Type::Con(format!("bv{width}"), Vec::new())
    }

    /// A fresh type variable with the given name.
    pub fn var(name: impl Into<String>) -> Type {
        Type::Var(name.into())
    }

    /// Right-nested product of a list of types; the empty list gives `one`.
    ///
    /// This is how a register bank with several registers is given a single
    /// state type in the Automata theory.
    pub fn prod_list(tys: &[Type]) -> Type {
        match tys.split_first() {
            None => Type::one(),
            Some((head, rest)) => {
                if rest.is_empty() {
                    head.clone()
                } else {
                    Type::prod(head.clone(), Type::prod_list(rest))
                }
            }
        }
    }

    /// Returns `(dom, cod)` if this is a function type.
    pub fn dest_fun(&self) -> Result<(&Type, &Type)> {
        match self {
            Type::Con(name, args) if name == "fun" && args.len() == 2 => Ok((&args[0], &args[1])),
            other => Err(LogicError::ill_formed(
                "dest_fun",
                format!("not a function type: {other}"),
            )),
        }
    }

    /// Returns `(left, right)` if this is a product type.
    pub fn dest_prod(&self) -> Result<(&Type, &Type)> {
        match self {
            Type::Con(name, args) if name == "prod" && args.len() == 2 => Ok((&args[0], &args[1])),
            other => Err(LogicError::ill_formed(
                "dest_prod",
                format!("not a product type: {other}"),
            )),
        }
    }

    /// Whether this is the boolean type.
    pub fn is_bool(&self) -> bool {
        matches!(self, Type::Con(name, args) if name == "bool" && args.is_empty())
    }

    /// Whether this is a function type.
    pub fn is_fun(&self) -> bool {
        matches!(self, Type::Con(name, args) if name == "fun" && args.len() == 2)
    }

    /// Whether this is a product type.
    pub fn is_prod(&self) -> bool {
        matches!(self, Type::Con(name, args) if name == "prod" && args.len() == 2)
    }

    /// The width of a bit-vector type, if it is one.
    pub fn bv_width(&self) -> Option<u32> {
        match self {
            Type::Con(name, args) if args.is_empty() && name.starts_with("bv") => {
                name[2..].parse().ok()
            }
            _ => None,
        }
    }

    /// All type-variable names occurring in this type, in first-occurrence
    /// order.
    pub fn type_vars(&self) -> Vec<String> {
        let mut acc = Vec::new();
        self.collect_type_vars(&mut acc);
        acc
    }

    fn collect_type_vars(&self, acc: &mut Vec<String>) {
        match self {
            Type::Var(name) => {
                if !acc.iter().any(|n| n == name) {
                    acc.push(name.clone());
                }
            }
            Type::Con(_, args) => {
                for a in args {
                    a.collect_type_vars(acc);
                }
            }
        }
    }

    /// Applies a type substitution.
    pub fn subst(&self, theta: &TypeSubst) -> Type {
        match self {
            Type::Var(name) => theta.get(name).cloned().unwrap_or_else(|| self.clone()),
            Type::Con(name, args) => {
                Type::Con(name.clone(), args.iter().map(|a| a.subst(theta)).collect())
            }
        }
    }

    /// First-order matching of `self` (the pattern) against `concrete`,
    /// extending the substitution `theta`.
    ///
    /// # Errors
    ///
    /// Fails if the structures are incompatible or a type variable would
    /// have to be bound to two different types.
    pub fn match_against(&self, concrete: &Type, theta: &mut TypeSubst) -> Result<()> {
        match (self, concrete) {
            (Type::Var(name), _) => match theta.get(name) {
                Some(bound) if bound == concrete => Ok(()),
                Some(bound) => Err(LogicError::match_failure(format!(
                    "type variable '{name} already bound to {bound}, cannot also bind {concrete}"
                ))),
                None => {
                    theta.insert(name.clone(), concrete.clone());
                    Ok(())
                }
            },
            (Type::Con(pname, pargs), Type::Con(cname, cargs)) => {
                if pname != cname || pargs.len() != cargs.len() {
                    return Err(LogicError::match_failure(format!(
                        "type constructor mismatch: {self} vs {concrete}"
                    )));
                }
                for (p, c) in pargs.iter().zip(cargs.iter()) {
                    p.match_against(c, theta)?;
                }
                Ok(())
            }
            (Type::Con(..), Type::Var(_)) => Err(LogicError::match_failure(format!(
                "cannot match constructor {self} against type variable {concrete}"
            ))),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Var(name) => write!(f, "'{name}"),
            Type::Con(name, args) => match (name.as_str(), args.as_slice()) {
                ("fun", [d, c]) => write!(f, "({d} -> {c})"),
                ("prod", [a, b]) => write!(f, "({a} # {b})"),
                (_, []) => write!(f, "{name}"),
                _ => {
                    write!(f, "{name}(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fun_and_prod_destructors() {
        let t = Type::fun(Type::bool(), Type::bv(8));
        let (d, c) = t.dest_fun().expect("function type");
        assert!(d.is_bool());
        assert_eq!(c.bv_width(), Some(8));
        assert!(t.dest_prod().is_err());

        let p = Type::prod(Type::bv(4), Type::bool());
        let (a, b) = p.dest_prod().expect("product type");
        assert_eq!(a.bv_width(), Some(4));
        assert!(b.is_bool());
    }

    #[test]
    fn bv_width_parsing() {
        assert_eq!(Type::bv(1).bv_width(), Some(1));
        assert_eq!(Type::bv(64).bv_width(), Some(64));
        assert_eq!(Type::bool().bv_width(), None);
        assert_eq!(Type::var("a").bv_width(), None);
    }

    #[test]
    fn prod_list_shapes() {
        assert_eq!(Type::prod_list(&[]), Type::one());
        assert_eq!(Type::prod_list(&[Type::bool()]), Type::bool());
        assert_eq!(
            Type::prod_list(&[Type::bv(2), Type::bv(3), Type::bv(4)]),
            Type::prod(Type::bv(2), Type::prod(Type::bv(3), Type::bv(4)))
        );
    }

    #[test]
    fn substitution_and_type_vars() {
        let a = Type::var("a");
        let b = Type::var("b");
        let t = Type::fun(a.clone(), Type::prod(b.clone(), a.clone()));
        assert_eq!(t.type_vars(), vec!["a".to_string(), "b".to_string()]);

        let mut theta = TypeSubst::new();
        theta.insert("a".into(), Type::bool());
        let s = t.subst(&theta);
        assert_eq!(
            s,
            Type::fun(Type::bool(), Type::prod(b.clone(), Type::bool()))
        );
    }

    #[test]
    fn matching_binds_consistently() {
        let pat = Type::fun(Type::var("a"), Type::var("a"));
        let mut theta = TypeSubst::new();
        pat.match_against(&Type::fun(Type::bv(8), Type::bv(8)), &mut theta)
            .expect("consistent match");
        assert_eq!(theta.get("a"), Some(&Type::bv(8)));

        let mut theta2 = TypeSubst::new();
        let err = pat
            .match_against(&Type::fun(Type::bv(8), Type::bool()), &mut theta2)
            .unwrap_err();
        assert!(matches!(err, LogicError::MatchFailure { .. }));
    }

    #[test]
    fn matching_rejects_constructor_vs_var() {
        let pat = Type::bool();
        let mut theta = TypeSubst::new();
        assert!(pat.match_against(&Type::var("x"), &mut theta).is_err());
    }

    #[test]
    fn display_round_trippable_shapes() {
        let t = Type::fun(Type::prod(Type::bv(8), Type::bool()), Type::var("out"));
        assert_eq!(t.to_string(), "((bv8 # bool) -> 'out)");
    }
}
