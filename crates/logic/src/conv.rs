//! Conversions: theorem-producing term transformations.
//!
//! A *conversion* maps a term `t` to a theorem `⊢ t = t'`. Because the
//! result is a kernel theorem, a conversion can never silently change the
//! meaning of a term — exactly the discipline the paper's formal synthesis
//! steps rely on when they "join `f` and `g` to a single combinational
//! part" (beta conversion) or "determine the new initial values via
//! evaluation" (computation rules).
//!
//! The module provides the conversions needed by the synthesis procedures:
//!
//! * [`beta_norm_thm`] — full beta normalisation,
//! * [`beta_spine_thm`] — head-spine beta reduction (used by the derived
//!   logical rules, which must not disturb redexes inside propositions),
//! * [`apply_def`] — unfolding a definitional equation applied to arguments,
//! * [`rewr_conv`] — a single rewrite with an equational theorem,
//! * [`Rewriter`] — rewriting to a normal form with a set of equations,
//!   beta reduction and optionally the computation rules of a theory.

use crate::error::{LogicError, Result};
use crate::term::{mk_comb, Term, TermRef, Var};
use crate::theory::Theory;
use crate::thm::Theorem;

/// Full beta normalisation as a theorem: `⊢ t = nf(t)`.
///
/// # Errors
///
/// Propagates kernel errors (cannot happen for well-typed input).
pub fn beta_norm_thm(t: &TermRef) -> Result<Theorem> {
    match t.view() {
        Term::Var(_) | Term::Const(_) => Theorem::refl(t),
        Term::Abs(v, body) => {
            let th = beta_norm_thm(&body)?;
            Theorem::abs(&v, &th)
        }
        Term::Comb(f, x) => {
            let thf = beta_norm_thm(&f)?;
            let thx = beta_norm_thm(&x)?;
            let th = Theorem::mk_comb(&thf, &thx)?;
            let (_, rhs) = th.dest_eq()?;
            if is_redex(&rhs) {
                let bth = Theorem::beta(&rhs)?;
                let (_, reduced) = bth.dest_eq()?;
                let rest = beta_norm_thm(&reduced)?;
                Theorem::trans_chain(&[th, bth, rest])
            } else {
                Ok(th)
            }
        }
    }
}

/// Head-spine beta reduction as a theorem: reduces only the redexes on the
/// application spine of `t`, leaving argument sub-terms untouched.
///
/// # Errors
///
/// Propagates kernel errors (cannot happen for well-typed input).
pub fn beta_spine_thm(t: &TermRef) -> Result<Theorem> {
    match t.view() {
        Term::Comb(f, x) => {
            let thf = beta_spine_thm(&f)?;
            let th = Theorem::ap_thm(&thf, &x)?;
            let (_, rhs) = th.dest_eq()?;
            if is_redex(&rhs) {
                let bth = Theorem::beta(&rhs)?;
                let (_, reduced) = bth.dest_eq()?;
                let rest = beta_spine_thm(&reduced)?;
                Theorem::trans_chain(&[th, bth, rest])
            } else {
                Ok(th)
            }
        }
        _ => Theorem::refl(t),
    }
}

/// Whether a term is a beta redex `(\x. b) a`.
pub fn is_redex(t: &TermRef) -> bool {
    matches!(t.view(), Term::Comb(f, _) if matches!(f.view(), Term::Abs(..)))
}

/// Unfolds a definitional equation applied to arguments:
/// from `⊢ c = \x1 ... xn. body` and arguments `a1 ... an`, derives
/// `⊢ c a1 ... an = body[a1/x1, ..., an/xn]`.
///
/// Only the definition's own leading lambdas are reduced; redexes inside the
/// arguments are preserved.
///
/// # Errors
///
/// Fails if the definition does not have enough leading lambdas or an
/// argument has the wrong type.
pub fn apply_def(def: &Theorem, args: &[TermRef]) -> Result<Theorem> {
    let mut th = def.clone();
    for arg in args {
        let th_app = Theorem::ap_thm(&th, arg)?;
        let (_, rhs) = th_app.dest_eq()?;
        let bth = Theorem::beta(&rhs).map_err(|_| {
            LogicError::ill_formed(
                "apply_def",
                format!("definition body is not an abstraction when applied to {arg}"),
            )
        })?;
        th = Theorem::trans(&th_app, &bth)?;
    }
    Ok(th)
}

/// A single rewrite at the root of `t` with the (closed, equational)
/// theorem `eq`, instantiating the free term variables and type variables
/// of the left-hand side by matching.
///
/// # Errors
///
/// Fails if the left-hand side does not match `t`.
pub fn rewr_conv(eq: &Theorem, t: &TermRef) -> Result<Theorem> {
    let (lhs, _) = eq.dest_eq()?;
    let matching = crate::term::term_match(&lhs, t)?;
    let inst_ty = eq.inst_type(&matching.type_subst);
    let subst: crate::term::TermSubst = matching
        .term_subst
        .iter()
        .map(|(v, s)| {
            (
                Var::new(v.name.clone(), v.ty.subst(&matching.type_subst)),
                *s,
            )
        })
        .collect();
    let instantiated = inst_ty.inst(&subst)?;
    let (new_lhs, _) = instantiated.dest_eq()?;
    if new_lhs.aconv(t) {
        if new_lhs == *t {
            Ok(instantiated)
        } else {
            // Adjust for alpha differences.
            Theorem::trans(&Theorem::alpha(t, &new_lhs)?, &instantiated)
        }
    } else {
        Err(LogicError::match_failure(format!(
            "instantiated left-hand side {new_lhs} does not equal target {t}"
        )))
    }
}

/// A rewriting engine: repeatedly rewrites a term bottom-up with a set of
/// equational theorems, beta reduction and (optionally) the computation
/// rules of a theory, until a fixed point is reached.
#[derive(Clone)]
pub struct Rewriter {
    eqs: Vec<Theorem>,
    max_passes: usize,
    use_beta: bool,
}

impl Default for Rewriter {
    fn default() -> Self {
        Self::new()
    }
}

impl Rewriter {
    /// Creates an empty rewriter (beta reduction enabled, 200-pass limit).
    pub fn new() -> Rewriter {
        Rewriter {
            eqs: Vec::new(),
            max_passes: 200,
            use_beta: true,
        }
    }

    /// Disables beta reduction.
    pub fn without_beta(mut self) -> Rewriter {
        self.use_beta = false;
        self
    }

    /// Sets the maximum number of bottom-up passes.
    pub fn with_max_passes(mut self, passes: usize) -> Rewriter {
        self.max_passes = passes;
        self
    }

    /// Adds a rewrite equation. The theorem must be closed (no hypotheses)
    /// and equational, and its left-hand side must not be a bare variable.
    ///
    /// # Errors
    ///
    /// Fails if the theorem does not satisfy those conditions.
    pub fn add_eq(&mut self, eq: &Theorem) -> Result<()> {
        if !eq.is_closed() {
            return Err(LogicError::ill_formed(
                "Rewriter::add_eq",
                format!("rewrite equation has hypotheses: {eq}"),
            ));
        }
        let (lhs, _) = eq.dest_eq()?;
        if matches!(lhs.view(), Term::Var(_)) {
            return Err(LogicError::ill_formed(
                "Rewriter::add_eq",
                "left-hand side of a rewrite must not be a bare variable".to_string(),
            ));
        }
        self.eqs.push(eq.clone());
        Ok(())
    }

    /// Adds several rewrite equations.
    pub fn add_eqs(&mut self, eqs: &[Theorem]) -> Result<()> {
        for eq in eqs {
            self.add_eq(eq)?;
        }
        Ok(())
    }

    /// Rewrites `t` to a normal form, returning `⊢ t = nf`.
    ///
    /// # Errors
    ///
    /// Fails if the rewrite system does not reach a fixed point within the
    /// pass limit.
    pub fn rewrite(&self, t: &TermRef) -> Result<Theorem> {
        self.rewrite_with(None, t)
    }

    /// Rewrites `t` using, in addition, the computation rules of `theory`.
    ///
    /// # Errors
    ///
    /// Fails if the rewrite system does not reach a fixed point within the
    /// pass limit.
    pub fn rewrite_with(&self, theory: Option<&Theory>, t: &TermRef) -> Result<Theorem> {
        let mut acc = Theorem::refl(t)?;
        let mut current = *t;
        for _ in 0..self.max_passes {
            let (th, changed) = self.pass(theory, &current)?;
            if !changed {
                return Ok(acc);
            }
            let (_, new_term) = th.dest_eq()?;
            acc = Theorem::trans(&acc, &th)?;
            current = new_term;
        }
        Err(LogicError::conversion(
            "Rewriter::rewrite",
            format!("no fixed point within {} passes", self.max_passes),
        ))
    }

    /// Rewrites the conclusion of a theorem: from `Γ ⊢ p` derive `Γ ⊢ p'`
    /// where `p'` is the rewritten conclusion.
    ///
    /// # Errors
    ///
    /// Propagates rewriting failures.
    pub fn rewrite_rule(&self, theory: Option<&Theory>, th: &Theorem) -> Result<Theorem> {
        let conv = self.rewrite_with(theory, th.concl())?;
        Theorem::eq_mp(&conv, th)
    }

    /// One bottom-up pass; returns `⊢ t = t'` and whether anything changed.
    fn pass(&self, theory: Option<&Theory>, t: &TermRef) -> Result<(Theorem, bool)> {
        let (th_sub, changed_sub) = match t.view() {
            Term::Var(_) | Term::Const(_) => (Theorem::refl(t)?, false),
            Term::Abs(v, body) => {
                let (bt, ch) = self.pass(theory, &body)?;
                (Theorem::abs(&v, &bt)?, ch)
            }
            Term::Comb(f, x) => {
                let (ft, c1) = self.pass(theory, &f)?;
                let (xt, c2) = self.pass(theory, &x)?;
                (Theorem::mk_comb(&ft, &xt)?, c1 || c2)
            }
        };
        let (_, mid) = th_sub.dest_eq()?;
        if let Some(root) = self.root_rewrite(theory, &mid)? {
            let th = Theorem::trans(&th_sub, &root)?;
            Ok((th, true))
        } else {
            Ok((th_sub, changed_sub))
        }
    }

    /// Attempts a single rewrite at the root of `t`.
    fn root_rewrite(&self, theory: Option<&Theory>, t: &TermRef) -> Result<Option<Theorem>> {
        if self.use_beta && is_redex(t) {
            return Ok(Some(Theorem::beta(t)?));
        }
        for eq in &self.eqs {
            if let Ok(th) = rewr_conv(eq, t) {
                let (lhs, rhs) = th.dest_eq()?;
                // Refuse rewrites that do not change the term, to guarantee
                // termination of the outer loop.
                if !lhs.aconv(&rhs) {
                    return Ok(Some(th));
                }
            }
        }
        if let Some(thy) = theory {
            if let Some(th) = thy.apply_any_delta(t) {
                let (lhs, rhs) = th.dest_eq()?;
                if !lhs.aconv(&rhs) {
                    return Ok(Some(th));
                }
            }
        }
        Ok(None)
    }
}

/// Rewrites the right-hand side of an equational theorem: from `Γ ⊢ a = b`
/// and a conversion result `⊢ b = b'`, produce `Γ ⊢ a = b'`.
///
/// # Errors
///
/// Fails if `th` is not equational.
pub fn convert_rhs(th: &Theorem, conv_result: &Theorem) -> Result<Theorem> {
    Theorem::trans(th, conv_result)
}

/// Builds the term `f a1 ... an` and immediately beta-normalises the spine,
/// returning both the applied term and the theorem `⊢ f a1 ... an = result`.
///
/// # Errors
///
/// Fails on type mismatches.
pub fn apply_and_reduce(f: &TermRef, args: &[TermRef]) -> Result<(TermRef, Theorem)> {
    let mut t = *f;
    for a in args {
        t = mk_comb(&t, a)?;
    }
    let th = beta_spine_thm(&t)?;
    Ok((t, th))
}

/// Instantiates both type and term variables of a theorem in one step.
///
/// # Errors
///
/// Fails if a term instantiation is ill-typed.
pub fn inst_theorem(
    th: &Theorem,
    type_subst: &crate::types::TypeSubst,
    term_subst: &crate::term::TermSubst,
) -> Result<Theorem> {
    let th_ty = th.inst_type(type_subst);
    // The variables being instantiated must be given at their
    // type-instantiated types.
    let adjusted: crate::term::TermSubst = term_subst
        .iter()
        .map(|(v, t)| (Var::new(v.name.clone(), v.ty.subst(type_subst)), *t))
        .collect();
    th_ty.inst(&adjusted)
}

/// Convenience: the instantiation of a single type variable.
pub fn single_type_subst(name: &str, ty: crate::types::Type) -> crate::types::TypeSubst {
    let mut s = crate::types::TypeSubst::new();
    s.insert(name.to_string(), ty);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{list_mk_comb, mk_abs, mk_eq, mk_var};
    use crate::types::Type;

    fn b() -> Type {
        Type::bool()
    }

    #[test]
    fn beta_norm_reduces_nested_redexes() {
        // (\f. f y) (\x. x)  =  y
        let x = Var::new("x", b());
        let fvar = Var::new("f", Type::fun(b(), b()));
        let y = mk_var("y", b());
        let id = mk_abs(&x, &x.term());
        let body = mk_comb(&fvar.term(), &y).unwrap();
        let outer = mk_comb(&mk_abs(&fvar, &body), &id).unwrap();
        let th = beta_norm_thm(&outer).unwrap();
        let (l, r) = th.dest_eq().unwrap();
        assert!(l.aconv(&outer));
        assert!(r.aconv(&y));
        assert!(th.is_closed());
    }

    #[test]
    fn beta_spine_leaves_arguments_alone() {
        // c ((\z. z) p)  has a constant head, so spine reduction keeps the
        // argument redex intact, while full normalisation reduces it.
        let z = Var::new("z", b());
        let p = mk_var("p", b());
        let c = crate::term::mk_const("c", Type::fun(b(), b()));
        let inner = mk_comb(&mk_abs(&z, &z.term()), &p).unwrap();
        let t = mk_comb(&c, &inner).unwrap();
        let th = beta_spine_thm(&t).unwrap();
        let (_, r) = th.dest_eq().unwrap();
        assert!(r.aconv(&t), "spine reduction must keep the argument redex");

        let full = beta_norm_thm(&t).unwrap();
        let (_, rf) = full.dest_eq().unwrap();
        assert!(
            rf.aconv(&mk_comb(&c, &p).unwrap()),
            "full normalisation reduces everything"
        );

        // ((\a b. a) p) q spine-reduces all the way to p.
        let a = Var::new("a", b());
        let bv = Var::new("bvar", b());
        let q = mk_var("q", b());
        let sel = mk_abs(&a, &mk_abs(&bv, &a.term()));
        let spine = list_mk_comb(&sel, &[p, q]).unwrap();
        let th2 = beta_spine_thm(&spine).unwrap();
        let (_, r2) = th2.dest_eq().unwrap();
        assert!(r2.aconv(&p));
    }

    #[test]
    fn apply_def_unfolds_definitions() {
        let mut thy = Theory::new();
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        // SWAPEQ = \x y. y = x
        let body = mk_abs(&x, &mk_abs(&y, &mk_eq(&y.term(), &x.term()).unwrap()));
        let def = thy.new_definition("SWAPEQ_DEF", "SWAPEQ", &body).unwrap();
        let p = mk_var("p", b());
        let q = mk_var("q", b());
        let th = apply_def(&def, &[p, q]).unwrap();
        let (lhs, rhs) = th.dest_eq().unwrap();
        assert_eq!(lhs.to_string(), "SWAPEQ p q");
        assert!(rhs.aconv(&mk_eq(&q, &p).unwrap()));
        // Too many arguments fails cleanly.
        assert!(apply_def(&def, &[p, q, p]).is_err());
    }

    #[test]
    fn rewr_conv_instantiates_pattern() {
        let mut thy = Theory::new();
        thy.declare_constant(
            "fst",
            Type::fun(Type::prod(Type::var("a"), Type::var("b")), Type::var("a")),
        )
        .unwrap();
        thy.declare_constant(
            "pair",
            Type::fun(
                Type::var("a"),
                Type::fun(Type::var("b"), Type::prod(Type::var("a"), Type::var("b"))),
            ),
        )
        .unwrap();
        let a = Var::new("a", Type::var("a"));
        let bv = Var::new("b", Type::var("b"));
        let pair = thy
            .const_with("pair", &crate::types::TypeSubst::new())
            .unwrap();
        let fst = thy
            .const_with("fst", &crate::types::TypeSubst::new())
            .unwrap();
        let lhs = mk_comb(&fst, &list_mk_comb(&pair, &[a.term(), bv.term()]).unwrap()).unwrap();
        let ax = thy
            .new_axiom("FST_PAIR", &mk_eq(&lhs, &a.term()).unwrap())
            .unwrap();

        // Concrete instance: fst (pair p n) with p:bool, n:bv4.
        let p = mk_var("p", b());
        let n = mk_var("n", Type::bv(4));
        let pair_i = thy
            .const_at(
                "pair",
                Type::fun(b(), Type::fun(Type::bv(4), Type::prod(b(), Type::bv(4)))),
            )
            .unwrap();
        let fst_i = thy
            .const_at("fst", Type::fun(Type::prod(b(), Type::bv(4)), b()))
            .unwrap();
        let target = mk_comb(&fst_i, &list_mk_comb(&pair_i, &[p, n]).unwrap()).unwrap();
        let th = rewr_conv(&ax, &target).unwrap();
        let (l, r) = th.dest_eq().unwrap();
        assert!(l.aconv(&target));
        assert!(r.aconv(&p));

        // A non-matching term fails.
        assert!(rewr_conv(&ax, &p).is_err());
    }

    #[test]
    fn rewriter_reaches_fixed_point() {
        let mut thy = Theory::new();
        thy.declare_constant("nn", Type::fun(b(), b())).unwrap();
        let nn = thy.const_at("nn", Type::fun(b(), b())).unwrap();
        let p = Var::new("p", b());
        // axiom: nn (nn p) = p  (double application collapses)
        let lhs = mk_comb(&nn, &mk_comb(&nn, &p.term()).unwrap()).unwrap();
        let ax = thy
            .new_axiom("NN_NN", &mk_eq(&lhs, &p.term()).unwrap())
            .unwrap();
        let mut rw = Rewriter::new();
        rw.add_eq(&ax).unwrap();

        // nn(nn(nn(nn(q)))) rewrites to q.
        let q = mk_var("q", b());
        let mut t = q;
        for _ in 0..4 {
            t = mk_comb(&nn, &t).unwrap();
        }
        let th = rw.rewrite(&t).unwrap();
        let (_, r) = th.dest_eq().unwrap();
        assert!(r.aconv(&q));
    }

    #[test]
    fn rewriter_rejects_open_equations() {
        let p = mk_var("p", b());
        let hyp_eq = Theorem::assume(&mk_eq(&p, &p).unwrap()).unwrap();
        let mut rw = Rewriter::new();
        assert!(rw.add_eq(&hyp_eq).is_err());
    }

    #[test]
    fn rewriter_uses_delta_rules() {
        let mut thy = Theory::new();
        thy.declare_constant("zero", Type::bv(4)).unwrap();
        thy.declare_constant("inc", Type::fun(Type::bv(4), Type::bv(4)))
            .unwrap();
        thy.declare_constant("one", Type::bv(4)).unwrap();
        let inc = thy
            .const_at("inc", Type::fun(Type::bv(4), Type::bv(4)))
            .unwrap();
        let zero = thy.const_at("zero", Type::bv(4)).unwrap();
        let one = thy.const_at("one", Type::bv(4)).unwrap();
        let one_for_delta = one;
        thy.new_delta_rule("inc_zero", move |t| {
            if t.to_string() == "inc zero" {
                Some(one_for_delta)
            } else {
                None
            }
        })
        .unwrap();
        let target = mk_comb(&inc, &zero).unwrap();
        let rw = Rewriter::new();
        let th = rw.rewrite_with(Some(&thy), &target).unwrap();
        let (_, r) = th.dest_eq().unwrap();
        assert!(r.aconv(&one));
    }

    #[test]
    fn inst_theorem_combines_type_and_term_instantiation() {
        let a = Type::var("a");
        let x = Var::new("x", a.clone());
        let th = Theorem::refl(&x.term()).unwrap();
        let tysub = single_type_subst("a", Type::bv(8));
        let val = mk_var("v", Type::bv(8));
        let inst = inst_theorem(&th, &tysub, &vec![(x, val)]).unwrap();
        let (l, _) = inst.dest_eq().unwrap();
        assert!(l.aconv(&val));
    }
}
