//! Terms of the higher-order logic.
//!
//! Terms follow the classic four-constructor presentation used by the HOL
//! family of provers: variables, constants, applications ("combinations")
//! and lambda abstractions. Terms are immutable and shared through
//! reference counting, so copying sub-terms is cheap — the property the
//! paper relies on when it argues that composing two synthesis theorems by
//! transitivity has constant cost ("pointers — no copying").
//!
//! All term constructors perform type checking; it is impossible to build
//! an ill-typed application. This is the mechanism by which the paper's
//! "false cut" (Fig. 4) is rejected: the equation between the original and
//! the wrongly split combinational block is not even expressible.

use crate::error::{LogicError, Result};
use crate::types::{Type, TypeSubst};
use std::fmt;
use std::rc::Rc;

/// A shared, immutable term.
pub type TermRef = Rc<Term>;

/// A term variable: a name together with its type.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Var {
    /// The variable name.
    pub name: String,
    /// The variable's type.
    pub ty: Type,
}

impl Var {
    /// Creates a new variable.
    pub fn new(name: impl Into<String>, ty: Type) -> Var {
        Var {
            name: name.into(),
            ty,
        }
    }

    /// The variable as a term.
    pub fn term(&self) -> TermRef {
        Rc::new(Term::Var(self.clone()))
    }
}

/// A constant occurrence: a name together with the type *at this
/// occurrence* (constants may be polymorphic, so different occurrences may
/// carry different instances of the generic type).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConstRef {
    /// The constant name.
    pub name: String,
    /// The type of this occurrence.
    pub ty: Type,
}

/// A higher-order-logic term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant occurrence.
    Const(ConstRef),
    /// An application `f x`.
    Comb(TermRef, TermRef),
    /// A lambda abstraction `\x. body`.
    Abs(Var, TermRef),
}

/// A substitution mapping term variables to terms.
pub type TermSubst = Vec<(Var, TermRef)>;

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

/// Builds a variable term.
pub fn mk_var(name: impl Into<String>, ty: Type) -> TermRef {
    Rc::new(Term::Var(Var::new(name, ty)))
}

/// Builds a constant term with the given occurrence type.
pub fn mk_const(name: impl Into<String>, ty: Type) -> TermRef {
    Rc::new(Term::Const(ConstRef {
        name: name.into(),
        ty,
    }))
}

/// Builds a type-checked application `f x`.
///
/// # Errors
///
/// Fails if `f` does not have a function type or its domain does not equal
/// the type of `x`.
pub fn mk_comb(f: &TermRef, x: &TermRef) -> Result<TermRef> {
    let fty = f.ty()?;
    let (dom, _) = fty.dest_fun().map_err(|_| {
        LogicError::type_mismatch(
            format!("mk_comb of {f}"),
            "a function type",
            fty.to_string(),
        )
    })?;
    let xty = x.ty()?;
    if *dom != xty {
        return Err(LogicError::type_mismatch(
            format!("mk_comb applying {f} to {x}"),
            dom.to_string(),
            xty.to_string(),
        ));
    }
    Ok(Rc::new(Term::Comb(Rc::clone(f), Rc::clone(x))))
}

/// Builds an iterated application `f x1 x2 ... xn`.
pub fn list_mk_comb(f: &TermRef, args: &[TermRef]) -> Result<TermRef> {
    let mut acc = Rc::clone(f);
    for a in args {
        acc = mk_comb(&acc, a)?;
    }
    Ok(acc)
}

/// Builds an abstraction `\v. body`.
pub fn mk_abs(v: &Var, body: &TermRef) -> TermRef {
    Rc::new(Term::Abs(v.clone(), Rc::clone(body)))
}

/// Builds an iterated abstraction `\v1 v2 ... vn. body`.
pub fn list_mk_abs(vars: &[Var], body: &TermRef) -> TermRef {
    let mut acc = Rc::clone(body);
    for v in vars.iter().rev() {
        acc = mk_abs(v, &acc);
    }
    acc
}

/// The polymorphic equality constant at element type `ty`.
pub fn eq_const(ty: &Type) -> TermRef {
    mk_const(
        "=",
        Type::fun(ty.clone(), Type::fun(ty.clone(), Type::bool())),
    )
}

/// Builds the equation `lhs = rhs`.
///
/// # Errors
///
/// Fails if the two sides have different types.
pub fn mk_eq(lhs: &TermRef, rhs: &TermRef) -> Result<TermRef> {
    let lty = lhs.ty()?;
    let rty = rhs.ty()?;
    if lty != rty {
        return Err(LogicError::type_mismatch(
            format!("mk_eq of {lhs} and {rhs}"),
            lty.to_string(),
            rty.to_string(),
        ));
    }
    let eq = eq_const(&lty);
    mk_comb(&mk_comb(&eq, lhs)?, rhs)
}

// ---------------------------------------------------------------------------
// Destructors and syntactic predicates
// ---------------------------------------------------------------------------

impl Term {
    /// Computes the type of the term.
    ///
    /// # Errors
    ///
    /// Fails on an application whose operator is not of function type
    /// (cannot happen for terms built through the checked constructors).
    pub fn ty(&self) -> Result<Type> {
        match self {
            Term::Var(v) => Ok(v.ty.clone()),
            Term::Const(c) => Ok(c.ty.clone()),
            Term::Comb(f, _) => {
                let fty = f.ty()?;
                let (_, cod) = fty.dest_fun()?;
                Ok(cod.clone())
            }
            Term::Abs(v, body) => Ok(Type::fun(v.ty.clone(), body.ty()?)),
        }
    }

    /// Destructs an application into `(operator, operand)`.
    pub fn dest_comb(&self) -> Result<(&TermRef, &TermRef)> {
        match self {
            Term::Comb(f, x) => Ok((f, x)),
            other => Err(LogicError::ill_formed(
                "dest_comb",
                format!("not an application: {other}"),
            )),
        }
    }

    /// Destructs an abstraction into `(bound variable, body)`.
    pub fn dest_abs(&self) -> Result<(&Var, &TermRef)> {
        match self {
            Term::Abs(v, body) => Ok((v, body)),
            other => Err(LogicError::ill_formed(
                "dest_abs",
                format!("not an abstraction: {other}"),
            )),
        }
    }

    /// Destructs a variable.
    pub fn dest_var(&self) -> Result<&Var> {
        match self {
            Term::Var(v) => Ok(v),
            other => Err(LogicError::ill_formed(
                "dest_var",
                format!("not a variable: {other}"),
            )),
        }
    }

    /// Destructs a constant occurrence.
    pub fn dest_const(&self) -> Result<&ConstRef> {
        match self {
            Term::Const(c) => Ok(c),
            other => Err(LogicError::ill_formed(
                "dest_const",
                format!("not a constant: {other}"),
            )),
        }
    }

    /// Destructs an equation `l = r` into `(l, r)`.
    pub fn dest_eq(&self) -> Result<(&TermRef, &TermRef)> {
        if let Term::Comb(fl, r) = self {
            if let Term::Comb(eq, l) = fl.as_ref() {
                if let Term::Const(c) = eq.as_ref() {
                    if c.name == "=" {
                        return Ok((l, r));
                    }
                }
            }
        }
        Err(LogicError::ill_formed(
            "dest_eq",
            format!("not an equation: {self}"),
        ))
    }

    /// Whether the term is an equation.
    pub fn is_eq(&self) -> bool {
        self.dest_eq().is_ok()
    }

    /// Whether the term is a (possibly applied) occurrence of the named
    /// constant, i.e. the head of the application spine is that constant.
    pub fn head_is_const(&self, name: &str) -> bool {
        match self.strip_comb().0.as_ref() {
            Term::Const(c) => c.name == name,
            _ => false,
        }
    }

    /// Splits an application spine `f x1 ... xn` into `(f, [x1, ..., xn])`.
    pub fn strip_comb(&self) -> (TermRef, Vec<TermRef>) {
        let mut args = Vec::new();
        let mut cur = self.clone();
        loop {
            match cur {
                Term::Comb(f, x) => {
                    args.push(x);
                    cur = f.as_ref().clone();
                }
                other => {
                    args.reverse();
                    return (Rc::new(other), args);
                }
            }
        }
    }

    /// Collects the free variables of the term in first-occurrence order.
    pub fn free_vars(&self) -> Vec<Var> {
        let mut acc = Vec::new();
        self.collect_free_vars(&mut Vec::new(), &mut acc);
        acc
    }

    fn collect_free_vars(&self, bound: &mut Vec<Var>, acc: &mut Vec<Var>) {
        match self {
            Term::Var(v) => {
                if !bound.contains(v) && !acc.contains(v) {
                    acc.push(v.clone());
                }
            }
            Term::Const(_) => {}
            Term::Comb(f, x) => {
                f.collect_free_vars(bound, acc);
                x.collect_free_vars(bound, acc);
            }
            Term::Abs(v, body) => {
                bound.push(v.clone());
                body.collect_free_vars(bound, acc);
                bound.pop();
            }
        }
    }

    /// Whether the given variable occurs free in the term.
    pub fn occurs_free(&self, v: &Var) -> bool {
        match self {
            Term::Var(w) => w == v,
            Term::Const(_) => false,
            Term::Comb(f, x) => f.occurs_free(v) || x.occurs_free(v),
            Term::Abs(w, body) => w != v && body.occurs_free(v),
        }
    }

    /// Collects the names of all constants occurring in the term.
    pub fn constants(&self) -> Vec<String> {
        let mut acc = Vec::new();
        self.collect_constants(&mut acc);
        acc
    }

    fn collect_constants(&self, acc: &mut Vec<String>) {
        match self {
            Term::Var(_) => {}
            Term::Const(c) => {
                if !acc.iter().any(|n| n == &c.name) {
                    acc.push(c.name.clone());
                }
            }
            Term::Comb(f, x) => {
                f.collect_constants(acc);
                x.collect_constants(acc);
            }
            Term::Abs(_, body) => body.collect_constants(acc),
        }
    }

    /// All type variables occurring in the term.
    pub fn type_vars(&self) -> Vec<String> {
        let mut acc = Vec::new();
        self.collect_type_vars(&mut acc);
        acc
    }

    fn collect_type_vars(&self, acc: &mut Vec<String>) {
        let push_all = |ty: &Type, acc: &mut Vec<String>| {
            for v in ty.type_vars() {
                if !acc.contains(&v) {
                    acc.push(v);
                }
            }
        };
        match self {
            Term::Var(v) => push_all(&v.ty, acc),
            Term::Const(c) => push_all(&c.ty, acc),
            Term::Comb(f, x) => {
                f.collect_type_vars(acc);
                x.collect_type_vars(acc);
            }
            Term::Abs(v, body) => {
                push_all(&v.ty, acc);
                body.collect_type_vars(acc);
            }
        }
    }

    /// The number of constructors in the term (a rough size measure used by
    /// the experiments).
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Const(_) => 1,
            Term::Comb(f, x) => 1 + f.size() + x.size(),
            Term::Abs(_, body) => 1 + body.size(),
        }
    }

    /// Alpha-equivalence of terms.
    pub fn aconv(&self, other: &Term) -> bool {
        fn go(a: &Term, b: &Term, env: &mut Vec<(Var, Var)>) -> bool {
            match (a, b) {
                (Term::Var(v), Term::Var(w)) => {
                    for (x, y) in env.iter().rev() {
                        if x == v || y == w {
                            return x == v && y == w;
                        }
                    }
                    v == w
                }
                (Term::Const(c), Term::Const(d)) => c == d,
                (Term::Comb(f1, x1), Term::Comb(f2, x2)) => go(f1, f2, env) && go(x1, x2, env),
                (Term::Abs(v, b1), Term::Abs(w, b2)) => {
                    if v.ty != w.ty {
                        return false;
                    }
                    env.push((v.clone(), w.clone()));
                    let r = go(b1, b2, env);
                    env.pop();
                    r
                }
                _ => false,
            }
        }
        go(self, other, &mut Vec::new())
    }
}

// ---------------------------------------------------------------------------
// Substitution
// ---------------------------------------------------------------------------

/// Returns a variant of `v` whose name does not clash with any variable in
/// `avoid`.
pub fn variant(avoid: &[Var], v: &Var) -> Var {
    let mut name = v.name.clone();
    while avoid.iter().any(|w| w.name == name) {
        name.push('\'');
    }
    Var::new(name, v.ty.clone())
}

/// Capture-avoiding parallel substitution of terms for free variables.
///
/// Pairs whose variable does not occur free are simply ignored. Bound
/// variables are renamed when a replacement term would otherwise capture
/// them.
pub fn vsubst(theta: &TermSubst, t: &TermRef) -> TermRef {
    if theta.is_empty() {
        return Rc::clone(t);
    }
    match t.as_ref() {
        Term::Var(v) => theta
            .iter()
            .find(|(w, _)| w == v)
            .map(|(_, s)| Rc::clone(s))
            .unwrap_or_else(|| Rc::clone(t)),
        Term::Const(_) => Rc::clone(t),
        Term::Comb(f, x) => {
            let f2 = vsubst(theta, f);
            let x2 = vsubst(theta, x);
            if Rc::ptr_eq(&f2, f) && Rc::ptr_eq(&x2, x) {
                Rc::clone(t)
            } else {
                Rc::new(Term::Comb(f2, x2))
            }
        }
        Term::Abs(v, body) => {
            // Remove bindings for the bound variable itself.
            let filtered: TermSubst = theta.iter().filter(|(w, _)| w != v).cloned().collect();
            if filtered.is_empty() {
                return Rc::clone(t);
            }
            // Only keep bindings whose variable actually occurs free in the body.
            let relevant: TermSubst = filtered
                .into_iter()
                .filter(|(w, _)| body.occurs_free(w))
                .collect();
            if relevant.is_empty() {
                return Rc::clone(t);
            }
            // Would the bound variable be captured by one of the replacements?
            let capture = relevant.iter().any(|(_, s)| s.occurs_free(v));
            if capture {
                let mut avoid: Vec<Var> = body.free_vars();
                for (_, s) in &relevant {
                    avoid.extend(s.free_vars());
                }
                let fresh = variant(&avoid, v);
                let renamed_body = vsubst(&vec![(v.clone(), fresh.term())], body);
                let new_body = vsubst(&relevant, &renamed_body);
                Rc::new(Term::Abs(fresh, new_body))
            } else {
                let new_body = vsubst(&relevant, body);
                Rc::new(Term::Abs(v.clone(), new_body))
            }
        }
    }
}

/// Applies a type substitution to every type annotation in the term,
/// renaming bound variables when the instantiation would cause capture.
pub fn inst_type(theta: &TypeSubst, t: &TermRef) -> TermRef {
    if theta.is_empty() {
        return Rc::clone(t);
    }
    fn go(theta: &TypeSubst, t: &TermRef) -> TermRef {
        match t.as_ref() {
            Term::Var(v) => mk_var(v.name.clone(), v.ty.subst(theta)),
            Term::Const(c) => mk_const(c.name.clone(), c.ty.subst(theta)),
            Term::Comb(f, x) => Rc::new(Term::Comb(go(theta, f), go(theta, x))),
            Term::Abs(v, body) => {
                let new_var = Var::new(v.name.clone(), v.ty.subst(theta));
                let new_body = go(theta, body);
                // Detect capture: a distinct free variable of the original body
                // could collide with the instantiated bound variable.
                let clash = body
                    .free_vars()
                    .into_iter()
                    .any(|w| w != *v && w.name == new_var.name && w.ty.subst(theta) == new_var.ty);
                if clash {
                    let avoid: Vec<Var> = new_body.free_vars();
                    let fresh = variant(&avoid, &new_var);
                    let renamed = vsubst(&vec![(new_var.clone(), fresh.term())], &new_body);
                    Rc::new(Term::Abs(fresh, renamed))
                } else {
                    Rc::new(Term::Abs(new_var, new_body))
                }
            }
        }
    }
    go(theta, t)
}

/// One step of beta reduction at the root: `(\x. b) a  ~>  b[a/x]`.
///
/// # Errors
///
/// Fails if the term is not a beta redex.
pub fn beta_reduce(t: &TermRef) -> Result<TermRef> {
    let (f, a) = t.dest_comb()?;
    let (v, body) = f.dest_abs()?;
    Ok(vsubst(&vec![(v.clone(), Rc::clone(a))], body))
}

/// Exhaustive beta normalisation (call-by-name, normal order). Terminates on
/// the simply-typed terms used throughout this crate.
pub fn beta_normalize(t: &TermRef) -> TermRef {
    match t.as_ref() {
        Term::Var(_) | Term::Const(_) => Rc::clone(t),
        Term::Abs(v, body) => Rc::new(Term::Abs(v.clone(), beta_normalize(body))),
        Term::Comb(f, x) => {
            let f_n = beta_normalize(f);
            let x_n = beta_normalize(x);
            if let Term::Abs(v, body) = f_n.as_ref() {
                let reduced = vsubst(&vec![(v.clone(), Rc::clone(&x_n))], body);
                beta_normalize(&reduced)
            } else {
                Rc::new(Term::Comb(f_n, x_n))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// First-order term matching (used by rewriting and theorem instantiation)
// ---------------------------------------------------------------------------

/// The result of matching a pattern against a term: instantiations for term
/// variables and type variables of the pattern.
#[derive(Clone, Debug, Default)]
pub struct Matching {
    /// Instantiations for the pattern's free term variables.
    pub term_subst: TermSubst,
    /// Instantiations for the pattern's type variables.
    pub type_subst: TypeSubst,
}

/// First-order matching of `pattern` against `term`.
///
/// Free variables of the pattern may be instantiated; bound variables must
/// correspond one-to-one. Type variables of the pattern are instantiated as
/// needed. This is sufficient for the rewriting performed by the synthesis
/// procedures (the higher-order instantiation of the retiming theorem is
/// constructed explicitly rather than found by matching).
///
/// # Errors
///
/// Fails with [`LogicError::MatchFailure`] if no instantiation exists within
/// the first-order fragment.
pub fn term_match(pattern: &TermRef, term: &TermRef) -> Result<Matching> {
    let mut m = Matching::default();
    let mut bound: Vec<(Var, Var)> = Vec::new();
    match_rec(pattern, term, &mut bound, &mut m)?;
    Ok(m)
}

fn match_rec(
    pattern: &TermRef,
    term: &TermRef,
    bound: &mut Vec<(Var, Var)>,
    m: &mut Matching,
) -> Result<()> {
    match (pattern.as_ref(), term.as_ref()) {
        (Term::Var(pv), _) => {
            // A pattern variable that is bound must map to the corresponding
            // bound variable of the term.
            if let Some((_, tv)) = bound.iter().rev().find(|(p, _)| p == pv) {
                return match term.as_ref() {
                    Term::Var(w) if w == tv => Ok(()),
                    _ => Err(LogicError::match_failure(format!(
                        "bound variable {} does not correspond",
                        pv.name
                    ))),
                };
            }
            // The replacement must not mention the term-side bound variables.
            for (_, tv) in bound.iter() {
                if term.occurs_free(tv) {
                    return Err(LogicError::match_failure(format!(
                        "replacement for {} would capture bound variable {}",
                        pv.name, tv.name
                    )));
                }
            }
            pv.ty.match_against(&term.ty()?, &mut m.type_subst)?;
            if let Some((_, existing)) = m.term_subst.iter().find(|(w, _)| w == pv) {
                if existing.aconv(term) {
                    Ok(())
                } else {
                    Err(LogicError::match_failure(format!(
                        "variable {} matched against two different terms",
                        pv.name
                    )))
                }
            } else {
                m.term_subst.push((pv.clone(), Rc::clone(term)));
                Ok(())
            }
        }
        (Term::Const(pc), Term::Const(tc)) => {
            if pc.name != tc.name {
                return Err(LogicError::match_failure(format!(
                    "constant mismatch: {} vs {}",
                    pc.name, tc.name
                )));
            }
            pc.ty.match_against(&tc.ty, &mut m.type_subst)
        }
        (Term::Comb(pf, px), Term::Comb(tf, tx)) => {
            match_rec(pf, tf, bound, m)?;
            match_rec(px, tx, bound, m)
        }
        (Term::Abs(pv, pb), Term::Abs(tv, tb)) => {
            pv.ty.match_against(&tv.ty, &mut m.type_subst)?;
            bound.push((pv.clone(), tv.clone()));
            let r = match_rec(pb, tb, bound, m);
            bound.pop();
            r
        }
        _ => Err(LogicError::match_failure(format!(
            "structural mismatch: {pattern} vs {term}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Display
// ---------------------------------------------------------------------------

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(t: &Term, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match t {
                Term::Var(v) => write!(f, "{}", v.name),
                Term::Const(c) => write!(f, "{}", c.name),
                Term::Comb(g, x) => {
                    // Special-case infix equality for readability.
                    if let Term::Comb(eq, l) = g.as_ref() {
                        if let Term::Const(c) = eq.as_ref() {
                            if c.name == "=" {
                                if prec > 0 {
                                    write!(f, "(")?;
                                }
                                go(l, f, 1)?;
                                write!(f, " = ")?;
                                go(x, f, 1)?;
                                if prec > 0 {
                                    write!(f, ")")?;
                                }
                                return Ok(());
                            }
                        }
                    }
                    if prec > 1 {
                        write!(f, "(")?;
                    }
                    go(g, f, 1)?;
                    write!(f, " ")?;
                    go(x, f, 2)?;
                    if prec > 1 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Term::Abs(v, body) => {
                    if prec > 0 {
                        write!(f, "(")?;
                    }
                    write!(f, "\\{}. ", v.name)?;
                    go(body, f, 0)?;
                    if prec > 0 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b() -> Type {
        Type::bool()
    }

    #[test]
    fn mk_comb_type_checks() {
        let f = mk_var("f", Type::fun(b(), b()));
        let x = mk_var("x", b());
        let y = mk_var("y", Type::bv(4));
        assert!(mk_comb(&f, &x).is_ok());
        assert!(mk_comb(&f, &y).is_err());
        assert!(mk_comb(&x, &y).is_err());
    }

    #[test]
    fn eq_requires_same_types() {
        let x = mk_var("x", b());
        let y = mk_var("y", b());
        let z = mk_var("z", Type::bv(8));
        assert!(mk_eq(&x, &y).is_ok());
        let err = mk_eq(&x, &z).unwrap_err();
        assert!(matches!(err, LogicError::TypeMismatch { .. }));
    }

    #[test]
    fn dest_eq_roundtrip() {
        let x = mk_var("x", b());
        let y = mk_var("y", b());
        let e = mk_eq(&x, &y).unwrap();
        let (l, r) = e.dest_eq().unwrap();
        assert!(l.aconv(&x));
        assert!(r.aconv(&y));
        assert!(x.dest_eq().is_err());
    }

    #[test]
    fn free_vars_and_occurs() {
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let body = mk_eq(&x.term(), &y.term()).unwrap();
        let lam = mk_abs(&x, &body);
        assert!(body.occurs_free(&x));
        assert!(!lam.occurs_free(&x));
        assert!(lam.occurs_free(&y));
        assert_eq!(lam.free_vars(), vec![y]);
    }

    #[test]
    fn aconv_alpha_equivalence() {
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let id_x = mk_abs(&x, &x.term());
        let id_y = mk_abs(&y, &y.term());
        assert!(id_x.aconv(&id_y));
        assert_ne!(*id_x, *id_y); // syntactically different
        let konst = mk_abs(&x, &y.term());
        assert!(!id_x.aconv(&konst));
    }

    #[test]
    fn aconv_distinguishes_capture() {
        // \x. \y. x  vs  \y. \y. y  must not be alpha equivalent.
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let t1 = mk_abs(&x, &mk_abs(&y, &x.term()));
        let t2 = mk_abs(&y, &mk_abs(&y, &y.term()));
        assert!(!t1.aconv(&t2));
    }

    #[test]
    fn substitution_is_capture_avoiding() {
        // (\y. x) [x := y]  must become  \y'. y  (not \y. y).
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let t = mk_abs(&y, &x.term());
        let s = vsubst(&vec![(x.clone(), y.term())], &t);
        let (bv, body) = s.dest_abs().unwrap();
        assert_ne!(bv.name, "y");
        assert!(body.aconv(&y.term()));
    }

    #[test]
    fn substitution_ignores_bound_occurrences() {
        let x = Var::new("x", b());
        let t = mk_abs(&x, &x.term());
        let s = vsubst(&vec![(x.clone(), mk_var("z", b()))], &t);
        assert!(s.aconv(&t));
    }

    #[test]
    fn beta_reduction_basics() {
        let x = Var::new("x", b());
        let y = mk_var("y", b());
        let id = mk_abs(&x, &x.term());
        let app = mk_comb(&id, &y).unwrap();
        let red = beta_reduce(&app).unwrap();
        assert!(red.aconv(&y));
        assert!(beta_reduce(&y).is_err());
    }

    #[test]
    fn beta_normalization_nested() {
        // (\f. f y) (\x. x)  ~>  y
        let x = Var::new("x", b());
        let fvar = Var::new("f", Type::fun(b(), b()));
        let y = mk_var("y", b());
        let id = mk_abs(&x, &x.term());
        let body = mk_comb(&fvar.term(), &y).unwrap();
        let outer = mk_comb(&mk_abs(&fvar, &body), &id).unwrap();
        let nf = beta_normalize(&outer);
        assert!(nf.aconv(&y));
    }

    #[test]
    fn inst_type_changes_annotation() {
        let a = Type::var("a");
        let x = mk_var("x", a.clone());
        let mut theta = TypeSubst::new();
        theta.insert("a".into(), Type::bv(8));
        let inst = inst_type(&theta, &x);
        assert_eq!(inst.ty().unwrap(), Type::bv(8));
    }

    #[test]
    fn matching_simple_rewrite_pattern() {
        // pattern: fst (pair a b) ... here modelled by generic f a b against concrete.
        let a = Var::new("a", Type::var("A"));
        let b_v = Var::new("b", Type::var("B"));
        let f = mk_const(
            "pair",
            Type::fun(
                Type::var("A"),
                Type::fun(Type::var("B"), Type::prod(Type::var("A"), Type::var("B"))),
            ),
        );
        let pat = list_mk_comb(&f, &[a.term(), b_v.term()]).unwrap();

        let cf = mk_const(
            "pair",
            Type::fun(
                Type::bool(),
                Type::fun(Type::bv(4), Type::prod(Type::bool(), Type::bv(4))),
            ),
        );
        let concrete =
            list_mk_comb(&cf, &[mk_var("p", Type::bool()), mk_var("q", Type::bv(4))]).unwrap();

        let m = term_match(&pat, &concrete).unwrap();
        assert_eq!(m.type_subst.get("A"), Some(&Type::bool()));
        assert_eq!(m.type_subst.get("B"), Some(&Type::bv(4)));
        assert_eq!(m.term_subst.len(), 2);
    }

    #[test]
    fn matching_rejects_inconsistent_binding() {
        let x = Var::new("x", b());
        let pat = mk_eq(&x.term(), &x.term()).unwrap();
        let concrete = mk_eq(&mk_var("p", b()), &mk_var("q", b())).unwrap();
        assert!(term_match(&pat, &concrete).is_err());
        let ok = mk_eq(&mk_var("p", b()), &mk_var("p", b())).unwrap();
        assert!(term_match(&pat, &ok).is_ok());
    }

    #[test]
    fn matching_under_binders() {
        // pattern \x. c x  against  \y. c y
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let c = mk_const("c", Type::fun(b(), b()));
        let pat = mk_abs(&x, &mk_comb(&c, &x.term()).unwrap());
        let tgt = mk_abs(&y, &mk_comb(&c, &y.term()).unwrap());
        assert!(term_match(&pat, &tgt).is_ok());
    }

    #[test]
    fn matching_refuses_escaping_bound_var() {
        // pattern \x. v  (v free) against \y. y would require v := y (bound) -> reject.
        let x = Var::new("x", b());
        let v = Var::new("v", b());
        let y = Var::new("y", b());
        let pat = mk_abs(&x, &v.term());
        let tgt = mk_abs(&y, &y.term());
        assert!(term_match(&pat, &tgt).is_err());
    }

    #[test]
    fn strip_comb_spine() {
        let f = mk_var("f", Type::fun(b(), Type::fun(b(), b())));
        let x = mk_var("x", b());
        let y = mk_var("y", b());
        let t = list_mk_comb(&f, &[x.clone(), y.clone()]).unwrap();
        let (head, args) = t.strip_comb();
        assert!(head.aconv(&f));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn size_and_constants() {
        let c = mk_const("T", b());
        let e = mk_eq(&c, &c).unwrap();
        assert_eq!(e.constants(), vec!["=".to_string(), "T".to_string()]);
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn display_is_readable() {
        let x = Var::new("x", b());
        let t = mk_abs(&x, &mk_eq(&x.term(), &mk_const("T", b())).unwrap());
        assert_eq!(t.to_string(), "\\x. x = T");
    }
}
