//! Terms of the higher-order logic, represented as *hash-consed* handles
//! into a thread-local term arena.
//!
//! Terms follow the classic four-constructor presentation used by the HOL
//! family of provers: variables, constants, applications ("combinations")
//! and lambda abstractions. Since PR 2 the representation is a maximal-
//! sharing arena (mirroring the `hash-bdd` unique table): every distinct
//! term is stored exactly once and a [`TermRef`] is a copyable `u32` id, so
//!
//! * structural equality is an id compare (`==` on [`TermRef`] is O(1)),
//! * the [`Type`] of a term is computed once at interning time and cached
//!   per node (`ty()` never recurses),
//! * free-variable sets, alpha-equivalence, capture-avoiding substitution
//!   and beta reduction are memoised on node ids, so repeated work over
//!   shared sub-terms — the common case in the retiming derivations — is
//!   paid once.
//!
//! This is the "pointers, no copying" cost model the paper assumes when it
//! argues that composing two synthesis theorems by transitivity has
//! constant cost.
//!
//! All term constructors perform type checking *at interning time*; it is
//! impossible to build an ill-typed application. This is the mechanism by
//! which the paper's "false cut" (Fig. 4) is rejected: the equation between
//! the original and the wrongly split combinational block is not even
//! expressible.
//!
//! The arena is thread-local: terms never cross threads (a [`TermRef`]
//! is deliberately `!Send`, exactly like the `Rc<Term>` representation it
//! replaced), and the arena lives for the lifetime of the thread.

use crate::error::{LogicError, Result};
use crate::types::{Type, TypeSubst};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

/// A term variable: a name together with its type.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Var {
    /// The variable name.
    pub name: String,
    /// The variable's type.
    pub ty: Type,
}

impl Var {
    /// Creates a new variable.
    pub fn new(name: impl Into<String>, ty: Type) -> Var {
        Var {
            name: name.into(),
            ty,
        }
    }

    /// The variable as a term.
    pub fn term(&self) -> TermRef {
        with_arena(|a| a.intern_var(self))
    }
}

/// A constant occurrence: a name together with the type *at this
/// occurrence* (constants may be polymorphic, so different occurrences may
/// carry different instances of the generic type).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConstRef {
    /// The constant name.
    pub name: String,
    /// The type of this occurrence.
    pub ty: Type,
}

/// A shared, immutable, hash-consed term: a copyable handle (`u32` id)
/// into the thread-local term arena (`TermArena`, crate-private).
///
/// Equality and hashing are by id — O(1) — and, because the arena
/// maximally shares structure, id equality *is* structural equality.
/// The `PhantomData<Rc<()>>` keeps the handle `!Send`/`!Sync`: ids are
/// only meaningful within the thread whose arena created them (the same
/// constraint the previous `Rc<Term>` representation enforced).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TermRef {
    id: u32,
    _single_thread: PhantomData<Rc<()>>,
}

impl TermRef {
    fn from_id(id: u32) -> TermRef {
        TermRef {
            id,
            _single_thread: PhantomData,
        }
    }

    /// The arena id of this term. Two terms have the same id exactly when
    /// they are structurally equal (maximal sharing).
    pub fn id(&self) -> u32 {
        self.id
    }
}

/// A one-level *view* of a term, for pattern matching. Children are
/// returned as [`TermRef`] handles; binder and leaf payloads are cloned
/// out of the arena.
#[derive(Clone, Debug)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant occurrence.
    Const(ConstRef),
    /// An application `f x`.
    Comb(TermRef, TermRef),
    /// A lambda abstraction `\x. body`.
    Abs(Var, TermRef),
}

/// A substitution mapping term variables to terms.
pub type TermSubst = Vec<(Var, TermRef)>;

// ---------------------------------------------------------------------------
// The arena
// ---------------------------------------------------------------------------

/// Interned node payload. Children are stored as ids; binder/leaf payloads
/// are shared `Rc`s so that cloning a node (to walk it while the arena is
/// mutably borrowed) costs two pointer bumps.
#[derive(Clone)]
enum Node {
    Var(Rc<Var>),
    Const(Rc<ConstRef>),
    Comb(TermRef, TermRef),
    Abs(Rc<Var>, TermRef),
}

/// A normalised, interned substitution: sorted by variable, deduplicated,
/// with identity bindings removed.
type SubstPairs = Rc<Vec<(Rc<Var>, TermRef)>>;

/// The unique-table key of a node (hashes/compares by *content*, which is
/// what makes two structurally equal terms intern to the same id).
#[derive(PartialEq, Eq, Hash)]
enum NodeKey {
    Var(Rc<Var>),
    Const(Rc<ConstRef>),
    Comb(u32, u32),
    Abs(Rc<Var>, u32),
}

struct NodeData {
    node: Node,
    /// The type, computed once at interning.
    ty: Type,
    /// Constructor count, computed once at interning.
    size: u64,
    /// Whether any type annotation below this node mentions a type
    /// variable (fast path for `inst_type`).
    has_type_vars: bool,
    /// Memoised free variables, in first-occurrence order.
    fvs: Option<Rc<Vec<Var>>>,
}

/// Why an application could not be interned (formatted into a full
/// [`LogicError`] *outside* the arena borrow, because rendering a term
/// needs to re-borrow the arena).
enum CombError {
    NotAFunction(Type),
    DomainMismatch(Type, Type),
}

/// Counters describing the current thread's term arena, for diagnostics
/// and the perf-trajectory JSON.
#[derive(Clone, Copy, Debug, Default)]
pub struct ArenaStats {
    /// Number of distinct interned terms.
    pub nodes: usize,
    /// Number of interned substitutions.
    pub substs: usize,
    /// Entries in the (subst, term) → term substitution cache.
    pub vsubst_cache: usize,
    /// Entries in the alpha-equivalence cache.
    pub aconv_cache: usize,
    /// Entries in the beta-reduction cache.
    pub beta_cache: usize,
}

#[derive(Default)]
struct TermArena {
    nodes: Vec<NodeData>,
    unique: HashMap<NodeKey, u32>,
    vars: HashMap<Var, Rc<Var>>,
    consts: HashMap<ConstRef, Rc<ConstRef>>,
    /// Memoised alpha-equivalence for *closed-environment* comparisons.
    aconv_cache: HashMap<(u32, u32), bool>,
    /// Interned, normalised substitutions (sorted, deduped, no identity
    /// bindings) and the (subst, term) result cache.
    substs: Vec<SubstPairs>,
    subst_ids: HashMap<SubstPairs, u32>,
    vsubst_cache: HashMap<(u32, u32), TermRef>,
    /// Interned type substitutions and the (subst, term) instantiation
    /// cache.
    ty_substs: Vec<Rc<TypeSubst>>,
    ty_subst_ids: HashMap<Rc<TypeSubst>, u32>,
    inst_cache: HashMap<(u32, u32), TermRef>,
    /// redex id → contractum.
    beta_cache: HashMap<u32, TermRef>,
    /// term id → beta normal form.
    beta_nf_cache: HashMap<u32, TermRef>,
    empty_fvs: Option<Rc<Vec<Var>>>,
}

thread_local! {
    static ARENA: RefCell<TermArena> = RefCell::new(TermArena::default());
}

fn with_arena<R>(f: impl FnOnce(&mut TermArena) -> R) -> R {
    ARENA.with(|a| f(&mut a.borrow_mut()))
}

/// The number of distinct terms interned by this thread's arena so far.
pub fn arena_node_count() -> usize {
    ARENA.with(|a| a.borrow().nodes.len())
}

/// Diagnostic counters of this thread's term arena.
pub fn arena_stats() -> ArenaStats {
    ARENA.with(|a| {
        let a = a.borrow();
        ArenaStats {
            nodes: a.nodes.len(),
            substs: a.substs.len(),
            vsubst_cache: a.vsubst_cache.len(),
            aconv_cache: a.aconv_cache.len(),
            beta_cache: a.beta_cache.len(),
        }
    })
}

fn ty_has_vars(ty: &Type) -> bool {
    match ty {
        Type::Var(_) => true,
        Type::Con(_, args) => args.iter().any(ty_has_vars),
    }
}

impl TermArena {
    fn node(&self, t: TermRef) -> &NodeData {
        &self.nodes[t.id as usize]
    }

    fn var_rc(&mut self, v: &Var) -> Rc<Var> {
        if let Some(rv) = self.vars.get(v) {
            return Rc::clone(rv);
        }
        let rv = Rc::new(v.clone());
        self.vars.insert(v.clone(), Rc::clone(&rv));
        rv
    }

    fn const_rc(&mut self, c: &ConstRef) -> Rc<ConstRef> {
        if let Some(rc) = self.consts.get(c) {
            return Rc::clone(rc);
        }
        let rc = Rc::new(c.clone());
        self.consts.insert(c.clone(), Rc::clone(&rc));
        rc
    }

    fn insert(&mut self, key: NodeKey, data: NodeData) -> TermRef {
        let id = u32::try_from(self.nodes.len()).expect("term arena overflow (2^32 nodes)");
        self.nodes.push(data);
        self.unique.insert(key, id);
        TermRef::from_id(id)
    }

    fn intern_var(&mut self, v: &Var) -> TermRef {
        let rv = self.var_rc(v);
        if let Some(&id) = self.unique.get(&NodeKey::Var(Rc::clone(&rv))) {
            return TermRef::from_id(id);
        }
        let data = NodeData {
            ty: rv.ty.clone(),
            size: 1,
            has_type_vars: ty_has_vars(&rv.ty),
            fvs: Some(Rc::new(vec![(*rv).clone()])),
            node: Node::Var(Rc::clone(&rv)),
        };
        self.insert(NodeKey::Var(rv), data)
    }

    fn intern_const(&mut self, c: &ConstRef) -> TermRef {
        let rc = self.const_rc(c);
        if let Some(&id) = self.unique.get(&NodeKey::Const(Rc::clone(&rc))) {
            return TermRef::from_id(id);
        }
        let data = NodeData {
            ty: rc.ty.clone(),
            size: 1,
            has_type_vars: ty_has_vars(&rc.ty),
            fvs: Some(self.empty()),
            node: Node::Const(Rc::clone(&rc)),
        };
        self.insert(NodeKey::Const(rc), data)
    }

    fn empty(&mut self) -> Rc<Vec<Var>> {
        if let Some(e) = &self.empty_fvs {
            return Rc::clone(e);
        }
        let e = Rc::new(Vec::new());
        self.empty_fvs = Some(Rc::clone(&e));
        e
    }

    /// Interns an application, *type-checking at interning time*: the
    /// operator must have a function type whose domain equals the operand
    /// type (an id-cached [`Type`] comparison, not a recomputation).
    fn intern_comb(&mut self, f: TermRef, x: TermRef) -> std::result::Result<TermRef, CombError> {
        let key = NodeKey::Comb(f.id, x.id);
        if let Some(&id) = self.unique.get(&key) {
            return Ok(TermRef::from_id(id));
        }
        let cod = {
            let fty = &self.node(f).ty;
            let (dom, cod) = match fty {
                Type::Con(name, args) if name == "fun" && args.len() == 2 => (&args[0], &args[1]),
                other => return Err(CombError::NotAFunction(other.clone())),
            };
            let xty = &self.node(x).ty;
            if dom != xty {
                return Err(CombError::DomainMismatch(dom.clone(), xty.clone()));
            }
            cod.clone()
        };
        let size = self
            .node(f)
            .size
            .saturating_add(self.node(x).size)
            .saturating_add(1);
        let has_type_vars = self.node(f).has_type_vars || self.node(x).has_type_vars;
        let data = NodeData {
            ty: cod,
            size,
            has_type_vars,
            fvs: None,
            node: Node::Comb(f, x),
        };
        Ok(self.insert(key, data))
    }

    fn intern_abs(&mut self, v: &Var, body: TermRef) -> TermRef {
        let rv = self.var_rc(v);
        if let Some(&id) = self.unique.get(&NodeKey::Abs(Rc::clone(&rv), body.id)) {
            return TermRef::from_id(id);
        }
        let data = NodeData {
            ty: Type::fun(rv.ty.clone(), self.node(body).ty.clone()),
            size: self.node(body).size.saturating_add(1),
            has_type_vars: ty_has_vars(&rv.ty) || self.node(body).has_type_vars,
            fvs: None,
            node: Node::Abs(Rc::clone(&rv), body),
        };
        self.insert(NodeKey::Abs(rv, body.id), data)
    }

    // -- Free variables -----------------------------------------------------

    /// Memoised free variables in first-occurrence order.
    fn fvs(&mut self, t: TermRef) -> Rc<Vec<Var>> {
        if let Some(f) = &self.node(t).fvs {
            return Rc::clone(f);
        }
        let computed = match self.node(t).node.clone() {
            // Leaf free-var sets are stored at interning time, so only
            // compound nodes ever reach this computation.
            Node::Var(_) | Node::Const(_) => {
                unreachable!("leaf free-variable sets are precomputed at interning")
            }
            Node::Comb(f, x) => {
                let ffv = self.fvs(f);
                let xfv = self.fvs(x);
                if ffv.is_empty() {
                    xfv
                } else if xfv.is_empty() || Rc::ptr_eq(&ffv, &xfv) {
                    ffv
                } else {
                    let fresh: Vec<&Var> = xfv.iter().filter(|v| !ffv.contains(v)).collect();
                    if fresh.is_empty() {
                        ffv
                    } else {
                        let mut out: Vec<Var> = (*ffv).clone();
                        out.extend(fresh.into_iter().cloned());
                        Rc::new(out)
                    }
                }
            }
            Node::Abs(v, body) => {
                let bfv = self.fvs(body);
                if bfv.iter().any(|w| w == &*v) {
                    Rc::new(bfv.iter().filter(|w| *w != &*v).cloned().collect())
                } else {
                    bfv
                }
            }
        };
        self.nodes[t.id as usize].fvs = Some(Rc::clone(&computed));
        computed
    }

    fn occurs_free(&mut self, t: TermRef, v: &Var) -> bool {
        self.fvs(t).iter().any(|w| w == v)
    }

    // -- Alpha-equivalence --------------------------------------------------

    fn aconv(&mut self, a: TermRef, b: TermRef) -> bool {
        self.aconv_env(a, b, &mut Vec::new())
    }

    fn aconv_env(&mut self, a: TermRef, b: TermRef, env: &mut Vec<(Rc<Var>, Rc<Var>)>) -> bool {
        if a == b {
            // Identical ids are alpha-equivalent unless a binder in the
            // environment interferes with a shared free variable.
            if env.is_empty() {
                return true;
            }
            let fv = self.fvs(a);
            if !env
                .iter()
                .any(|(x, y)| fv.iter().any(|w| w == &**x || w == &**y))
            {
                return true;
            }
        }
        if env.is_empty() {
            let key = (a.id, b.id);
            if let Some(&r) = self.aconv_cache.get(&key) {
                return r;
            }
            let r = self.aconv_nodes(a, b, env);
            self.aconv_cache.insert(key, r);
            self.aconv_cache.insert((b.id, a.id), r);
            r
        } else {
            self.aconv_nodes(a, b, env)
        }
    }

    fn aconv_nodes(&mut self, a: TermRef, b: TermRef, env: &mut Vec<(Rc<Var>, Rc<Var>)>) -> bool {
        match (self.node(a).node.clone(), self.node(b).node.clone()) {
            (Node::Var(v), Node::Var(w)) => {
                for (x, y) in env.iter().rev() {
                    if **x == *v || **y == *w {
                        return **x == *v && **y == *w;
                    }
                }
                v == w
            }
            (Node::Const(c), Node::Const(d)) => c == d,
            (Node::Comb(f1, x1), Node::Comb(f2, x2)) => {
                self.aconv_env(f1, f2, env) && self.aconv_env(x1, x2, env)
            }
            (Node::Abs(v, b1), Node::Abs(w, b2)) => {
                if v.ty != w.ty {
                    return false;
                }
                if env.is_empty() && v == w {
                    // Identity binder pair: the environment stays empty, so
                    // the recursive comparison remains memoisable.
                    return self.aconv_env(b1, b2, env);
                }
                env.push((v, w));
                let r = self.aconv_env(b1, b2, env);
                env.pop();
                r
            }
            _ => false,
        }
    }

    // -- Substitution -------------------------------------------------------

    /// Interns a normalised substitution (callers must pass it sorted by
    /// variable, deduplicated, without identity bindings).
    fn subst_id(&mut self, pairs: Vec<(Rc<Var>, TermRef)>) -> u32 {
        let rc = Rc::new(pairs);
        if let Some(&sid) = self.subst_ids.get(&rc) {
            return sid;
        }
        let sid = u32::try_from(self.substs.len()).expect("substitution arena overflow");
        self.substs.push(Rc::clone(&rc));
        self.subst_ids.insert(rc, sid);
        sid
    }

    /// Normalises a user-facing substitution against the term it will be
    /// applied to; `None` if it is a no-op. Later duplicate bindings are
    /// shadowed (first binding wins, as in the pre-arena list lookup), and
    /// bindings whose variable does not occur free in `t` are dropped
    /// *before* the type check, so a dead ill-typed binding is ignored
    /// exactly as it was by the recursive implementation.
    fn normalize_subst(&mut self, theta: &TermSubst, t: TermRef) -> Option<u32> {
        let fv = self.fvs(t);
        let mut seen: Vec<&Var> = Vec::with_capacity(theta.len());
        let mut pairs: Vec<(Rc<Var>, TermRef)> = Vec::with_capacity(theta.len());
        for (v, s) in theta {
            if seen.contains(&v) {
                continue; // first binding wins, as in the list-based lookup
            }
            seen.push(v);
            if !fv.iter().any(|w| w == v) {
                continue; // dead binding: the variable is not free in t
            }
            if self.intern_var(v) == *s {
                continue; // identity binding
            }
            assert!(
                self.node(*s).ty == v.ty,
                "vsubst: ill-typed binding for variable {}",
                v.name
            );
            pairs.push((self.var_rc(v), *s));
        }
        if pairs.is_empty() {
            return None;
        }
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Some(self.subst_id(pairs))
    }

    /// Memoised capture-avoiding parallel substitution, keyed on
    /// (substitution id, term id).
    fn vsubst_rec(&mut self, sid: u32, t: TermRef) -> TermRef {
        if let Some(&r) = self.vsubst_cache.get(&(sid, t.id)) {
            return r;
        }
        let pairs = Rc::clone(&self.substs[sid as usize]);
        // Fast path: no substituted variable occurs free in the term.
        let fv = self.fvs(t);
        if !pairs.iter().any(|(v, _)| fv.iter().any(|w| w == &**v)) {
            self.vsubst_cache.insert((sid, t.id), t);
            return t;
        }
        drop(fv);
        let result = match self.node(t).node.clone() {
            Node::Var(v) => pairs
                .iter()
                .find(|(w, _)| *w == v)
                .map(|(_, s)| *s)
                .unwrap_or(t),
            Node::Const(_) => t,
            Node::Comb(f, x) => {
                let f2 = self.vsubst_rec(sid, f);
                let x2 = self.vsubst_rec(sid, x);
                if f2 == f && x2 == x {
                    t
                } else {
                    self.intern_comb(f2, x2)
                        .unwrap_or_else(|_| unreachable!("substitution preserves typing"))
                }
            }
            Node::Abs(v, body) => {
                let bfv = self.fvs(body);
                let relevant: Vec<(Rc<Var>, TermRef)> = pairs
                    .iter()
                    .filter(|(w, _)| **w != *v && bfv.iter().any(|u| u == &**w))
                    .cloned()
                    .collect();
                if relevant.is_empty() {
                    t
                } else {
                    let capture = relevant.iter().any(|&(_, s)| {
                        let sfv = self.fvs(s);
                        sfv.iter().any(|u| u == &*v)
                    });
                    if capture {
                        let mut avoid: Vec<Var> = (*bfv).clone();
                        for (_, s) in &relevant {
                            avoid.extend(self.fvs(*s).iter().cloned());
                        }
                        let fresh = variant(&avoid, &v);
                        let fresh_term = self.intern_var(&fresh);
                        let rename_sid = self.subst_id(vec![(Rc::clone(&v), fresh_term)]);
                        let renamed = self.vsubst_rec(rename_sid, body);
                        let rsid = self.subst_id(relevant);
                        let new_body = self.vsubst_rec(rsid, renamed);
                        self.intern_abs(&fresh, new_body)
                    } else {
                        // `relevant` inherits the parent's sort order.
                        let rsid = self.subst_id(relevant);
                        let new_body = self.vsubst_rec(rsid, body);
                        self.intern_abs(&v, new_body)
                    }
                }
            }
        };
        self.vsubst_cache.insert((sid, t.id), result);
        result
    }

    // -- Type instantiation -------------------------------------------------

    fn ty_subst_id(&mut self, theta: &TypeSubst) -> Option<u32> {
        let norm: TypeSubst = theta
            .iter()
            .filter(|(name, ty)| !matches!(ty, Type::Var(m) if m == *name))
            .map(|(n, t)| (n.clone(), t.clone()))
            .collect();
        if norm.is_empty() {
            return None;
        }
        let rc = Rc::new(norm);
        if let Some(&sid) = self.ty_subst_ids.get(&rc) {
            return Some(sid);
        }
        let sid = u32::try_from(self.ty_substs.len()).expect("type-substitution arena overflow");
        self.ty_substs.push(Rc::clone(&rc));
        self.ty_subst_ids.insert(rc, sid);
        Some(sid)
    }

    fn inst_type_rec(&mut self, sid: u32, t: TermRef) -> TermRef {
        if !self.node(t).has_type_vars {
            return t;
        }
        if let Some(&r) = self.inst_cache.get(&(sid, t.id)) {
            return r;
        }
        let theta = Rc::clone(&self.ty_substs[sid as usize]);
        let result = match self.node(t).node.clone() {
            Node::Var(v) => {
                let nv = Var::new(v.name.clone(), v.ty.subst(&theta));
                self.intern_var(&nv)
            }
            Node::Const(c) => {
                let nc = ConstRef {
                    name: c.name.clone(),
                    ty: c.ty.subst(&theta),
                };
                self.intern_const(&nc)
            }
            Node::Comb(f, x) => {
                let f2 = self.inst_type_rec(sid, f);
                let x2 = self.inst_type_rec(sid, x);
                self.intern_comb(f2, x2)
                    .unwrap_or_else(|_| unreachable!("type instantiation preserves typing"))
            }
            Node::Abs(v, body) => {
                let new_var = Var::new(v.name.clone(), v.ty.subst(&theta));
                let new_body = self.inst_type_rec(sid, body);
                // Detect capture: a distinct free variable of the original
                // body could collide with the instantiated bound variable.
                let bfv = self.fvs(body);
                let clash = bfv.iter().any(|w| {
                    w != &*v && w.name == new_var.name && w.ty.subst(&theta) == new_var.ty
                });
                if clash {
                    let avoid: Vec<Var> = (*self.fvs(new_body)).clone();
                    let fresh = variant(&avoid, &new_var);
                    let fresh_term = self.intern_var(&fresh);
                    let nv_rc = self.var_rc(&new_var);
                    let rsid = self.subst_id(vec![(nv_rc, fresh_term)]);
                    let renamed = self.vsubst_rec(rsid, new_body);
                    self.intern_abs(&fresh, renamed)
                } else {
                    self.intern_abs(&new_var, new_body)
                }
            }
        };
        self.inst_cache.insert((sid, t.id), result);
        result
    }

    // -- Beta reduction -----------------------------------------------------

    /// One step of root beta reduction; `None` if `t` is not a redex.
    fn beta_reduce(&mut self, t: TermRef) -> Option<TermRef> {
        if let Some(&r) = self.beta_cache.get(&t.id) {
            return Some(r);
        }
        let (f, a) = match self.node(t).node {
            Node::Comb(f, a) => (f, a),
            _ => return None,
        };
        let (v, body) = match self.node(f).node.clone() {
            Node::Abs(v, body) => (v, body),
            _ => return None,
        };
        let result = if self.intern_var(&v) == a {
            body // (\x. b) x  ~>  b
        } else {
            let sid = self.subst_id(vec![(v, a)]);
            self.vsubst_rec(sid, body)
        };
        self.beta_cache.insert(t.id, result);
        Some(result)
    }

    /// Memoised full beta normalisation (normal order).
    fn beta_nf(&mut self, t: TermRef) -> TermRef {
        if let Some(&r) = self.beta_nf_cache.get(&t.id) {
            return r;
        }
        let result = match self.node(t).node.clone() {
            Node::Var(_) | Node::Const(_) => t,
            Node::Abs(v, body) => {
                let nb = self.beta_nf(body);
                if nb == body {
                    t
                } else {
                    self.intern_abs(&v, nb)
                }
            }
            Node::Comb(f, x) => {
                let fnf = self.beta_nf(f);
                let xnf = self.beta_nf(x);
                if matches!(self.node(fnf).node, Node::Abs(..)) {
                    let app = self
                        .intern_comb(fnf, xnf)
                        .unwrap_or_else(|_| unreachable!("normalisation preserves typing"));
                    let reduced = self.beta_reduce(app).expect("redex by construction");
                    self.beta_nf(reduced)
                } else if fnf == f && xnf == x {
                    t
                } else {
                    self.intern_comb(fnf, xnf)
                        .unwrap_or_else(|_| unreachable!("normalisation preserves typing"))
                }
            }
        };
        self.beta_nf_cache.insert(t.id, result);
        result
    }
}

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

/// Builds a variable term.
pub fn mk_var(name: impl Into<String>, ty: Type) -> TermRef {
    let v = Var::new(name, ty);
    with_arena(|a| a.intern_var(&v))
}

/// Builds a constant term with the given occurrence type.
pub fn mk_const(name: impl Into<String>, ty: Type) -> TermRef {
    let c = ConstRef {
        name: name.into(),
        ty,
    };
    with_arena(|a| a.intern_const(&c))
}

/// Builds a type-checked application `f x`.
///
/// # Errors
///
/// Fails if `f` does not have a function type or its domain does not equal
/// the type of `x`.
pub fn mk_comb(f: &TermRef, x: &TermRef) -> Result<TermRef> {
    match with_arena(|a| a.intern_comb(*f, *x)) {
        Ok(t) => Ok(t),
        Err(CombError::NotAFunction(fty)) => Err(LogicError::type_mismatch(
            format!("mk_comb of {f}"),
            "a function type",
            fty.to_string(),
        )),
        Err(CombError::DomainMismatch(dom, xty)) => Err(LogicError::type_mismatch(
            format!("mk_comb applying {f} to {x}"),
            dom.to_string(),
            xty.to_string(),
        )),
    }
}

/// Builds an iterated application `f x1 x2 ... xn`.
pub fn list_mk_comb(f: &TermRef, args: &[TermRef]) -> Result<TermRef> {
    let mut acc = *f;
    for a in args {
        acc = mk_comb(&acc, a)?;
    }
    Ok(acc)
}

/// Builds an abstraction `\v. body`.
pub fn mk_abs(v: &Var, body: &TermRef) -> TermRef {
    with_arena(|a| a.intern_abs(v, *body))
}

/// Builds an iterated abstraction `\v1 v2 ... vn. body`.
pub fn list_mk_abs(vars: &[Var], body: &TermRef) -> TermRef {
    let mut acc = *body;
    for v in vars.iter().rev() {
        acc = mk_abs(v, &acc);
    }
    acc
}

/// The polymorphic equality constant at element type `ty`.
pub fn eq_const(ty: &Type) -> TermRef {
    mk_const(
        "=",
        Type::fun(ty.clone(), Type::fun(ty.clone(), Type::bool())),
    )
}

/// Builds the equation `lhs = rhs`.
///
/// # Errors
///
/// Fails if the two sides have different types.
pub fn mk_eq(lhs: &TermRef, rhs: &TermRef) -> Result<TermRef> {
    let lty = lhs.ty();
    let rty = rhs.ty();
    if lty != rty {
        return Err(LogicError::type_mismatch(
            format!("mk_eq of {lhs} and {rhs}"),
            lty.to_string(),
            rty.to_string(),
        ));
    }
    let eq = eq_const(&lty);
    mk_comb(&mk_comb(&eq, lhs)?, rhs)
}

// ---------------------------------------------------------------------------
// Destructors and syntactic predicates
// ---------------------------------------------------------------------------

impl TermRef {
    /// A one-level view of the term, for pattern matching.
    pub fn view(&self) -> Term {
        with_arena(|a| match &a.node(*self).node {
            Node::Var(v) => Term::Var((**v).clone()),
            Node::Const(c) => Term::Const((**c).clone()),
            Node::Comb(f, x) => Term::Comb(*f, *x),
            Node::Abs(v, body) => Term::Abs((**v).clone(), *body),
        })
    }

    /// The type of the term — cached at interning time, so this never
    /// recurses into the term.
    pub fn ty(&self) -> Type {
        with_arena(|a| a.node(*self).ty.clone())
    }

    /// Destructs an application into `(operator, operand)`.
    ///
    /// # Errors
    ///
    /// Fails if the term is not an application.
    pub fn dest_comb(&self) -> Result<(TermRef, TermRef)> {
        match self.view() {
            Term::Comb(f, x) => Ok((f, x)),
            _ => Err(LogicError::ill_formed(
                "dest_comb",
                format!("not an application: {self}"),
            )),
        }
    }

    /// Destructs an abstraction into `(bound variable, body)`.
    ///
    /// # Errors
    ///
    /// Fails if the term is not an abstraction.
    pub fn dest_abs(&self) -> Result<(Var, TermRef)> {
        match self.view() {
            Term::Abs(v, body) => Ok((v, body)),
            _ => Err(LogicError::ill_formed(
                "dest_abs",
                format!("not an abstraction: {self}"),
            )),
        }
    }

    /// Destructs a variable.
    ///
    /// # Errors
    ///
    /// Fails if the term is not a variable.
    pub fn dest_var(&self) -> Result<Var> {
        match self.view() {
            Term::Var(v) => Ok(v),
            _ => Err(LogicError::ill_formed(
                "dest_var",
                format!("not a variable: {self}"),
            )),
        }
    }

    /// Destructs a constant occurrence.
    ///
    /// # Errors
    ///
    /// Fails if the term is not a constant.
    pub fn dest_const(&self) -> Result<ConstRef> {
        match self.view() {
            Term::Const(c) => Ok(c),
            _ => Err(LogicError::ill_formed(
                "dest_const",
                format!("not a constant: {self}"),
            )),
        }
    }

    /// Destructs an equation `l = r` into `(l, r)`.
    ///
    /// # Errors
    ///
    /// Fails if the term is not an equation.
    pub fn dest_eq(&self) -> Result<(TermRef, TermRef)> {
        if let Term::Comb(fl, r) = self.view() {
            if let Term::Comb(eq, l) = fl.view() {
                if let Term::Const(c) = eq.view() {
                    if c.name == "=" {
                        return Ok((l, r));
                    }
                }
            }
        }
        Err(LogicError::ill_formed(
            "dest_eq",
            format!("not an equation: {self}"),
        ))
    }

    /// Whether the term is an equation.
    pub fn is_eq(&self) -> bool {
        self.dest_eq().is_ok()
    }

    /// Whether the term is a (possibly applied) occurrence of the named
    /// constant, i.e. the head of the application spine is that constant.
    pub fn head_is_const(&self, name: &str) -> bool {
        match self.strip_comb().0.view() {
            Term::Const(c) => c.name == name,
            _ => false,
        }
    }

    /// Splits an application spine `f x1 ... xn` into `(f, [x1, ..., xn])`.
    pub fn strip_comb(&self) -> (TermRef, Vec<TermRef>) {
        let mut args = Vec::new();
        let mut cur = *self;
        loop {
            match cur.view() {
                Term::Comb(f, x) => {
                    args.push(x);
                    cur = f;
                }
                _ => {
                    args.reverse();
                    return (cur, args);
                }
            }
        }
    }

    /// Collects the free variables of the term in first-occurrence order.
    /// The underlying set is memoised per node, so repeated queries are
    /// cheap.
    pub fn free_vars(&self) -> Vec<Var> {
        with_arena(|a| (*a.fvs(*self)).clone())
    }

    /// Whether the given variable occurs free in the term.
    pub fn occurs_free(&self, v: &Var) -> bool {
        with_arena(|a| a.occurs_free(*self, v))
    }

    /// Collects the names of all constants occurring in the term.
    pub fn constants(&self) -> Vec<String> {
        fn go(t: TermRef, acc: &mut Vec<String>) {
            match t.view() {
                Term::Var(_) => {}
                Term::Const(c) => {
                    if !acc.iter().any(|n| n == &c.name) {
                        acc.push(c.name);
                    }
                }
                Term::Comb(f, x) => {
                    go(f, acc);
                    go(x, acc);
                }
                Term::Abs(_, body) => go(body, acc),
            }
        }
        let mut acc = Vec::new();
        go(*self, &mut acc);
        acc
    }

    /// All type variables occurring in the term.
    pub fn type_vars(&self) -> Vec<String> {
        fn push_all(ty: &Type, acc: &mut Vec<String>) {
            for v in ty.type_vars() {
                if !acc.contains(&v) {
                    acc.push(v);
                }
            }
        }
        fn go(t: TermRef, acc: &mut Vec<String>) {
            match t.view() {
                Term::Var(v) => push_all(&v.ty, acc),
                Term::Const(c) => push_all(&c.ty, acc),
                Term::Comb(f, x) => {
                    go(f, acc);
                    go(x, acc);
                }
                Term::Abs(v, body) => {
                    push_all(&v.ty, acc);
                    go(body, acc);
                }
            }
        }
        let mut acc = Vec::new();
        go(*self, &mut acc);
        acc
    }

    /// The number of constructors in the term (a rough size measure used by
    /// the experiments) — cached at interning time.
    pub fn size(&self) -> usize {
        with_arena(|a| a.node(*self).size.min(usize::MAX as u64) as usize)
    }

    /// Alpha-equivalence of terms. Identical handles compare in O(1);
    /// distinct handles are compared structurally with memoisation on node
    /// ids.
    pub fn aconv(&self, other: &TermRef) -> bool {
        with_arena(|a| a.aconv(*self, *other))
    }
}

// ---------------------------------------------------------------------------
// Substitution
// ---------------------------------------------------------------------------

/// Returns a variant of `v` whose name does not clash with any variable in
/// `avoid`.
pub fn variant(avoid: &[Var], v: &Var) -> Var {
    let mut name = v.name.clone();
    while avoid.iter().any(|w| w.name == name) {
        name.push('\'');
    }
    Var::new(name, v.ty.clone())
}

/// Capture-avoiding parallel substitution of terms for free variables.
///
/// Pairs whose variable does not occur free are simply ignored. Bound
/// variables are renamed when a replacement term would otherwise capture
/// them. Results are memoised on (substitution id, term id), so repeated
/// substitution over shared structure is paid once.
///
/// # Panics
///
/// Panics if a replacement term's type differs from its variable's type
/// *and* that variable occurs free in `t` (the kernel rules check this
/// before calling; an ill-typed live substitution could otherwise produce
/// an ill-typed term). Dead bindings are ignored, ill-typed or not, as in
/// the pre-arena implementation.
pub fn vsubst(theta: &TermSubst, t: &TermRef) -> TermRef {
    with_arena(|a| match a.normalize_subst(theta, *t) {
        None => *t,
        Some(sid) => a.vsubst_rec(sid, *t),
    })
}

/// Applies a type substitution to every type annotation in the term,
/// renaming bound variables when the instantiation would cause capture.
/// Memoised on (type-substitution id, term id).
pub fn inst_type(theta: &TypeSubst, t: &TermRef) -> TermRef {
    with_arena(|a| match a.ty_subst_id(theta) {
        None => *t,
        Some(sid) => a.inst_type_rec(sid, *t),
    })
}

/// One step of beta reduction at the root: `(\x. b) a  ~>  b[a/x]`.
/// Memoised on the redex id.
///
/// # Errors
///
/// Fails if the term is not a beta redex.
pub fn beta_reduce(t: &TermRef) -> Result<TermRef> {
    with_arena(|a| a.beta_reduce(*t))
        .ok_or_else(|| LogicError::ill_formed("beta_reduce", format!("not a beta redex: {t}")))
}

/// Exhaustive beta normalisation (call-by-name, normal order). Terminates on
/// the simply-typed terms used throughout this crate. Memoised per node.
pub fn beta_normalize(t: &TermRef) -> TermRef {
    with_arena(|a| a.beta_nf(*t))
}

// ---------------------------------------------------------------------------
// First-order term matching (used by rewriting and theorem instantiation)
// ---------------------------------------------------------------------------

/// The result of matching a pattern against a term: instantiations for term
/// variables and type variables of the pattern.
#[derive(Clone, Debug, Default)]
pub struct Matching {
    /// Instantiations for the pattern's free term variables.
    pub term_subst: TermSubst,
    /// Instantiations for the pattern's type variables.
    pub type_subst: TypeSubst,
}

/// First-order matching of `pattern` against `term`.
///
/// Free variables of the pattern may be instantiated; bound variables must
/// correspond one-to-one. Type variables of the pattern are instantiated as
/// needed. This is sufficient for the rewriting performed by the synthesis
/// procedures (the higher-order instantiation of the retiming theorem is
/// constructed explicitly rather than found by matching).
///
/// # Errors
///
/// Fails with [`LogicError::MatchFailure`] if no instantiation exists within
/// the first-order fragment.
pub fn term_match(pattern: &TermRef, term: &TermRef) -> Result<Matching> {
    let mut m = Matching::default();
    let mut bound: Vec<(Var, Var)> = Vec::new();
    match_rec(pattern, term, &mut bound, &mut m)?;
    Ok(m)
}

fn match_rec(
    pattern: &TermRef,
    term: &TermRef,
    bound: &mut Vec<(Var, Var)>,
    m: &mut Matching,
) -> Result<()> {
    match (pattern.view(), term.view()) {
        (Term::Var(pv), _) => {
            // A pattern variable that is bound must map to the corresponding
            // bound variable of the term.
            if let Some((_, tv)) = bound.iter().rev().find(|(p, _)| *p == pv) {
                return match term.view() {
                    Term::Var(w) if w == *tv => Ok(()),
                    _ => Err(LogicError::match_failure(format!(
                        "bound variable {} does not correspond",
                        pv.name
                    ))),
                };
            }
            // The replacement must not mention the term-side bound variables.
            for (_, tv) in bound.iter() {
                if term.occurs_free(tv) {
                    return Err(LogicError::match_failure(format!(
                        "replacement for {} would capture bound variable {}",
                        pv.name, tv.name
                    )));
                }
            }
            pv.ty.match_against(&term.ty(), &mut m.type_subst)?;
            if let Some((_, existing)) = m.term_subst.iter().find(|(w, _)| *w == pv) {
                if existing.aconv(term) {
                    Ok(())
                } else {
                    Err(LogicError::match_failure(format!(
                        "variable {} matched against two different terms",
                        pv.name
                    )))
                }
            } else {
                m.term_subst.push((pv, *term));
                Ok(())
            }
        }
        (Term::Const(pc), Term::Const(tc)) => {
            if pc.name != tc.name {
                return Err(LogicError::match_failure(format!(
                    "constant mismatch: {} vs {}",
                    pc.name, tc.name
                )));
            }
            pc.ty.match_against(&tc.ty, &mut m.type_subst)
        }
        (Term::Comb(pf, px), Term::Comb(tf, tx)) => {
            match_rec(&pf, &tf, bound, m)?;
            match_rec(&px, &tx, bound, m)
        }
        (Term::Abs(pv, pb), Term::Abs(tv, tb)) => {
            pv.ty.match_against(&tv.ty, &mut m.type_subst)?;
            bound.push((pv, tv));
            let r = match_rec(&pb, &tb, bound, m);
            bound.pop();
            r
        }
        _ => Err(LogicError::match_failure(format!(
            "structural mismatch: {pattern} vs {term}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Display
// ---------------------------------------------------------------------------

fn fmt_term(a: &TermArena, t: TermRef, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match &a.node(t).node {
        Node::Var(v) => write!(f, "{}", v.name),
        Node::Const(c) => write!(f, "{}", c.name),
        Node::Comb(g, x) => {
            // Special-case infix equality for readability.
            if let Node::Comb(eq, l) = &a.node(*g).node {
                if let Node::Const(c) = &a.node(*eq).node {
                    if c.name == "=" {
                        if prec > 0 {
                            write!(f, "(")?;
                        }
                        fmt_term(a, *l, f, 1)?;
                        write!(f, " = ")?;
                        fmt_term(a, *x, f, 1)?;
                        if prec > 0 {
                            write!(f, ")")?;
                        }
                        return Ok(());
                    }
                }
            }
            if prec > 1 {
                write!(f, "(")?;
            }
            fmt_term(a, *g, f, 1)?;
            write!(f, " ")?;
            fmt_term(a, *x, f, 2)?;
            if prec > 1 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Node::Abs(v, body) => {
            if prec > 0 {
                write!(f, "(")?;
            }
            write!(f, "\\{}. ", v.name)?;
            fmt_term(a, *body, f, 0)?;
            if prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for TermRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        ARENA.with(|a| {
            let a = a.borrow();
            fmt_term(&a, *self, f, 0)
        })
    }
}

impl fmt::Debug for TermRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TermRef#{}({})", self.id, self)
    }
}

// ---------------------------------------------------------------------------
// Reference implementations (differential testing)
// ---------------------------------------------------------------------------

/// Slow, structurally recursive reference implementations of the core term
/// operations, retained verbatim from the pre-arena kernel. They exist so
/// the property suite (`tests/arena_properties.rs`) can check that the
/// memoised arena operations agree with the original recursive definitions
/// on every generated term. Not part of the public API surface.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// Recursive type computation (the pre-arena `Term::ty`).
    pub fn ty(t: &TermRef) -> Type {
        match t.view() {
            Term::Var(v) => v.ty,
            Term::Const(c) => c.ty,
            Term::Comb(f, _) => {
                let fty = ty(&f);
                let (_, cod) = fty.dest_fun().expect("well-typed by interning");
                cod.clone()
            }
            Term::Abs(v, body) => Type::fun(v.ty, ty(&body)),
        }
    }

    /// Recursive size computation.
    pub fn size(t: &TermRef) -> usize {
        match t.view() {
            Term::Var(_) | Term::Const(_) => 1,
            Term::Comb(f, x) => 1 + size(&f) + size(&x),
            Term::Abs(_, body) => 1 + size(&body),
        }
    }

    /// Recursive free-variable collection in first-occurrence order.
    pub fn free_vars(t: &TermRef) -> Vec<Var> {
        fn go(t: &TermRef, bound: &mut Vec<Var>, acc: &mut Vec<Var>) {
            match t.view() {
                Term::Var(v) => {
                    if !bound.contains(&v) && !acc.contains(&v) {
                        acc.push(v);
                    }
                }
                Term::Const(_) => {}
                Term::Comb(f, x) => {
                    go(&f, bound, acc);
                    go(&x, bound, acc);
                }
                Term::Abs(v, body) => {
                    bound.push(v);
                    go(&body, bound, acc);
                    bound.pop();
                }
            }
        }
        let mut acc = Vec::new();
        go(t, &mut Vec::new(), &mut acc);
        acc
    }

    /// Recursive, unmemoised alpha-equivalence.
    pub fn aconv(a: &TermRef, b: &TermRef) -> bool {
        fn go(a: &TermRef, b: &TermRef, env: &mut Vec<(Var, Var)>) -> bool {
            match (a.view(), b.view()) {
                (Term::Var(v), Term::Var(w)) => {
                    for (x, y) in env.iter().rev() {
                        if *x == v || *y == w {
                            return *x == v && *y == w;
                        }
                    }
                    v == w
                }
                (Term::Const(c), Term::Const(d)) => c == d,
                (Term::Comb(f1, x1), Term::Comb(f2, x2)) => go(&f1, &f2, env) && go(&x1, &x2, env),
                (Term::Abs(v, b1), Term::Abs(w, b2)) => {
                    if v.ty != w.ty {
                        return false;
                    }
                    env.push((v, w));
                    let r = go(&b1, &b2, env);
                    env.pop();
                    r
                }
                _ => false,
            }
        }
        go(a, b, &mut Vec::new())
    }

    /// Recursive, unmemoised capture-avoiding substitution (the pre-arena
    /// `vsubst`, rebuilt over the view API).
    pub fn vsubst(theta: &TermSubst, t: &TermRef) -> TermRef {
        if theta.is_empty() {
            return *t;
        }
        match t.view() {
            Term::Var(v) => theta
                .iter()
                .find(|(w, _)| *w == v)
                .map(|(_, s)| *s)
                .unwrap_or(*t),
            Term::Const(_) => *t,
            Term::Comb(f, x) => {
                let f2 = vsubst(theta, &f);
                let x2 = vsubst(theta, &x);
                if f2 == f && x2 == x {
                    *t
                } else {
                    mk_comb(&f2, &x2).expect("substitution preserves typing")
                }
            }
            Term::Abs(v, body) => {
                let filtered: TermSubst = theta.iter().filter(|(w, _)| *w != v).cloned().collect();
                if filtered.is_empty() {
                    return *t;
                }
                let relevant: TermSubst = filtered
                    .into_iter()
                    .filter(|(w, _)| body.occurs_free(w))
                    .collect();
                if relevant.is_empty() {
                    return *t;
                }
                let capture = relevant.iter().any(|(_, s)| s.occurs_free(&v));
                if capture {
                    let mut avoid: Vec<Var> = free_vars(&body);
                    for (_, s) in &relevant {
                        avoid.extend(free_vars(s));
                    }
                    let fresh = variant(&avoid, &v);
                    let renamed_body = vsubst(&vec![(v.clone(), fresh.term())], &body);
                    let new_body = vsubst(&relevant, &renamed_body);
                    mk_abs(&fresh, &new_body)
                } else {
                    let new_body = vsubst(&relevant, &body);
                    mk_abs(&v, &new_body)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b() -> Type {
        Type::bool()
    }

    #[test]
    fn mk_comb_type_checks() {
        let f = mk_var("f", Type::fun(b(), b()));
        let x = mk_var("x", b());
        let y = mk_var("y", Type::bv(4));
        assert!(mk_comb(&f, &x).is_ok());
        assert!(mk_comb(&f, &y).is_err());
        assert!(mk_comb(&x, &y).is_err());
    }

    #[test]
    fn eq_requires_same_types() {
        let x = mk_var("x", b());
        let y = mk_var("y", b());
        let z = mk_var("z", Type::bv(8));
        assert!(mk_eq(&x, &y).is_ok());
        let err = mk_eq(&x, &z).unwrap_err();
        assert!(matches!(err, LogicError::TypeMismatch { .. }));
    }

    #[test]
    fn dest_eq_roundtrip() {
        let x = mk_var("x", b());
        let y = mk_var("y", b());
        let e = mk_eq(&x, &y).unwrap();
        let (l, r) = e.dest_eq().unwrap();
        assert!(l.aconv(&x));
        assert!(r.aconv(&y));
        assert!(x.dest_eq().is_err());
    }

    #[test]
    fn structurally_equal_terms_share_an_id() {
        // The hash-consing invariant: building the same term twice, in any
        // order, yields the same arena id — so `==` is structural equality.
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let t1 = mk_abs(&x, &mk_eq(&x.term(), &y.term()).unwrap());
        let t2 = mk_abs(&x, &mk_eq(&x.term(), &y.term()).unwrap());
        assert_eq!(t1, t2);
        assert_eq!(t1.id(), t2.id());
        // A different term gets a different id.
        let t3 = mk_abs(&y, &mk_eq(&x.term(), &y.term()).unwrap());
        assert_ne!(t1, t3);
    }

    #[test]
    fn cached_type_matches_recursive_type() {
        let x = Var::new("x", b());
        let y = mk_var("y", Type::bv(4));
        let f = mk_var("f", Type::fun(Type::bv(4), b()));
        let t = mk_abs(&x, &mk_eq(&mk_comb(&f, &y).unwrap(), &x.term()).unwrap());
        assert_eq!(t.ty(), reference::ty(&t));
        assert_eq!(t.size(), reference::size(&t));
    }

    #[test]
    fn free_vars_and_occurs() {
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let body = mk_eq(&x.term(), &y.term()).unwrap();
        let lam = mk_abs(&x, &body);
        assert!(body.occurs_free(&x));
        assert!(!lam.occurs_free(&x));
        assert!(lam.occurs_free(&y));
        assert_eq!(lam.free_vars(), vec![y]);
    }

    #[test]
    fn aconv_alpha_equivalence() {
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let id_x = mk_abs(&x, &x.term());
        let id_y = mk_abs(&y, &y.term());
        assert!(id_x.aconv(&id_y));
        assert_ne!(id_x, id_y); // syntactically different -> different ids
        let konst = mk_abs(&x, &y.term());
        assert!(!id_x.aconv(&konst));
    }

    #[test]
    fn aconv_distinguishes_capture() {
        // \x. \y. x  vs  \y. \y. y  must not be alpha equivalent.
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let t1 = mk_abs(&x, &mk_abs(&y, &x.term()));
        let t2 = mk_abs(&y, &mk_abs(&y, &y.term()));
        assert!(!t1.aconv(&t2));
    }

    #[test]
    fn aconv_shared_subterm_under_binder() {
        // \x. c = \y. c with a shared closed body: the id fast path under a
        // binder environment must still be correct.
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let c = mk_const("c", b());
        assert!(mk_abs(&x, &c).aconv(&mk_abs(&y, &c)));
        // \x. x vs \y. x: identical body ids but NOT alpha-equivalent.
        let t1 = mk_abs(&x, &x.term());
        let t2 = mk_abs(&y, &x.term());
        assert!(!t1.aconv(&t2));
    }

    #[test]
    fn substitution_is_capture_avoiding() {
        // (\y. x) [x := y]  must become  \y'. y  (not \y. y).
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let t = mk_abs(&y, &x.term());
        let s = vsubst(&vec![(x.clone(), y.term())], &t);
        let (bv, body) = s.dest_abs().unwrap();
        assert_ne!(bv.name, "y");
        assert!(body.aconv(&y.term()));
    }

    #[test]
    fn substitution_ignores_bound_occurrences() {
        let x = Var::new("x", b());
        let t = mk_abs(&x, &x.term());
        let s = vsubst(&vec![(x.clone(), mk_var("z", b()))], &t);
        assert!(s.aconv(&t));
    }

    #[test]
    fn substitution_is_memoised_and_agrees_with_reference() {
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let base = mk_eq(&x.term(), &y.term()).unwrap();
        let t = mk_abs(&y, &mk_eq(&base, &base).unwrap());
        let theta = vec![(x.clone(), y.term())];
        let fast = vsubst(&theta, &t);
        let slow = reference::vsubst(&theta, &t);
        assert_eq!(fast, slow);
        // A second run hits the (subst, term) cache and returns the same id.
        assert_eq!(vsubst(&theta, &t), fast);
    }

    #[test]
    fn first_binding_wins_even_when_it_is_an_identity() {
        // [x := x, x := y] must behave like the first binding alone: the
        // later duplicate is shadowed, not applied.
        let x = Var::new("x", b());
        let y = mk_var("y", b());
        let theta = vec![(x.clone(), x.term()), (x.clone(), y)];
        assert_eq!(vsubst(&theta, &x.term()), x.term());
        assert_eq!(
            vsubst(&theta, &x.term()),
            reference::vsubst(&theta, &x.term())
        );
    }

    #[test]
    fn dead_ill_typed_bindings_are_ignored() {
        // A binding for a variable that does not occur free is dropped
        // before the type check, like the recursive implementation did.
        let x = Var::new("x", b());
        let t = mk_var("q", b());
        let theta = vec![(x, mk_var("n", Type::bv(8)))];
        assert_eq!(vsubst(&theta, &t), t);
    }

    #[test]
    fn beta_reduction_basics() {
        let x = Var::new("x", b());
        let y = mk_var("y", b());
        let id = mk_abs(&x, &x.term());
        let app = mk_comb(&id, &y).unwrap();
        let red = beta_reduce(&app).unwrap();
        assert!(red.aconv(&y));
        assert!(beta_reduce(&y).is_err());
    }

    #[test]
    fn beta_normalization_nested() {
        // (\f. f y) (\x. x)  ~>  y
        let x = Var::new("x", b());
        let fvar = Var::new("f", Type::fun(b(), b()));
        let y = mk_var("y", b());
        let id = mk_abs(&x, &x.term());
        let body = mk_comb(&fvar.term(), &y).unwrap();
        let outer = mk_comb(&mk_abs(&fvar, &body), &id).unwrap();
        let nf = beta_normalize(&outer);
        assert!(nf.aconv(&y));
    }

    #[test]
    fn inst_type_changes_annotation() {
        let a = Type::var("a");
        let x = mk_var("x", a.clone());
        let mut theta = TypeSubst::new();
        theta.insert("a".into(), Type::bv(8));
        let inst = inst_type(&theta, &x);
        assert_eq!(inst.ty(), Type::bv(8));
    }

    #[test]
    fn inst_type_ground_terms_are_untouched() {
        let t = mk_eq(&mk_var("p", b()), &mk_var("q", b())).unwrap();
        let mut theta = TypeSubst::new();
        theta.insert("a".into(), Type::bv(8));
        // Fast path: no type variables below the node -> identical handle.
        assert_eq!(inst_type(&theta, &t), t);
    }

    #[test]
    fn matching_simple_rewrite_pattern() {
        // pattern: fst (pair a b) ... here modelled by generic f a b against concrete.
        let a = Var::new("a", Type::var("A"));
        let b_v = Var::new("b", Type::var("B"));
        let f = mk_const(
            "pair",
            Type::fun(
                Type::var("A"),
                Type::fun(Type::var("B"), Type::prod(Type::var("A"), Type::var("B"))),
            ),
        );
        let pat = list_mk_comb(&f, &[a.term(), b_v.term()]).unwrap();

        let cf = mk_const(
            "pair",
            Type::fun(
                Type::bool(),
                Type::fun(Type::bv(4), Type::prod(Type::bool(), Type::bv(4))),
            ),
        );
        let concrete =
            list_mk_comb(&cf, &[mk_var("p", Type::bool()), mk_var("q", Type::bv(4))]).unwrap();

        let m = term_match(&pat, &concrete).unwrap();
        assert_eq!(m.type_subst.get("A"), Some(&Type::bool()));
        assert_eq!(m.type_subst.get("B"), Some(&Type::bv(4)));
        assert_eq!(m.term_subst.len(), 2);
    }

    #[test]
    fn matching_rejects_inconsistent_binding() {
        let x = Var::new("x", b());
        let pat = mk_eq(&x.term(), &x.term()).unwrap();
        let concrete = mk_eq(&mk_var("p", b()), &mk_var("q", b())).unwrap();
        assert!(term_match(&pat, &concrete).is_err());
        let ok = mk_eq(&mk_var("p", b()), &mk_var("p", b())).unwrap();
        assert!(term_match(&pat, &ok).is_ok());
    }

    #[test]
    fn matching_under_binders() {
        // pattern \x. c x  against  \y. c y
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let c = mk_const("c", Type::fun(b(), b()));
        let pat = mk_abs(&x, &mk_comb(&c, &x.term()).unwrap());
        let tgt = mk_abs(&y, &mk_comb(&c, &y.term()).unwrap());
        assert!(term_match(&pat, &tgt).is_ok());
    }

    #[test]
    fn matching_refuses_escaping_bound_var() {
        // pattern \x. v  (v free) against \y. y would require v := y (bound) -> reject.
        let x = Var::new("x", b());
        let v = Var::new("v", b());
        let y = Var::new("y", b());
        let pat = mk_abs(&x, &v.term());
        let tgt = mk_abs(&y, &y.term());
        assert!(term_match(&pat, &tgt).is_err());
    }

    #[test]
    fn strip_comb_spine() {
        let f = mk_var("f", Type::fun(b(), Type::fun(b(), b())));
        let x = mk_var("x", b());
        let y = mk_var("y", b());
        let t = list_mk_comb(&f, &[x, y]).unwrap();
        let (head, args) = t.strip_comb();
        assert!(head.aconv(&f));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn size_and_constants() {
        let c = mk_const("T", b());
        let e = mk_eq(&c, &c).unwrap();
        assert_eq!(e.constants(), vec!["=".to_string(), "T".to_string()]);
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn display_is_readable() {
        let x = Var::new("x", b());
        let t = mk_abs(&x, &mk_eq(&x.term(), &mk_const("T", b())).unwrap());
        assert_eq!(t.to_string(), "\\x. x = T");
    }

    #[test]
    fn equality_on_large_terms_is_an_id_compare() {
        // Build the same deep application chain twice: interning makes the
        // two handles identical, so equality never walks the tree.
        let f = mk_var("f", Type::fun(b(), b()));
        let mut t1 = mk_var("x", b());
        let mut t2 = mk_var("x", b());
        for _ in 0..500 {
            t1 = mk_comb(&f, &t1).unwrap();
            t2 = mk_comb(&f, &t2).unwrap();
        }
        assert_eq!(t1, t2);
        assert_eq!(t1.id(), t2.id());
        assert!(t1.aconv(&t2));
        assert_eq!(t1.size(), 1001);
    }
}
