//! The boolean theory: logical connectives and the derived inference rules
//! built on top of the primitive kernel.
//!
//! Everything here is *derived*: the connectives are introduced by
//! definition (a conservative extension) and the rules (`CONJ`, `MP`,
//! `DISCH`, `GEN`, `SPEC`, ...) are programmed proofs that only call the
//! primitive rules of [`crate::thm`]. This mirrors the structure of the HOL
//! system used in the paper and keeps the trusted core small.

use crate::conv::{apply_def, beta_spine_thm};
use crate::error::{LogicError, Result};
use crate::term::{list_mk_comb, mk_abs, mk_comb, mk_const, variant, Term, TermRef, Var};
use crate::theory::Theory;
use crate::thm::Theorem;
use crate::types::{Type, TypeSubst};

/// The boolean theory: definitional theorems for the connectives plus the
/// derived rules.
#[derive(Clone, Debug)]
pub struct BoolTheory {
    /// `⊢ T = ((\p. p) = (\p. p))`
    pub truth_def: Theorem,
    /// `⊢ (/\) = \p q. (\f. f p q) = (\f. f T T)`
    pub and_def: Theorem,
    /// `⊢ (==>) = \p q. (p /\ q) = p`
    pub imp_def: Theorem,
    /// `⊢ (!) = \P. P = (\x. T)`
    pub forall_def: Theorem,
    /// `⊢ (?) = \P. !q. (!x. P x ==> q) ==> q`
    pub exists_def: Theorem,
    /// `⊢ (\/) = \p q. !r. (p ==> r) ==> (q ==> r) ==> r`
    pub or_def: Theorem,
    /// `⊢ F = !p. p`
    pub false_def: Theorem,
    /// `⊢ (~) = \p. p ==> F`
    pub not_def: Theorem,
    /// `⊢ T`
    pub truth_thm: Theorem,
}

/// The boolean constant `T`.
pub fn t_const() -> TermRef {
    mk_const("T", Type::bool())
}

/// The boolean constant `F`.
pub fn f_const() -> TermRef {
    mk_const("F", Type::bool())
}

fn bin_bool_ty() -> Type {
    Type::fun(Type::bool(), Type::fun(Type::bool(), Type::bool()))
}

/// Builds the conjunction `p /\ q`.
///
/// # Errors
///
/// Fails if either argument is not boolean.
pub fn mk_conj(p: &TermRef, q: &TermRef) -> Result<TermRef> {
    list_mk_comb(&mk_const("/\\", bin_bool_ty()), &[*p, *q])
}

/// Builds the implication `p ==> q`.
///
/// # Errors
///
/// Fails if either argument is not boolean.
pub fn mk_imp(p: &TermRef, q: &TermRef) -> Result<TermRef> {
    list_mk_comb(&mk_const("==>", bin_bool_ty()), &[*p, *q])
}

/// Builds the disjunction `p \/ q`.
///
/// # Errors
///
/// Fails if either argument is not boolean.
pub fn mk_disj(p: &TermRef, q: &TermRef) -> Result<TermRef> {
    list_mk_comb(&mk_const("\\/", bin_bool_ty()), &[*p, *q])
}

/// Builds the negation `~p`.
///
/// # Errors
///
/// Fails if the argument is not boolean.
pub fn mk_neg(p: &TermRef) -> Result<TermRef> {
    mk_comb(&mk_const("~", Type::fun(Type::bool(), Type::bool())), p)
}

/// Builds the universal quantification `!v. body`.
///
/// # Errors
///
/// Fails if the body is not boolean.
pub fn mk_forall(v: &Var, body: &TermRef) -> Result<TermRef> {
    if !body.ty().is_bool() {
        return Err(LogicError::ill_formed(
            "mk_forall",
            format!("body is not boolean: {body}"),
        ));
    }
    let q = mk_const(
        "!",
        Type::fun(Type::fun(v.ty.clone(), Type::bool()), Type::bool()),
    );
    mk_comb(&q, &mk_abs(v, body))
}

/// Builds the existential quantification `?v. body`.
///
/// # Errors
///
/// Fails if the body is not boolean.
pub fn mk_exists(v: &Var, body: &TermRef) -> Result<TermRef> {
    if !body.ty().is_bool() {
        return Err(LogicError::ill_formed(
            "mk_exists",
            format!("body is not boolean: {body}"),
        ));
    }
    let q = mk_const(
        "?",
        Type::fun(Type::fun(v.ty.clone(), Type::bool()), Type::bool()),
    );
    mk_comb(&q, &mk_abs(v, body))
}

/// Iterated universal quantification.
///
/// # Errors
///
/// Fails if the body is not boolean.
pub fn list_mk_forall(vars: &[Var], body: &TermRef) -> Result<TermRef> {
    let mut acc = *body;
    for v in vars.iter().rev() {
        acc = mk_forall(v, &acc)?;
    }
    Ok(acc)
}

/// Iterated conjunction (right associated). The empty list is not allowed.
///
/// # Errors
///
/// Fails on an empty list.
pub fn list_mk_conj(ps: &[TermRef]) -> Result<TermRef> {
    let (last, init) = ps
        .split_last()
        .ok_or_else(|| LogicError::ill_formed("list_mk_conj", "empty conjunction".to_string()))?;
    let mut acc = *last;
    for p in init.iter().rev() {
        acc = mk_conj(p, &acc)?;
    }
    Ok(acc)
}

fn dest_binop(name: &str, t: &TermRef) -> Option<(TermRef, TermRef)> {
    if let Term::Comb(fl, r) = t.view() {
        if let Term::Comb(op, l) = fl.view() {
            if let Term::Const(c) = op.view() {
                if c.name == name {
                    return Some((l, r));
                }
            }
        }
    }
    None
}

/// Destructs a conjunction.
///
/// # Errors
///
/// Fails if the term is not a conjunction.
pub fn dest_conj(t: &TermRef) -> Result<(TermRef, TermRef)> {
    dest_binop("/\\", t)
        .ok_or_else(|| LogicError::ill_formed("dest_conj", format!("not a conjunction: {t}")))
}

/// Destructs an implication.
///
/// # Errors
///
/// Fails if the term is not an implication.
pub fn dest_imp(t: &TermRef) -> Result<(TermRef, TermRef)> {
    dest_binop("==>", t)
        .ok_or_else(|| LogicError::ill_formed("dest_imp", format!("not an implication: {t}")))
}

/// Destructs a universal quantification into `(bound variable, body)`.
///
/// # Errors
///
/// Fails if the term is not a universal quantification.
pub fn dest_forall(t: &TermRef) -> Result<(Var, TermRef)> {
    if let Term::Comb(q, abs) = t.view() {
        if let Term::Const(c) = q.view() {
            if c.name == "!" {
                if let Term::Abs(v, body) = abs.view() {
                    return Ok((v, body));
                }
            }
        }
    }
    Err(LogicError::ill_formed(
        "dest_forall",
        format!("not a universal quantification: {t}"),
    ))
}

impl BoolTheory {
    /// Installs the boolean theory into the given [`Theory`] and returns the
    /// definitional theorems together with the derived rule implementations.
    ///
    /// # Errors
    ///
    /// Fails if the relevant constants are already defined differently.
    pub fn install(theory: &mut Theory) -> Result<BoolTheory> {
        let bool_ty = Type::bool();
        let p = Var::new("p", bool_ty.clone());
        let q = Var::new("q", bool_ty.clone());
        let r = Var::new("r", bool_ty.clone());

        // T = ((\p. p) = (\p. p))
        let idfn = mk_abs(&p, &p.term());
        let truth_def = theory.new_definition("T_DEF", "T", &crate::term::mk_eq(&idfn, &idfn)?)?;

        // (/\) = \p q. (\f. f p q) = (\f. f T T)
        let f = Var::new("f", bin_bool_ty());
        let fpq = list_mk_comb(&f.term(), &[p.term(), q.term()])?;
        let ftt = list_mk_comb(&f.term(), &[t_const(), t_const()])?;
        let and_body = mk_abs(
            &p,
            &mk_abs(
                &q,
                &crate::term::mk_eq(&mk_abs(&f, &fpq), &mk_abs(&f, &ftt))?,
            ),
        );
        let and_def = theory.new_definition("AND_DEF", "/\\", &and_body)?;

        // (==>) = \p q. (p /\ q) = p
        let imp_body = mk_abs(
            &p,
            &mk_abs(
                &q,
                &crate::term::mk_eq(&mk_conj(&p.term(), &q.term())?, &p.term())?,
            ),
        );
        let imp_def = theory.new_definition("IMP_DEF", "==>", &imp_body)?;

        // (!) = \P. P = (\x. T)
        let elem = Type::var("a");
        let big_p = Var::new("P", Type::fun(elem.clone(), Type::bool()));
        let x = Var::new("x", elem.clone());
        let forall_body = mk_abs(
            &big_p,
            &crate::term::mk_eq(&big_p.term(), &mk_abs(&x, &t_const()))?,
        );
        let forall_def = theory.new_definition("FORALL_DEF", "!", &forall_body)?;

        // (?) = \P. !q. (!x. P x ==> q) ==> q
        let px = mk_comb(&big_p.term(), &x.term())?;
        let inner = mk_forall(&x, &mk_imp(&px, &q.term())?)?;
        let exists_body = mk_abs(&big_p, &mk_forall(&q, &mk_imp(&inner, &q.term())?)?);
        let exists_def = theory.new_definition("EXISTS_DEF", "?", &exists_body)?;

        // (\/) = \p q. !r. (p ==> r) ==> (q ==> r) ==> r
        let or_body = mk_abs(
            &p,
            &mk_abs(
                &q,
                &mk_forall(
                    &r,
                    &mk_imp(
                        &mk_imp(&p.term(), &r.term())?,
                        &mk_imp(&mk_imp(&q.term(), &r.term())?, &r.term())?,
                    )?,
                )?,
            ),
        );
        let or_def = theory.new_definition("OR_DEF", "\\/", &or_body)?;

        // F = !p. p
        let false_body = mk_forall(&p, &p.term())?;
        let false_def = theory.new_definition("F_DEF", "F", &false_body)?;

        // (~) = \p. p ==> F
        let not_body = mk_abs(&p, &mk_imp(&p.term(), &f_const())?);
        let not_def = theory.new_definition("NOT_DEF", "~", &not_body)?;

        // ⊢ T
        let truth_thm = Theorem::eq_mp(&truth_def.sym()?, &Theorem::refl(&idfn)?)?;

        Ok(BoolTheory {
            truth_def,
            and_def,
            imp_def,
            forall_def,
            exists_def,
            or_def,
            false_def,
            not_def,
            truth_thm,
        })
    }

    /// `⊢ T`.
    pub fn truth(&self) -> Theorem {
        self.truth_thm.clone()
    }

    /// `EQT_INTRO`: from `Γ ⊢ p`, derive `Γ ⊢ p = T`.
    pub fn eqt_intro(&self, th: &Theorem) -> Result<Theorem> {
        Theorem::deduct_antisym(th, &self.truth_thm)
    }

    /// `EQT_ELIM`: from `Γ ⊢ p = T`, derive `Γ ⊢ p`.
    pub fn eqt_elim(&self, th: &Theorem) -> Result<Theorem> {
        Theorem::eq_mp(&th.sym()?, &self.truth_thm)
    }

    /// `CONJ`: from `Γ ⊢ p` and `Δ ⊢ q`, derive `Γ ∪ Δ ⊢ p /\ q`.
    pub fn conj(&self, th1: &Theorem, th2: &Theorem) -> Result<Theorem> {
        let p = *th1.concl();
        let q = *th2.concl();
        let mut avoid = p.free_vars();
        avoid.extend(q.free_vars());
        for h in th1.hyps().iter().chain(th2.hyps().iter()) {
            avoid.extend(h.free_vars());
        }
        let f = variant(&avoid, &Var::new("f", bin_bool_ty()));
        let eqt1 = self.eqt_intro(th1)?;
        let eqt2 = self.eqt_intro(th2)?;
        let refl_f = Theorem::refl(&f.term())?;
        let th_fpq = Theorem::mk_comb(&Theorem::mk_comb(&refl_f, &eqt1)?, &eqt2)?;
        let th_abs = Theorem::abs(&f, &th_fpq)?;
        let def_applied = apply_def(&self.and_def, &[p, q])?;
        Theorem::eq_mp(&def_applied.sym()?, &th_abs)
    }

    /// Iterated [`BoolTheory::conj`] over a non-empty list (right associated).
    pub fn conj_list(&self, thms: &[Theorem]) -> Result<Theorem> {
        let (last, init) = thms.split_last().ok_or_else(|| {
            LogicError::ill_formed("conj_list", "empty list of theorems".to_string())
        })?;
        let mut acc = last.clone();
        for th in init.iter().rev() {
            acc = self.conj(th, &acc)?;
        }
        Ok(acc)
    }

    /// Shared part of `CONJUNCT1`/`CONJUNCT2`: reduces `(\f. f p q) sel`
    /// where `sel` selects one of its two arguments, without disturbing
    /// redexes inside `p` or `q`.
    fn select_reduce(outer: &TermRef) -> Result<Theorem> {
        let step1 = Theorem::beta(outer)?;
        let (_, spq) = step1.dest_eq()?;
        let (sp, qq) = spq.dest_comb()?;
        let bth = Theorem::beta(&sp)?;
        let lifted = Theorem::ap_thm(&bth, &qq)?;
        let (_, rb) = lifted.dest_eq()?;
        let step3 = Theorem::beta(&rb)?;
        Theorem::trans_chain(&[step1, lifted, step3])
    }

    fn conjunct(&self, th: &Theorem, first: bool) -> Result<Theorem> {
        let (p, q) = dest_conj(th.concl())?;
        let def_applied = apply_def(&self.and_def, &[p, q])?;
        let th1 = Theorem::eq_mp(&def_applied, th)?;
        let a = Var::new("a", Type::bool());
        let b = Var::new("b", Type::bool());
        let sel = if first {
            mk_abs(&a, &mk_abs(&b, &a.term()))
        } else {
            mk_abs(&a, &mk_abs(&b, &b.term()))
        };
        let th2 = Theorem::ap_thm(&th1, &sel)?;
        let (lhs_t, rhs_t) = th2.dest_eq()?;
        let th_l = Self::select_reduce(&lhs_t)?;
        let th_r = Self::select_reduce(&rhs_t)?;
        let combined = Theorem::trans_chain(&[th_l.sym()?, th2, th_r])?;
        self.eqt_elim(&combined)
    }

    /// `CONJUNCT1`: from `Γ ⊢ p /\ q`, derive `Γ ⊢ p`.
    pub fn conjunct1(&self, th: &Theorem) -> Result<Theorem> {
        self.conjunct(th, true)
    }

    /// `CONJUNCT2`: from `Γ ⊢ p /\ q`, derive `Γ ⊢ q`.
    pub fn conjunct2(&self, th: &Theorem) -> Result<Theorem> {
        self.conjunct(th, false)
    }

    /// `MP` (modus ponens): from `Γ ⊢ p ==> q` and `Δ ⊢ p`, derive
    /// `Γ ∪ Δ ⊢ q`.
    pub fn mp(&self, th_imp: &Theorem, th_p: &Theorem) -> Result<Theorem> {
        let (p, q) = dest_imp(th_imp.concl())?;
        if !p.aconv(th_p.concl()) {
            return Err(LogicError::side_condition(
                "MP",
                format!("antecedent {p} does not match {}", th_p.concl()),
            ));
        }
        let def_applied = apply_def(&self.imp_def, &[p, q])?;
        let th1 = Theorem::eq_mp(&def_applied, th_imp)?;
        let th2 = Theorem::eq_mp(&th1.sym()?, th_p)?;
        self.conjunct2(&th2)
    }

    /// `DISCH`: from `Γ ⊢ q`, derive `Γ \ {a} ⊢ a ==> q`.
    pub fn disch(&self, a: &TermRef, th: &Theorem) -> Result<Theorem> {
        let q = *th.concl();
        let th1 = self.conj(&Theorem::assume(a)?, th)?;
        let th2 = self.conjunct1(&Theorem::assume(&mk_conj(a, &q)?)?)?;
        let th3 = Theorem::deduct_antisym(&th1, &th2)?;
        let def_applied = apply_def(&self.imp_def, &[*a, q])?;
        Theorem::eq_mp(&def_applied.sym()?, &th3)
    }

    /// Iterated `DISCH` over a list of antecedents (the first element
    /// becomes the outermost implication).
    pub fn disch_list(&self, antecedents: &[TermRef], th: &Theorem) -> Result<Theorem> {
        let mut acc = th.clone();
        for a in antecedents.iter().rev() {
            acc = self.disch(a, &acc)?;
        }
        Ok(acc)
    }

    /// `UNDISCH`: from `Γ ⊢ p ==> q`, derive `Γ ∪ {p} ⊢ q`.
    pub fn undisch(&self, th: &Theorem) -> Result<Theorem> {
        let (p, _) = dest_imp(th.concl())?;
        self.mp(th, &Theorem::assume(&p)?)
    }

    /// `GEN`: from `Γ ⊢ p` with `x` not free in `Γ`, derive `Γ ⊢ !x. p`.
    pub fn gen(&self, x: &Var, th: &Theorem) -> Result<Theorem> {
        let th1 = self.eqt_intro(th)?;
        let th2 = Theorem::abs(x, &th1)?;
        let tysub = single("a", x.ty.clone());
        let forall_def = self.forall_def.inst_type(&tysub);
        let abs = mk_abs(x, th.concl());
        let def_applied = apply_def(&forall_def, &[abs])?;
        Theorem::eq_mp(&def_applied.sym()?, &th2)
    }

    /// Iterated `GEN`: quantifies the variables in order (the first becomes
    /// the outermost quantifier).
    pub fn gen_list(&self, vars: &[Var], th: &Theorem) -> Result<Theorem> {
        let mut acc = th.clone();
        for v in vars.iter().rev() {
            acc = self.gen(v, &acc)?;
        }
        Ok(acc)
    }

    /// `SPEC`: from `Γ ⊢ !x. p`, derive `Γ ⊢ p[t/x]`.
    pub fn spec(&self, t: &TermRef, th: &Theorem) -> Result<Theorem> {
        let (_q, abs) = th
            .concl()
            .dest_comb()
            .map_err(|_| LogicError::ill_formed("SPEC", format!("not a !: {}", th.concl())))?;
        if !th.concl().head_is_const("!") {
            return Err(LogicError::ill_formed(
                "SPEC",
                format!("not a universal quantification: {}", th.concl()),
            ));
        }
        let tysub = single("a", t.ty());
        let forall_def = self.forall_def.inst_type(&tysub);
        let def_applied = apply_def(&forall_def, &[abs])?;
        let th1 = Theorem::eq_mp(&def_applied, th)?;
        let th2 = Theorem::ap_thm(&th1, t)?;
        let (lhs_t, rhs_t) = th2.dest_eq()?;
        let th_l = Theorem::beta(&lhs_t)?;
        let th_r = Theorem::beta(&rhs_t)?;
        let combined = Theorem::trans_chain(&[th_l.sym()?, th2, th_r])?;
        self.eqt_elim(&combined)
    }

    /// Iterated `SPEC`.
    pub fn spec_list(&self, ts: &[TermRef], th: &Theorem) -> Result<Theorem> {
        let mut acc = th.clone();
        for t in ts {
            acc = self.spec(t, &acc)?;
        }
        Ok(acc)
    }

    /// `PROVE_HYP`: from `Γ ⊢ p` and `Δ ⊢ q`, derive `Γ ∪ (Δ \ {p}) ⊢ q`.
    pub fn prove_hyp(&self, th_p: &Theorem, th_q: &Theorem) -> Result<Theorem> {
        if th_q.hyps().iter().any(|h| h.aconv(th_p.concl())) {
            let eq = Theorem::deduct_antisym(th_p, th_q)?;
            Theorem::eq_mp(&eq, th_p)
        } else {
            Ok(th_q.clone())
        }
    }

    /// Proves `⊢ t = t'` and transports a theorem across it, then spine
    /// beta-reduces the conclusion. Small convenience used by client crates.
    pub fn beta_rule(&self, th: &Theorem) -> Result<Theorem> {
        let conv = beta_spine_thm(th.concl())?;
        Theorem::eq_mp(&conv, th)
    }
}

fn single(name: &str, ty: Type) -> TypeSubst {
    let mut s = TypeSubst::new();
    s.insert(name.to_string(), ty);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{mk_eq, mk_var};

    fn setup() -> (Theory, BoolTheory) {
        let mut thy = Theory::new();
        let b = BoolTheory::install(&mut thy).expect("boolean theory installs");
        (thy, b)
    }

    #[test]
    fn truth_theorem() {
        let (_, b) = setup();
        assert_eq!(b.truth().concl().to_string(), "T");
        assert!(b.truth().is_closed());
    }

    #[test]
    fn eqt_intro_elim_roundtrip() {
        let (_, b) = setup();
        let p = mk_var("p", Type::bool());
        let th = Theorem::assume(&p).unwrap();
        let eq = b.eqt_intro(&th).unwrap();
        assert_eq!(eq.concl().to_string(), "p = T");
        let back = b.eqt_elim(&eq).unwrap();
        assert!(back.concl().aconv(&p));
    }

    #[test]
    fn conj_and_conjuncts_roundtrip() {
        let (_, b) = setup();
        let p = mk_var("p", Type::bool());
        let q = mk_var("q", Type::bool());
        let th_p = Theorem::assume(&p).unwrap();
        let th_q = Theorem::assume(&q).unwrap();
        let both = b.conj(&th_p, &th_q).unwrap();
        assert_eq!(both.concl().to_string(), "/\\ p q");
        let c1 = b.conjunct1(&both).unwrap();
        let c2 = b.conjunct2(&both).unwrap();
        assert!(c1.concl().aconv(&p));
        assert!(c2.concl().aconv(&q));
        assert_eq!(both.hyps().len(), 2);
    }

    #[test]
    fn conj_preserves_redexes_inside_propositions() {
        // The conjuncts contain beta redexes that must survive the round
        // trip exactly (the retiming-theorem derivation depends on this).
        let (_, b) = setup();
        let x = Var::new("x", Type::bool());
        let p = mk_var("p", Type::bool());
        let redex = mk_comb(&mk_abs(&x, &x.term()), &p).unwrap(); // (\x. x) p
        let q = mk_var("q", Type::bool());
        let th1 = Theorem::assume(&redex).unwrap();
        let th2 = Theorem::assume(&q).unwrap();
        let both = b.conj(&th1, &th2).unwrap();
        let c1 = b.conjunct1(&both).unwrap();
        assert!(
            c1.concl().aconv(&redex),
            "conjunct must be returned unreduced, got {}",
            c1.concl()
        );
    }

    #[test]
    fn modus_ponens() {
        let (_, b) = setup();
        let p = mk_var("p", Type::bool());
        let q = mk_var("q", Type::bool());
        let imp = mk_imp(&p, &q).unwrap();
        let th_imp = Theorem::assume(&imp).unwrap();
        let th_p = Theorem::assume(&p).unwrap();
        let th_q = b.mp(&th_imp, &th_p).unwrap();
        assert!(th_q.concl().aconv(&q));
        assert_eq!(th_q.hyps().len(), 2);

        let r = mk_var("r", Type::bool());
        let th_r = Theorem::assume(&r).unwrap();
        assert!(b.mp(&th_imp, &th_r).is_err());
    }

    #[test]
    fn disch_and_undisch() {
        let (_, b) = setup();
        let p = mk_var("p", Type::bool());
        let q = mk_var("q", Type::bool());
        // {p, q} ⊢ q, discharge p: {q} ⊢ p ==> q
        let th_q = Theorem::assume(&q).unwrap();
        let imp = b.disch(&p, &th_q).unwrap();
        assert_eq!(imp.concl().to_string(), "==> p q");
        assert_eq!(imp.hyps().len(), 1);
        // Undischarging brings the antecedent back.
        let back = b.undisch(&imp).unwrap();
        assert!(back.concl().aconv(&q));
        assert_eq!(back.hyps().len(), 2);
    }

    #[test]
    fn disch_actually_removes_hypothesis() {
        let (_, b) = setup();
        let p = mk_var("p", Type::bool());
        let th_p = Theorem::assume(&p).unwrap();
        let imp = b.disch(&p, &th_p).unwrap();
        assert!(imp.is_closed(), "p ==> p should be closed, got {imp}");
        assert_eq!(imp.concl().to_string(), "==> p p");
    }

    #[test]
    fn gen_and_spec_roundtrip() {
        let (_, b) = setup();
        let x = Var::new("x", Type::bv(4));
        let c = mk_const("c", Type::fun(Type::bv(4), Type::bool()));
        let cx = mk_comb(&c, &x.term()).unwrap();
        // ⊢ c x = c x, generalise over x, then specialise to y.
        let th = Theorem::refl(&cx).unwrap();
        let gen = b.gen(&x, &th).unwrap();
        assert!(gen.concl().head_is_const("!"));
        let y = mk_var("y", Type::bv(4));
        let spec = b.spec(&y, &gen).unwrap();
        let cy = mk_comb(&c, &y).unwrap();
        assert!(spec.concl().aconv(&mk_eq(&cy, &cy).unwrap()));
    }

    #[test]
    fn gen_rejects_variable_free_in_hypotheses() {
        let (_, b) = setup();
        let x = Var::new("x", Type::bool());
        let th = Theorem::assume(&x.term()).unwrap();
        assert!(b.gen(&x, &th).is_err());
    }

    #[test]
    fn spec_list_instantiates_nested_quantifiers() {
        let (_, b) = setup();
        let x = Var::new("x", Type::bool());
        let y = Var::new("y", Type::bool());
        let body = mk_eq(&x.term(), &y.term()).unwrap();
        // {x = y} ⊢ x = y  cannot be generalised (free in hyps), so build a
        // closed theorem instead: ⊢ x = x then generalise x.
        let th = Theorem::refl(&x.term()).unwrap();
        let gen = b.gen_list(std::slice::from_ref(&x), &th).unwrap();
        let p = mk_var("p", Type::bool());
        let spec = b.spec_list(std::slice::from_ref(&p), &gen).unwrap();
        assert!(spec.concl().aconv(&mk_eq(&p, &p).unwrap()));
        let _ = (body, y);
    }

    #[test]
    fn prove_hyp_discharges_matching_hypothesis() {
        let (_, b) = setup();
        let p = mk_var("p", Type::bool());
        let q = mk_var("q", Type::bool());
        let th_q = Theorem::assume(&q).unwrap();
        // {p} ⊢ p proves the hypothesis p of {p, q} ⊢ ... here we use {q} ⊢ q
        // and prove q from {p} ⊢ p? Simpler: prove q's hypothesis with itself.
        let th_p = Theorem::assume(&p).unwrap();
        let combined = b.conj(&th_p, &th_q).unwrap(); // {p, q} ⊢ p /\ q
        let result = b.prove_hyp(&th_q, &combined).unwrap();
        assert_eq!(result.hyps().len(), 2, "q ⊢ q cannot remove its own hyp");
        // A theorem without the hypothesis is returned unchanged.
        let unrelated = Theorem::refl(&p).unwrap();
        let same = b.prove_hyp(&th_q, &unrelated).unwrap();
        assert_eq!(same, unrelated);
    }

    #[test]
    fn forall_definition_shape() {
        let (thy, b) = setup();
        assert!(thy.has_constant("!"));
        assert!(thy.has_constant("/\\"));
        assert!(thy.has_constant("==>"));
        assert!(thy.has_constant("~"));
        assert!(thy.has_constant("\\/"));
        assert!(thy.has_constant("?"));
        assert_eq!(thy.axioms().len(), 0, "bool theory is purely definitional");
        assert!(b.forall_def.concl().is_eq());
        assert_eq!(thy.definitions().len(), 8);
    }

    #[test]
    fn exists_and_disj_terms_build() {
        let (_, _b) = setup();
        let x = Var::new("x", Type::bv(2));
        let c = mk_const("c", Type::fun(Type::bv(2), Type::bool()));
        let cx = mk_comb(&c, &x.term()).unwrap();
        let ex = mk_exists(&x, &cx).unwrap();
        assert!(ex.head_is_const("?"));
        let p = mk_var("p", Type::bool());
        let q = mk_var("q", Type::bool());
        let d = mk_disj(&p, &q).unwrap();
        assert!(d.head_is_const("\\/"));
        let n = mk_neg(&p).unwrap();
        assert!(n.head_is_const("~"));
        assert!(mk_forall(&x, &x.term()).is_err());
    }

    #[test]
    fn conj_list_and_disch_list() {
        let (_, b) = setup();
        let ps: Vec<TermRef> = (0..3)
            .map(|i| mk_var(format!("p{i}"), Type::bool()))
            .collect();
        let thms: Vec<Theorem> = ps.iter().map(|p| Theorem::assume(p).unwrap()).collect();
        let all = b.conj_list(&thms).unwrap();
        assert_eq!(all.hyps().len(), 3);
        let discharged = b.disch_list(&ps, &all).unwrap();
        assert!(discharged.is_closed());
    }
}
