//! # hash-logic
//!
//! An LCF-style higher-order-logic kernel, reproducing the trusted core the
//! DATE'97 paper *"A Constructive Approach towards Correctness of Synthesis —
//! Application within Retiming"* (Eisenbiegler, Kumar, Blumenröhr) builds its
//! HASH formal-synthesis system on.
//!
//! The crate provides:
//!
//! * [`types`] / [`term`] — the simply-typed lambda-calculus term language,
//! * [`thm`] — the sealed [`Theorem`](struct@thm::Theorem) type and the ~10
//!   primitive inference rules (the *only* way to create theorems),
//! * [`theory`] — constant signatures, recorded axioms, conservative
//!   definitions and trusted computation ("delta") rules,
//! * [`conv`] — theorem-producing conversions (beta normalisation,
//!   rewriting),
//! * [`mod@bool`] — the logical connectives by definition and the derived rules
//!   (`CONJ`, `MP`, `DISCH`, `GEN`, `SPEC`, ...),
//! * [`pair`] — products and projections used to bundle circuit signals.
//!
//! ## Why this matters for the paper
//!
//! The paper's central claim is that *formal synthesis* — performing a
//! synthesis step such as retiming as a logical derivation — is implicitly
//! correct: "whenever it produces a result this result is also correct",
//! because the result is a theorem and theorems can only be produced by the
//! small trusted core. This crate is that core. Everything built on top
//! (the Automata theory, the retiming transformation, the compound
//! synthesis steps in `hash-core`) produces `Theorem` values and therefore
//! inherits its soundness from this crate alone.
//!
//! ## Example
//!
//! ```
//! use hash_logic::prelude::*;
//!
//! # fn main() -> std::result::Result<(), LogicError> {
//! let mut theory = Theory::new();
//! let booleans = BoolTheory::install(&mut theory)?;
//!
//! // ⊢ p ==> p, derived from the primitive rules.
//! let p = mk_var("p", Type::bool());
//! let th = booleans.disch(&p, &Theorem::assume(&p)?)?;
//! assert!(th.is_closed());
//! assert_eq!(th.concl().to_string(), "==> p p");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bool;
pub mod conv;
pub mod error;
pub mod pair;
pub mod term;
pub mod theory;
pub mod thm;
pub mod types;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::bool::{
        dest_conj, dest_forall, dest_imp, list_mk_conj, list_mk_forall, mk_conj, mk_exists,
        mk_forall, mk_imp, mk_neg, BoolTheory,
    };
    pub use crate::conv::{
        apply_def, beta_norm_thm, beta_spine_thm, inst_theorem, rewr_conv, Rewriter,
    };
    pub use crate::error::{LogicError, Result};
    pub use crate::pair::{
        dest_pair, mk_fst, mk_pair, mk_snd, mk_tuple, strip_tuple, tuple_project, PairTheory,
    };
    pub use crate::term::{
        list_mk_abs, list_mk_comb, mk_abs, mk_comb, mk_const, mk_eq, mk_var, term_match, vsubst,
        Term, TermRef, TermSubst, Var,
    };
    pub use crate::theory::Theory;
    pub use crate::thm::Theorem;
    pub use crate::types::{Type, TypeSubst};
}

pub use error::{LogicError, Result};
pub use term::{Term, TermRef, Var};
pub use theory::Theory;
pub use thm::Theorem;
pub use types::Type;
