//! Theories: constant signatures, axioms, definitions and computation rules.
//!
//! A [`Theory`] records everything that extends the trust base beyond the
//! primitive inference rules of [`crate::thm`]:
//!
//! * **constants** with their generic types,
//! * **axioms** introduced with [`Theory::new_axiom`],
//! * **definitions** introduced with [`Theory::new_definition`] (conservative
//!   extensions: the definition body must be closed),
//! * **computation rules** ("delta rules") registered with
//!   [`Theory::new_delta_rule`] — trusted evaluators such as the bit-vector
//!   arithmetic used to compute the new initial value `f(q)` of a shifted
//!   register in step 4 of the paper's retiming procedure.
//!
//! Everything is auditable: the tests of the downstream crates assert that
//! the complete reproduction only ever relies on the small, documented set
//! of axioms and delta rules of the boolean, pair and Automata theories.

use crate::error::{LogicError, Result};
use crate::term::{mk_const, TermRef};
use crate::thm::Theorem;
use crate::types::{Type, TypeSubst};
use std::collections::BTreeMap;
use std::rc::Rc;

/// A trusted computation rule: maps a term to its evaluated form, or `None`
/// when it does not apply.
pub type DeltaFn = Rc<dyn Fn(&TermRef) -> Option<TermRef>>;

/// A logical theory: signature, axioms, definitions and computation rules.
pub struct Theory {
    constants: BTreeMap<String, Type>,
    axioms: Vec<(String, Theorem)>,
    definitions: Vec<(String, Theorem)>,
    delta_rules: BTreeMap<String, DeltaFn>,
}

impl Default for Theory {
    fn default() -> Self {
        Self::new()
    }
}

impl Theory {
    /// Creates an empty theory containing only the built-in polymorphic
    /// equality constant.
    pub fn new() -> Theory {
        let mut constants = BTreeMap::new();
        constants.insert(
            "=".to_string(),
            Type::fun(Type::var("a"), Type::fun(Type::var("a"), Type::bool())),
        );
        Theory {
            constants,
            axioms: Vec::new(),
            definitions: Vec::new(),
            delta_rules: BTreeMap::new(),
        }
    }

    /// Declares a constant with its generic type.
    ///
    /// # Errors
    ///
    /// Fails if the constant is already declared with a different type.
    pub fn declare_constant(&mut self, name: impl Into<String>, ty: Type) -> Result<()> {
        let name = name.into();
        match self.constants.get(&name) {
            Some(existing) if *existing == ty => Ok(()),
            Some(existing) => Err(LogicError::theory(format!(
                "constant {name} already declared with type {existing}, not {ty}"
            ))),
            None => {
                self.constants.insert(name, ty);
                Ok(())
            }
        }
    }

    /// The generic type of a declared constant.
    pub fn constant_type(&self, name: &str) -> Option<&Type> {
        self.constants.get(name)
    }

    /// Whether the constant has been declared.
    pub fn has_constant(&self, name: &str) -> bool {
        self.constants.contains_key(name)
    }

    /// Builds an occurrence of a declared constant at an instance of its
    /// generic type.
    ///
    /// # Errors
    ///
    /// Fails if the constant is unknown or the requested type is not an
    /// instance of the generic type.
    pub fn const_at(&self, name: &str, ty: Type) -> Result<TermRef> {
        let generic = self
            .constants
            .get(name)
            .ok_or_else(|| LogicError::theory(format!("unknown constant {name}")))?;
        let mut theta = TypeSubst::new();
        generic.match_against(&ty, &mut theta).map_err(|_| {
            LogicError::theory(format!(
                "type {ty} is not an instance of the generic type {generic} of {name}"
            ))
        })?;
        Ok(mk_const(name, ty))
    }

    /// Builds an occurrence of a declared constant with its type variables
    /// instantiated according to `theta`.
    pub fn const_with(&self, name: &str, theta: &TypeSubst) -> Result<TermRef> {
        let generic = self
            .constants
            .get(name)
            .ok_or_else(|| LogicError::theory(format!("unknown constant {name}")))?;
        Ok(mk_const(name, generic.subst(theta)))
    }

    /// Introduces a named axiom. The term must be boolean. The axiom is
    /// recorded and can be inspected with [`Theory::axioms`].
    ///
    /// # Errors
    ///
    /// Fails if the term is not boolean or the name is already used.
    pub fn new_axiom(&mut self, name: impl Into<String>, term: &TermRef) -> Result<Theorem> {
        let name = name.into();
        if !term.ty().is_bool() {
            return Err(LogicError::theory(format!(
                "axiom {name} is not a boolean term: {term}"
            )));
        }
        if self.axioms.iter().any(|(n, _)| *n == name) {
            return Err(LogicError::theory(format!("axiom {name} already exists")));
        }
        let th = Theorem::trusted(Vec::new(), *term);
        self.axioms.push((name, th.clone()));
        Ok(th)
    }

    /// Introduces a new constant by definition `c = body`, where `body` is a
    /// closed term. Returns the defining theorem `⊢ c = body`.
    ///
    /// This is a conservative extension: it cannot introduce inconsistency.
    ///
    /// # Errors
    ///
    /// Fails if the body has free variables, the constant already exists, or
    /// the definition name is already used.
    pub fn new_definition(
        &mut self,
        name: impl Into<String>,
        const_name: impl Into<String>,
        body: &TermRef,
    ) -> Result<Theorem> {
        let name = name.into();
        let const_name = const_name.into();
        let free = body.free_vars();
        if !free.is_empty() {
            return Err(LogicError::theory(format!(
                "definition body of {const_name} has free variables: {}",
                free.iter()
                    .map(|v| v.name.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
        if self.constants.contains_key(&const_name) {
            return Err(LogicError::theory(format!(
                "constant {const_name} is already declared"
            )));
        }
        if self.definitions.iter().any(|(n, _)| *n == name) {
            return Err(LogicError::theory(format!(
                "definition {name} already exists"
            )));
        }
        let ty = body.ty();
        self.constants.insert(const_name.clone(), ty.clone());
        let c = mk_const(const_name, ty);
        let concl = crate::term::mk_eq(&c, body)?;
        let th = Theorem::trusted(Vec::new(), concl);
        self.definitions.push((name, th.clone()));
        Ok(th)
    }

    /// Registers a trusted computation rule under the given name.
    ///
    /// # Errors
    ///
    /// Fails if a rule of that name already exists.
    pub fn new_delta_rule(
        &mut self,
        name: impl Into<String>,
        rule: impl Fn(&TermRef) -> Option<TermRef> + 'static,
    ) -> Result<()> {
        let name = name.into();
        if self.delta_rules.contains_key(&name) {
            return Err(LogicError::theory(format!(
                "delta rule {name} already exists"
            )));
        }
        self.delta_rules.insert(name, Rc::new(rule));
        Ok(())
    }

    /// Applies the named computation rule to a term, producing the theorem
    /// `⊢ term = result`.
    ///
    /// The result's type is checked against the input's type: a computation
    /// rule can therefore never produce an ill-typed equation.
    ///
    /// # Errors
    ///
    /// Fails if the rule is unknown, does not apply, or produces a term of a
    /// different type.
    pub fn apply_delta(&self, name: &str, term: &TermRef) -> Result<Theorem> {
        let rule = self
            .delta_rules
            .get(name)
            .ok_or_else(|| LogicError::theory(format!("unknown delta rule {name}")))?;
        let result = rule(term).ok_or_else(|| {
            LogicError::conversion(
                "apply_delta",
                format!("rule {name} does not apply to {term}"),
            )
        })?;
        let tty = term.ty();
        let rty = result.ty();
        if tty != rty {
            return Err(LogicError::type_mismatch(
                format!("delta rule {name}"),
                tty.to_string(),
                rty.to_string(),
            ));
        }
        let concl = crate::term::mk_eq(term, &result)?;
        Ok(Theorem::trusted(Vec::new(), concl))
    }

    /// Tries every registered computation rule on the term and returns the
    /// first success.
    pub fn apply_any_delta(&self, term: &TermRef) -> Option<Theorem> {
        for name in self.delta_rules.keys() {
            if let Ok(th) = self.apply_delta(name, term) {
                return Some(th);
            }
        }
        None
    }

    /// All recorded axioms (name and theorem).
    pub fn axioms(&self) -> &[(String, Theorem)] {
        &self.axioms
    }

    /// All recorded definitions (name and defining theorem).
    pub fn definitions(&self) -> &[(String, Theorem)] {
        &self.definitions
    }

    /// The names of all registered computation rules.
    pub fn delta_rule_names(&self) -> Vec<&str> {
        self.delta_rules.keys().map(|s| s.as_str()).collect()
    }

    /// A report of the complete trust base of this theory, suitable for
    /// inclusion in experiment logs.
    pub fn trust_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("axioms: {}\n", self.axioms.len()));
        for (name, th) in &self.axioms {
            out.push_str(&format!("  {name}: {th}\n"));
        }
        out.push_str(&format!("definitions: {}\n", self.definitions.len()));
        for (name, _) in &self.definitions {
            out.push_str(&format!("  {name}\n"));
        }
        out.push_str(&format!("delta rules: {}\n", self.delta_rules.len()));
        for name in self.delta_rules.keys() {
            out.push_str(&format!("  {name}\n"));
        }
        out
    }
}

impl std::fmt::Debug for Theory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Theory")
            .field("constants", &self.constants.len())
            .field("axioms", &self.axioms.len())
            .field("definitions", &self.definitions.len())
            .field("delta_rules", &self.delta_rules.len())
            .finish()
    }
}

/// Convenience: is the term a variable-free ("ground") term? Computation
/// rules usually only apply to ground terms.
pub fn is_ground(term: &TermRef) -> bool {
    term.free_vars().is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{mk_eq, mk_var};

    #[test]
    fn constants_and_instances() {
        let mut thy = Theory::new();
        assert!(thy.has_constant("="));
        thy.declare_constant(
            "fst",
            Type::fun(Type::prod(Type::var("a"), Type::var("b")), Type::var("a")),
        )
        .unwrap();
        let inst = thy
            .const_at(
                "fst",
                Type::fun(Type::prod(Type::bool(), Type::bv(4)), Type::bool()),
            )
            .unwrap();
        assert_eq!(
            inst.ty(),
            Type::fun(Type::prod(Type::bool(), Type::bv(4)), Type::bool())
        );
        // Not an instance of the generic type:
        assert!(thy
            .const_at("fst", Type::fun(Type::bool(), Type::bool()))
            .is_err());
        // Re-declaration with the same type is fine, with another type is not.
        assert!(thy
            .declare_constant(
                "fst",
                Type::fun(Type::prod(Type::var("a"), Type::var("b")), Type::var("a"))
            )
            .is_ok());
        assert!(thy.declare_constant("fst", Type::bool()).is_err());
    }

    #[test]
    fn axioms_are_recorded_and_must_be_bool() {
        let mut thy = Theory::new();
        let p = mk_var("p", Type::bool());
        let ax = thy.new_axiom("P_AX", &mk_eq(&p, &p).unwrap()).unwrap();
        assert!(ax.is_closed());
        assert_eq!(thy.axioms().len(), 1);
        assert!(thy.new_axiom("P_AX", &mk_eq(&p, &p).unwrap()).is_err());
        let n = mk_var("n", Type::bv(8));
        assert!(thy.new_axiom("BAD", &n).is_err());
    }

    #[test]
    fn definitions_require_closed_bodies() {
        let mut thy = Theory::new();
        let x = crate::term::Var::new("x", Type::bool());
        let id = crate::term::mk_abs(&x, &x.term());
        let def = thy.new_definition("ID_DEF", "ID", &id).unwrap();
        assert_eq!(def.concl().to_string(), "ID = (\\x. x)");
        assert!(thy.has_constant("ID"));
        // Open body rejected.
        let y = mk_var("y", Type::bool());
        assert!(thy.new_definition("BAD", "BAD_CONST", &y).is_err());
        // Redefinition rejected.
        assert!(thy.new_definition("ID_DEF2", "ID", &id).is_err());
    }

    #[test]
    fn delta_rules_are_type_checked() {
        let mut thy = Theory::new();
        // A rule that "evaluates" the constant zero to itself.
        thy.new_delta_rule("id_rule", |t| Some(*t)).unwrap();
        let c = mk_var("c", Type::bv(8));
        let th = thy.apply_delta("id_rule", &c).unwrap();
        assert_eq!(th.concl().to_string(), "c = c");

        // A rule producing a different type is rejected.
        thy.new_delta_rule("bad_rule", |_| Some(mk_var("b", Type::bool())))
            .unwrap();
        assert!(thy.apply_delta("bad_rule", &c).is_err());
        assert!(thy.apply_delta("missing", &c).is_err());
        assert_eq!(thy.delta_rule_names().len(), 2);
    }

    #[test]
    fn trust_report_lists_everything() {
        let mut thy = Theory::new();
        let p = mk_var("p", Type::bool());
        thy.new_axiom("AX", &mk_eq(&p, &p).unwrap()).unwrap();
        thy.new_delta_rule("r", |_| None).unwrap();
        let report = thy.trust_report();
        assert!(report.contains("AX"));
        assert!(report.contains("delta rules: 1"));
    }
}
