//! Error type for the logic kernel.
//!
//! Every fallible kernel operation returns [`LogicError`]. The kernel never
//! panics on malformed input: producing a wrong theorem must be impossible,
//! and producing *no* theorem (an error) is always the safe failure mode —
//! exactly the behaviour the paper relies on when a faulty synthesis
//! heuristic proposes an impossible transformation.

use std::fmt;

/// Errors raised by term construction, primitive inference rules and
/// derived rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// A combination `f x` was attempted where `f` does not have a function
    /// type or the argument type does not match the domain.
    TypeMismatch {
        /// Human readable description of the context.
        context: String,
        /// The expected type (rendered).
        expected: String,
        /// The type actually found (rendered).
        found: String,
    },
    /// A term did not have the syntactic shape required by a rule
    /// (e.g. `TRANS` applied to a non-equation).
    IllFormed {
        /// The rule or constructor that failed.
        rule: &'static str,
        /// Description of what was expected.
        message: String,
    },
    /// A side condition of an inference rule was violated
    /// (e.g. the abstracted variable of `ABS` occurs free in a hypothesis).
    SideCondition {
        /// The rule whose side condition failed.
        rule: &'static str,
        /// Description of the violated condition.
        message: String,
    },
    /// Term matching failed (used by rewriting and by the retiming
    /// instantiation step when a cut does not fit the universal pattern).
    MatchFailure {
        /// Description of the mismatch.
        message: String,
    },
    /// A conversion was not applicable to the given term.
    ConversionFailed {
        /// The conversion name.
        conv: &'static str,
        /// Description of the failure.
        message: String,
    },
    /// A theory-level operation failed (duplicate constant, unknown
    /// constant, non-closed definition body, ...).
    Theory {
        /// Description of the failure.
        message: String,
    },
}

impl LogicError {
    /// Convenience constructor for [`LogicError::IllFormed`].
    pub fn ill_formed(rule: &'static str, message: impl Into<String>) -> Self {
        LogicError::IllFormed {
            rule,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`LogicError::SideCondition`].
    pub fn side_condition(rule: &'static str, message: impl Into<String>) -> Self {
        LogicError::SideCondition {
            rule,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`LogicError::MatchFailure`].
    pub fn match_failure(message: impl Into<String>) -> Self {
        LogicError::MatchFailure {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`LogicError::ConversionFailed`].
    pub fn conversion(conv: &'static str, message: impl Into<String>) -> Self {
        LogicError::ConversionFailed {
            conv,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`LogicError::Theory`].
    pub fn theory(message: impl Into<String>) -> Self {
        LogicError::Theory {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`LogicError::TypeMismatch`].
    pub fn type_mismatch(
        context: impl Into<String>,
        expected: impl Into<String>,
        found: impl Into<String>,
    ) -> Self {
        LogicError::TypeMismatch {
            context: context.into(),
            expected: expected.into(),
            found: found.into(),
        }
    }
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            LogicError::IllFormed { rule, message } => {
                write!(f, "ill-formed argument to {rule}: {message}")
            }
            LogicError::SideCondition { rule, message } => {
                write!(f, "side condition of {rule} violated: {message}")
            }
            LogicError::MatchFailure { message } => write!(f, "match failure: {message}"),
            LogicError::ConversionFailed { conv, message } => {
                write!(f, "conversion {conv} failed: {message}")
            }
            LogicError::Theory { message } => write!(f, "theory error: {message}"),
        }
    }
}

impl std::error::Error for LogicError {}

/// Result alias used throughout the kernel.
pub type Result<T> = std::result::Result<T, LogicError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_rule_name() {
        let e = LogicError::ill_formed("TRANS", "not an equation");
        assert!(e.to_string().contains("TRANS"));
        assert!(e.to_string().contains("not an equation"));
    }

    #[test]
    fn display_type_mismatch() {
        let e = LogicError::type_mismatch("mk_comb", "bool", "num");
        let s = e.to_string();
        assert!(s.contains("bool") && s.contains("num") && s.contains("mk_comb"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LogicError>();
    }

    #[test]
    fn error_equality() {
        assert_eq!(
            LogicError::match_failure("x"),
            LogicError::match_failure("x")
        );
        assert_ne!(
            LogicError::match_failure("x"),
            LogicError::match_failure("y")
        );
    }
}
