//! The theorem type and the primitive inference rules.
//!
//! This module is the *trusted core* of the reproduction, playing the role
//! the HOL kernel plays in the paper: [`Theorem`] values can only be
//! produced by the primitive rules defined here (plus the axiom and
//! definition mechanisms of [`crate::theory`], which record everything they
//! introduce). Every synthesis result of the `hash-core` crate is a
//! [`Theorem`], so its correctness reduces to the correctness of this file —
//! the paper's central argument for why formal synthesis programs are "as
//! reliable as the core of the theorem prover they are based on".
//!
//! The rule set follows HOL Light: `REFL`, `TRANS`, `MK_COMB`, `ABS`,
//! `BETA`, `ASSUME`, `EQ_MP`, `DEDUCT_ANTISYM`, `INST` and `INST_TYPE`.

use crate::error::{LogicError, Result};
use crate::term::{
    beta_reduce, inst_type, mk_abs, mk_comb, mk_eq, vsubst, TermRef, TermSubst, Var,
};
use crate::types::TypeSubst;
use std::fmt;

/// A theorem `Γ ⊢ c`: a conclusion `c` derived under hypotheses `Γ`.
///
/// The fields are private; the only way to obtain a theorem is through the
/// inference rules in this module or the (recorded) axioms and definitions
/// of a [`crate::theory::Theory`].
#[derive(Clone, Debug)]
pub struct Theorem {
    hyps: Vec<TermRef>,
    concl: TermRef,
}

/// Inserts `t` into the alpha-deduplicated hypothesis list `hyps`.
fn hyp_insert(hyps: &mut Vec<TermRef>, t: &TermRef) {
    if !hyps.iter().any(|h| h.aconv(t)) {
        hyps.push(*t);
    }
}

/// Union of two hypothesis lists modulo alpha-conversion.
fn hyp_union(a: &[TermRef], b: &[TermRef]) -> Vec<TermRef> {
    let mut out: Vec<TermRef> = a.to_vec();
    for t in b {
        hyp_insert(&mut out, t);
    }
    out
}

/// Removes all hypotheses alpha-equivalent to `t`.
fn hyp_remove(hyps: &[TermRef], t: &TermRef) -> Vec<TermRef> {
    hyps.iter().filter(|h| !h.aconv(t)).cloned().collect()
}

impl Theorem {
    /// The conclusion of the theorem.
    pub fn concl(&self) -> &TermRef {
        &self.concl
    }

    /// The hypotheses of the theorem.
    pub fn hyps(&self) -> &[TermRef] {
        &self.hyps
    }

    /// Whether the theorem has no hypotheses.
    pub fn is_closed(&self) -> bool {
        self.hyps.is_empty()
    }

    /// Destructs an equational conclusion into `(lhs, rhs)`.
    ///
    /// # Errors
    ///
    /// Fails if the conclusion is not an equation.
    pub fn dest_eq(&self) -> Result<(TermRef, TermRef)> {
        self.concl.dest_eq()
    }

    /// Trusted constructor, only reachable from within this crate
    /// (axioms, definitions and registered computation rules).
    pub(crate) fn trusted(hyps: Vec<TermRef>, concl: TermRef) -> Theorem {
        Theorem { hyps, concl }
    }

    // -- Primitive rules ----------------------------------------------------

    /// `REFL`: `⊢ t = t`.
    pub fn refl(t: &TermRef) -> Result<Theorem> {
        let concl = mk_eq(t, t)?;
        Ok(Theorem {
            hyps: Vec::new(),
            concl,
        })
    }

    /// `TRANS`: from `Γ ⊢ s = t` and `Δ ⊢ t' = u` with `t` alpha-equivalent
    /// to `t'`, derive `Γ ∪ Δ ⊢ s = u`.
    pub fn trans(th1: &Theorem, th2: &Theorem) -> Result<Theorem> {
        let (s, t) = th1.concl.dest_eq().map_err(|_| {
            LogicError::ill_formed("TRANS", format!("not an equation: {}", th1.concl))
        })?;
        let (t2, u) = th2.concl.dest_eq().map_err(|_| {
            LogicError::ill_formed("TRANS", format!("not an equation: {}", th2.concl))
        })?;
        if !t.aconv(&t2) {
            return Err(LogicError::side_condition(
                "TRANS",
                format!("middle terms differ: {t} vs {t2}"),
            ));
        }
        Ok(Theorem {
            hyps: hyp_union(&th1.hyps, &th2.hyps),
            concl: mk_eq(&s, &u)?,
        })
    }

    /// Chains a list of equational theorems by repeated [`Theorem::trans`].
    ///
    /// # Errors
    ///
    /// Fails on an empty list or when adjacent equations do not line up.
    pub fn trans_chain(thms: &[Theorem]) -> Result<Theorem> {
        let (first, rest) = thms.split_first().ok_or_else(|| {
            LogicError::ill_formed("TRANS_CHAIN", "empty list of theorems".to_string())
        })?;
        let mut acc = first.clone();
        for th in rest {
            acc = Theorem::trans(&acc, th)?;
        }
        Ok(acc)
    }

    /// `MK_COMB`: from `Γ ⊢ f = g` and `Δ ⊢ x = y`, derive
    /// `Γ ∪ Δ ⊢ f x = g y`.
    pub fn mk_comb(th_fun: &Theorem, th_arg: &Theorem) -> Result<Theorem> {
        let (f, g) = th_fun.concl.dest_eq().map_err(|_| {
            LogicError::ill_formed("MK_COMB", format!("not an equation: {}", th_fun.concl))
        })?;
        let (x, y) = th_arg.concl.dest_eq().map_err(|_| {
            LogicError::ill_formed("MK_COMB", format!("not an equation: {}", th_arg.concl))
        })?;
        let lhs = mk_comb(&f, &x)?;
        let rhs = mk_comb(&g, &y)?;
        Ok(Theorem {
            hyps: hyp_union(&th_fun.hyps, &th_arg.hyps),
            concl: mk_eq(&lhs, &rhs)?,
        })
    }

    /// `ABS`: from `Γ ⊢ s = t`, derive `Γ ⊢ (\v. s) = (\v. t)` provided `v`
    /// does not occur free in `Γ`.
    pub fn abs(v: &Var, th: &Theorem) -> Result<Theorem> {
        let (s, t) = th
            .concl
            .dest_eq()
            .map_err(|_| LogicError::ill_formed("ABS", format!("not an equation: {}", th.concl)))?;
        if th.hyps.iter().any(|h| h.occurs_free(v)) {
            return Err(LogicError::side_condition(
                "ABS",
                format!("variable {} occurs free in a hypothesis", v.name),
            ));
        }
        let lhs = mk_abs(v, &s);
        let rhs = mk_abs(v, &t);
        Ok(Theorem {
            hyps: th.hyps.clone(),
            concl: mk_eq(&lhs, &rhs)?,
        })
    }

    /// `BETA`: for a beta redex `(\x. b) a`, derive `⊢ (\x. b) a = b[a/x]`.
    pub fn beta(redex: &TermRef) -> Result<Theorem> {
        let reduced = beta_reduce(redex)
            .map_err(|_| LogicError::ill_formed("BETA", format!("not a beta redex: {redex}")))?;
        Ok(Theorem {
            hyps: Vec::new(),
            concl: mk_eq(redex, &reduced)?,
        })
    }

    /// `ASSUME`: for a boolean term `t`, derive `{t} ⊢ t`.
    pub fn assume(t: &TermRef) -> Result<Theorem> {
        if !t.ty().is_bool() {
            return Err(LogicError::ill_formed(
                "ASSUME",
                format!("term is not boolean: {t}"),
            ));
        }
        Ok(Theorem {
            hyps: vec![*t],
            concl: *t,
        })
    }

    /// `EQ_MP`: from `Γ ⊢ a = b` and `Δ ⊢ a'` with `a` alpha-equivalent to
    /// `a'`, derive `Γ ∪ Δ ⊢ b`.
    pub fn eq_mp(th_eq: &Theorem, th: &Theorem) -> Result<Theorem> {
        let (a, b) = th_eq.concl.dest_eq().map_err(|_| {
            LogicError::ill_formed("EQ_MP", format!("not an equation: {}", th_eq.concl))
        })?;
        if !a.aconv(&th.concl) {
            return Err(LogicError::side_condition(
                "EQ_MP",
                format!("conclusion {} does not match {a}", th.concl),
            ));
        }
        Ok(Theorem {
            hyps: hyp_union(&th_eq.hyps, &th.hyps),
            concl: b,
        })
    }

    /// `DEDUCT_ANTISYM`: from `Γ ⊢ p` and `Δ ⊢ q`, derive
    /// `(Γ \ {q}) ∪ (Δ \ {p}) ⊢ p = q`.
    pub fn deduct_antisym(th1: &Theorem, th2: &Theorem) -> Result<Theorem> {
        let hyps = hyp_union(
            &hyp_remove(&th1.hyps, &th2.concl),
            &hyp_remove(&th2.hyps, &th1.concl),
        );
        Ok(Theorem {
            hyps,
            concl: mk_eq(&th1.concl, &th2.concl)?,
        })
    }

    /// `INST`: instantiates free term variables throughout the theorem.
    ///
    /// # Errors
    ///
    /// Fails if a replacement term's type differs from its variable's type.
    pub fn inst(&self, theta: &TermSubst) -> Result<Theorem> {
        for (v, t) in theta {
            let tty = t.ty();
            if tty != v.ty {
                return Err(LogicError::type_mismatch(
                    format!("INST of variable {}", v.name),
                    v.ty.to_string(),
                    tty.to_string(),
                ));
            }
        }
        Ok(Theorem {
            hyps: self.hyps.iter().map(|h| vsubst(theta, h)).collect(),
            concl: vsubst(theta, &self.concl),
        })
    }

    /// `INST_TYPE`: instantiates type variables throughout the theorem.
    pub fn inst_type(&self, theta: &TypeSubst) -> Theorem {
        Theorem {
            hyps: self.hyps.iter().map(|h| inst_type(theta, h)).collect(),
            concl: inst_type(theta, &self.concl),
        }
    }

    // -- Small, obviously sound derived helpers kept next to the kernel -----

    /// `SYM`: from `Γ ⊢ a = b`, derive `Γ ⊢ b = a`.
    pub fn sym(&self) -> Result<Theorem> {
        let (a, _b) = self.concl.dest_eq().map_err(|_| {
            LogicError::ill_formed("SYM", format!("not an equation: {}", self.concl))
        })?;
        // Standard derivation: MK_COMB of (= applied to a) congruence.
        let (eq_a, _) = self.concl.dest_comb()?; // (= a)
        let (eq_tm, _) = eq_a.dest_comb()?; // =
        let refl_eq = Theorem::refl(&eq_tm)?;
        let th1 = Theorem::mk_comb(&refl_eq, self)?; // ⊢ (= a) = (= b)  [applied to a=b gives...]
        let refl_a = Theorem::refl(&a)?;
        let th2 = Theorem::mk_comb(&th1, &refl_a)?; // ⊢ (a = a) = (b = a)
        Theorem::eq_mp(&th2, &refl_a)
    }

    /// `ALPHA`: `⊢ t1 = t2` when the two terms are alpha-equivalent.
    pub fn alpha(t1: &TermRef, t2: &TermRef) -> Result<Theorem> {
        Theorem::trans(&Theorem::refl(t1)?, &Theorem::refl(t2)?)
    }

    /// `AP_TERM`: from `Γ ⊢ x = y`, derive `Γ ⊢ f x = f y`.
    pub fn ap_term(f: &TermRef, th: &Theorem) -> Result<Theorem> {
        Theorem::mk_comb(&Theorem::refl(f)?, th)
    }

    /// `AP_THM`: from `Γ ⊢ f = g`, derive `Γ ⊢ f x = g x`.
    pub fn ap_thm(th: &Theorem, x: &TermRef) -> Result<Theorem> {
        Theorem::mk_comb(th, &Theorem::refl(x)?)
    }

    /// `EQ_MP` oriented right-to-left: from `Γ ⊢ a = b` and `Δ ⊢ b`, derive
    /// `Γ ∪ Δ ⊢ a`.
    pub fn eq_mp_rev(th_eq: &Theorem, th: &Theorem) -> Result<Theorem> {
        Theorem::eq_mp(&th_eq.sym()?, th)
    }
}

impl fmt::Display for Theorem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.hyps.is_empty() {
            for (i, h) in self.hyps.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{h}")?;
            }
            write!(f, " ")?;
        }
        write!(f, "|- {}", self.concl)
    }
}

impl PartialEq for Theorem {
    /// Theorems compare equal when their conclusions and hypothesis sets are
    /// alpha-equivalent.
    fn eq(&self, other: &Self) -> bool {
        self.concl.aconv(&other.concl)
            && self.hyps.len() == other.hyps.len()
            && self
                .hyps
                .iter()
                .all(|h| other.hyps.iter().any(|g| g.aconv(h)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{mk_const, mk_var};
    use crate::types::Type;

    fn b() -> Type {
        Type::bool()
    }

    #[test]
    fn refl_and_sym() {
        let x = mk_var("x", b());
        let th = Theorem::refl(&x).unwrap();
        assert_eq!(th.concl().to_string(), "x = x");
        let s = th.sym().unwrap();
        assert_eq!(s.concl().to_string(), "x = x");
        assert!(th.is_closed());
    }

    #[test]
    fn assume_requires_bool() {
        let p = mk_var("p", b());
        let th = Theorem::assume(&p).unwrap();
        assert_eq!(th.hyps().len(), 1);
        assert!(th.concl().aconv(&p));

        let n = mk_var("n", Type::bv(8));
        assert!(Theorem::assume(&n).is_err());
    }

    #[test]
    fn trans_checks_middle_term() {
        let x = mk_var("x", b());
        let y = mk_var("y", b());
        let z = mk_var("z", b());
        let th_xy = Theorem::assume(&mk_eq(&x, &y).unwrap()).unwrap();
        // ASSUME only gives hypotheses p ⊢ p; turn them into equational thms
        // by using them directly: x = y and y = z are themselves equations.
        let th_yz = Theorem::assume(&mk_eq(&y, &z).unwrap()).unwrap();
        let th = Theorem::trans(&th_xy, &th_yz).unwrap();
        assert_eq!(th.concl().to_string(), "x = z");
        assert_eq!(th.hyps().len(), 2);

        let th_zx = Theorem::assume(&mk_eq(&z, &x).unwrap()).unwrap();
        assert!(Theorem::trans(&th_xy, &th_zx).is_err());
    }

    #[test]
    fn eq_mp_transports_truth() {
        let p = mk_var("p", b());
        let q = mk_var("q", b());
        let eq = Theorem::assume(&mk_eq(&p, &q).unwrap()).unwrap();
        let th_p = Theorem::assume(&p).unwrap();
        let th_q = Theorem::eq_mp(&eq, &th_p).unwrap();
        assert!(th_q.concl().aconv(&q));
        assert_eq!(th_q.hyps().len(), 2);
        // Mismatched antecedent is rejected.
        let th_r = Theorem::assume(&mk_var("r", b())).unwrap();
        assert!(Theorem::eq_mp(&eq, &th_r).is_err());
    }

    #[test]
    fn abs_side_condition() {
        let x = Var::new("x", b());
        let y = mk_var("y", b());
        let th = Theorem::refl(&y).unwrap();
        let abs = Theorem::abs(&x, &th).unwrap();
        assert_eq!(abs.concl().to_string(), "(\\x. y) = (\\x. y)");

        // x free in hypotheses -> rejected.
        let hyp = Theorem::assume(&mk_eq(&x.term(), &y).unwrap()).unwrap();
        assert!(Theorem::abs(&x, &hyp).is_err());
    }

    #[test]
    fn beta_rule() {
        let x = Var::new("x", b());
        let y = mk_var("y", b());
        let id = mk_abs(&x, &x.term());
        let redex = mk_comb(&id, &y).unwrap();
        let th = Theorem::beta(&redex).unwrap();
        let (l, r) = th.dest_eq().unwrap();
        assert!(l.aconv(&redex));
        assert!(r.aconv(&y));
        assert!(Theorem::beta(&y).is_err());
    }

    #[test]
    fn deduct_antisym_builds_equivalence() {
        let p = mk_var("p", b());
        let q = mk_var("q", b());
        let th_p = Theorem::assume(&p).unwrap();
        let th_q = Theorem::assume(&q).unwrap();
        let th = Theorem::deduct_antisym(&th_p, &th_q).unwrap();
        assert_eq!(th.concl().to_string(), "p = q");
        // Hypotheses {p}\{q} ∪ {q}\{p} = {p, q}... no: {p}\{q}={p}, {q}\{p}={q}
        assert_eq!(th.hyps().len(), 2);

        // Hypotheses equal to the other conclusion are discharged: from
        // {p} ⊢ p and {p} ⊢ p we obtain the closed theorem ⊢ p = p.
        let th2 = Theorem::deduct_antisym(&th_p, &th_p).unwrap();
        assert_eq!(th2.concl().to_string(), "p = p");
        assert!(th2.is_closed());
    }

    #[test]
    fn inst_checks_types_and_substitutes_hyps() {
        let p = Var::new("p", b());
        let q = mk_var("q", b());
        let th = Theorem::assume(&p.term()).unwrap();
        let inst = th.inst(&vec![(p.clone(), q)]).unwrap();
        assert!(inst.concl().aconv(&q));
        assert!(inst.hyps()[0].aconv(&q));

        let bad = th.inst(&vec![(p, mk_var("n", Type::bv(4)))]);
        assert!(bad.is_err());
    }

    #[test]
    fn inst_type_instantiates_polymorphic_theorem() {
        let a = Type::var("a");
        let x = mk_var("x", a.clone());
        let th = Theorem::refl(&x).unwrap();
        let mut theta = TypeSubst::new();
        theta.insert("a".into(), Type::bv(16));
        let inst = th.inst_type(&theta);
        let (l, _) = inst.dest_eq().unwrap();
        assert_eq!(l.ty(), Type::bv(16));
    }

    #[test]
    fn ap_term_and_ap_thm() {
        let f = mk_var("f", Type::fun(b(), b()));
        let g = mk_var("g", Type::fun(b(), b()));
        let x = mk_var("x", b());
        let y = mk_var("y", b());
        let th_xy = Theorem::assume(&mk_eq(&x, &y).unwrap()).unwrap();
        let th = Theorem::ap_term(&f, &th_xy).unwrap();
        assert_eq!(th.concl().to_string(), "f x = f y");

        let th_fg = Theorem::assume(&mk_eq(&f, &g).unwrap()).unwrap();
        let th2 = Theorem::ap_thm(&th_fg, &x).unwrap();
        assert_eq!(th2.concl().to_string(), "f x = g x");
    }

    #[test]
    fn alpha_rule() {
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let id_x = mk_abs(&x, &x.term());
        let id_y = mk_abs(&y, &y.term());
        let th = Theorem::alpha(&id_x, &id_y).unwrap();
        let (l, r) = th.dest_eq().unwrap();
        assert_eq!(l, id_x);
        assert_eq!(r, id_y);

        let konst = mk_abs(&x, &mk_const("T", b()));
        assert!(Theorem::alpha(&id_x, &konst).is_err());
    }

    #[test]
    fn theorem_equality_is_alpha_insensitive() {
        let x = Var::new("x", b());
        let y = Var::new("y", b());
        let th1 = Theorem::refl(&mk_abs(&x, &x.term())).unwrap();
        let th2 = Theorem::refl(&mk_abs(&y, &y.term())).unwrap();
        assert_eq!(th1, th2);
    }

    #[test]
    fn trans_chain_composition() {
        // The paper's "compound synthesis step" argument: ⊢ a = b, ⊢ b = c,
        // ⊢ c = d compose into ⊢ a = d.
        let names = ["a", "b", "c", "d"];
        let vars: Vec<TermRef> = names.iter().map(|n| mk_var(*n, b())).collect();
        let thms: Vec<Theorem> = vars
            .windows(2)
            .map(|w| Theorem::assume(&mk_eq(&w[0], &w[1]).unwrap()).unwrap())
            .collect();
        let th = Theorem::trans_chain(&thms).unwrap();
        assert_eq!(th.concl().to_string(), "a = d");
        assert!(Theorem::trans_chain(&[]).is_err());
    }
}
