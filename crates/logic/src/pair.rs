//! The pair theory: products, projections and their characteristic
//! equations.
//!
//! The Automata theory of the paper represents the combinational part of a
//! circuit as a single function from *(input, state)* to *(output,
//! next-state)*; multiple input wires, registers or outputs are bundled
//! into right-nested pairs. In the HOL system pairs are defined and their
//! characteristic equations proved; here they are introduced as recorded
//! axioms of the pair theory (see DESIGN.md for the substitution argument),
//! keeping the same auditable trust structure.

use crate::error::{LogicError, Result};
use crate::term::{list_mk_comb, mk_comb, mk_eq, Term, TermRef, Var};
use crate::theory::Theory;
use crate::thm::Theorem;
use crate::types::{Type, TypeSubst};

/// The pair theory: constants `pair`, `fst`, `snd` and their characteristic
/// equations.
#[derive(Clone, Debug)]
pub struct PairTheory {
    /// `⊢ fst (pair a b) = a`
    pub fst_pair: Theorem,
    /// `⊢ snd (pair a b) = b`
    pub snd_pair: Theorem,
    /// `⊢ pair (fst p) (snd p) = p`
    pub pair_eta: Theorem,
}

fn generic_pair_ty() -> Type {
    Type::fun(
        Type::var("a"),
        Type::fun(Type::var("b"), Type::prod(Type::var("a"), Type::var("b"))),
    )
}

fn generic_fst_ty() -> Type {
    Type::fun(Type::prod(Type::var("a"), Type::var("b")), Type::var("a"))
}

fn generic_snd_ty() -> Type {
    Type::fun(Type::prod(Type::var("a"), Type::var("b")), Type::var("b"))
}

/// Builds the pairing constant at the given component types.
pub fn pair_const(a: &Type, b: &Type) -> TermRef {
    crate::term::mk_const(
        "pair",
        Type::fun(
            a.clone(),
            Type::fun(b.clone(), Type::prod(a.clone(), b.clone())),
        ),
    )
}

/// Builds the first-projection constant at the given component types.
pub fn fst_const(a: &Type, b: &Type) -> TermRef {
    crate::term::mk_const(
        "fst",
        Type::fun(Type::prod(a.clone(), b.clone()), a.clone()),
    )
}

/// Builds the second-projection constant at the given component types.
pub fn snd_const(a: &Type, b: &Type) -> TermRef {
    crate::term::mk_const(
        "snd",
        Type::fun(Type::prod(a.clone(), b.clone()), b.clone()),
    )
}

/// Builds the pair `(a, b)`.
///
/// # Errors
///
/// Fails only on internal type errors (cannot happen for well-typed input).
pub fn mk_pair(a: &TermRef, b: &TermRef) -> Result<TermRef> {
    let c = pair_const(&a.ty(), &b.ty());
    list_mk_comb(&c, &[*a, *b])
}

/// Builds the right-nested tuple `(t1, (t2, (..., tn)))`. A single element
/// is returned unchanged; the empty tuple is the constant `one_value`.
///
/// # Errors
///
/// Propagates type errors.
pub fn mk_tuple(ts: &[TermRef]) -> Result<TermRef> {
    match ts.split_first() {
        None => Ok(crate::term::mk_const("one_value", Type::one())),
        Some((head, rest)) => {
            if rest.is_empty() {
                Ok(*head)
            } else {
                let tail = mk_tuple(rest)?;
                mk_pair(head, &tail)
            }
        }
    }
}

/// Builds `fst p`.
///
/// # Errors
///
/// Fails if `p` does not have a product type.
pub fn mk_fst(p: &TermRef) -> Result<TermRef> {
    let ty = p.ty();
    let (a, b) = ty.dest_prod()?;
    mk_comb(&fst_const(a, b), p)
}

/// Builds `snd p`.
///
/// # Errors
///
/// Fails if `p` does not have a product type.
pub fn mk_snd(p: &TermRef) -> Result<TermRef> {
    let ty = p.ty();
    let (a, b) = ty.dest_prod()?;
    mk_comb(&snd_const(a, b), p)
}

/// The i-th component of a right-nested tuple term of the given arity,
/// built from projections.
///
/// # Errors
///
/// Fails if the index is out of range for the tuple type.
pub fn tuple_project(t: &TermRef, index: usize, arity: usize) -> Result<TermRef> {
    if arity == 0 {
        return Err(LogicError::ill_formed(
            "tuple_project",
            "cannot project from the empty tuple".to_string(),
        ));
    }
    if index >= arity {
        return Err(LogicError::ill_formed(
            "tuple_project",
            format!("index {index} out of range for arity {arity}"),
        ));
    }
    if arity == 1 {
        return Ok(*t);
    }
    if index == 0 {
        mk_fst(t)
    } else {
        let rest = mk_snd(t)?;
        tuple_project(&rest, index - 1, arity - 1)
    }
}

/// Destructs a syntactic pair `pair a b` into `(a, b)`.
///
/// # Errors
///
/// Fails if the term is not an application of `pair` to two arguments.
pub fn dest_pair(t: &TermRef) -> Result<(TermRef, TermRef)> {
    if let Term::Comb(fl, b) = t.view() {
        if let Term::Comb(p, a) = fl.view() {
            if let Term::Const(c) = p.view() {
                if c.name == "pair" {
                    return Ok((a, b));
                }
            }
        }
    }
    Err(LogicError::ill_formed(
        "dest_pair",
        format!("not a pair: {t}"),
    ))
}

/// Flattens a right-nested syntactic tuple into its components.
pub fn strip_tuple(t: &TermRef) -> Vec<TermRef> {
    match dest_pair(t) {
        Ok((a, b)) => {
            let mut out = vec![a];
            out.extend(strip_tuple(&b));
            out
        }
        Err(_) => vec![*t],
    }
}

impl PairTheory {
    /// Installs the pair theory into the given [`Theory`].
    ///
    /// # Errors
    ///
    /// Fails if the constants are already declared differently.
    pub fn install(theory: &mut Theory) -> Result<PairTheory> {
        theory.declare_constant("pair", generic_pair_ty())?;
        theory.declare_constant("fst", generic_fst_ty())?;
        theory.declare_constant("snd", generic_snd_ty())?;
        theory.declare_constant("one_value", Type::one())?;

        let a = Var::new("a", Type::var("a"));
        let b = Var::new("b", Type::var("b"));
        let pair_ab = mk_pair(&a.term(), &b.term())?;

        let fst_pair = theory.new_axiom("FST_PAIR", &mk_eq(&mk_fst(&pair_ab)?, &a.term())?)?;
        let snd_pair = theory.new_axiom("SND_PAIR", &mk_eq(&mk_snd(&pair_ab)?, &b.term())?)?;

        let p = Var::new("p", Type::prod(Type::var("a"), Type::var("b")));
        let rebuilt = mk_pair(&mk_fst(&p.term())?, &mk_snd(&p.term())?)?;
        let pair_eta = theory.new_axiom("PAIR_ETA", &mk_eq(&rebuilt, &p.term())?)?;

        Ok(PairTheory {
            fst_pair,
            snd_pair,
            pair_eta,
        })
    }

    /// The characteristic projection equations, ready to be handed to a
    /// [`crate::conv::Rewriter`].
    pub fn projection_eqs(&self) -> Vec<Theorem> {
        vec![self.fst_pair.clone(), self.snd_pair.clone()]
    }

    /// `⊢ fst (pair a b) = a` instantiated at the given component types.
    pub fn fst_pair_at(&self, a: &Type, b: &Type) -> Theorem {
        self.fst_pair.inst_type(&two("a", a, "b", b))
    }

    /// `⊢ snd (pair a b) = b` instantiated at the given component types.
    pub fn snd_pair_at(&self, a: &Type, b: &Type) -> Theorem {
        self.snd_pair.inst_type(&two("a", a, "b", b))
    }
}

fn two(n1: &str, t1: &Type, n2: &str, t2: &Type) -> TypeSubst {
    let mut s = TypeSubst::new();
    s.insert(n1.to_string(), t1.clone());
    s.insert(n2.to_string(), t2.clone());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Rewriter;
    use crate::term::mk_var;

    fn setup() -> (Theory, PairTheory) {
        let mut thy = Theory::new();
        let p = PairTheory::install(&mut thy).expect("pair theory installs");
        (thy, p)
    }

    #[test]
    fn pair_construction_and_destruction() {
        let (_, _p) = setup();
        let x = mk_var("x", Type::bv(4));
        let y = mk_var("y", Type::bool());
        let pr = mk_pair(&x, &y).unwrap();
        assert_eq!(pr.ty(), Type::prod(Type::bv(4), Type::bool()));
        let (a, b) = dest_pair(&pr).unwrap();
        assert!(a.aconv(&x));
        assert!(b.aconv(&y));
        assert!(dest_pair(&x).is_err());
    }

    #[test]
    fn tuples_nest_to_the_right() {
        let xs: Vec<TermRef> = (0..3)
            .map(|i| mk_var(format!("x{i}"), Type::bv(2)))
            .collect();
        let t = mk_tuple(&xs).unwrap();
        assert_eq!(
            t.ty(),
            Type::prod(Type::bv(2), Type::prod(Type::bv(2), Type::bv(2)))
        );
        let parts = strip_tuple(&t);
        assert_eq!(parts.len(), 3);
        assert!(parts[2].aconv(&xs[2]));

        // Singleton and empty tuples.
        let single = mk_tuple(&xs[..1]).unwrap();
        assert!(single.aconv(&xs[0]));
        let empty = mk_tuple(&[]).unwrap();
        assert_eq!(empty.ty(), Type::one());
    }

    #[test]
    fn projections_rewrite_with_the_axioms() {
        let (_, p) = setup();
        let x = mk_var("x", Type::bv(4));
        let y = mk_var("y", Type::bool());
        let pr = mk_pair(&x, &y).unwrap();
        let fst_term = mk_fst(&pr).unwrap();
        let snd_term = mk_snd(&pr).unwrap();

        let mut rw = Rewriter::new();
        rw.add_eqs(&p.projection_eqs()).unwrap();
        let th1 = rw.rewrite(&fst_term).unwrap();
        let (_, r1) = th1.dest_eq().unwrap();
        assert!(r1.aconv(&x));
        let th2 = rw.rewrite(&snd_term).unwrap();
        let (_, r2) = th2.dest_eq().unwrap();
        assert!(r2.aconv(&y));
    }

    #[test]
    fn tuple_projection_indices() {
        let xs: Vec<TermRef> = (0..4)
            .map(|i| mk_var(format!("x{i}"), Type::bv(8)))
            .collect();
        let t = mk_tuple(&xs).unwrap();
        let (_, pt) = setup();
        let mut rw = Rewriter::new();
        rw.add_eqs(&pt.projection_eqs()).unwrap();
        for (i, x) in xs.iter().enumerate() {
            let proj = tuple_project(&t, i, xs.len()).unwrap();
            let th = rw.rewrite(&proj).unwrap();
            let (_, r) = th.dest_eq().unwrap();
            assert!(r.aconv(x), "projection {i} should recover x{i}");
        }
        assert!(tuple_project(&t, 4, 4).is_err());
        assert!(tuple_project(&t, 0, 0).is_err());
    }

    #[test]
    fn fst_pair_at_instantiates_types() {
        let (_, p) = setup();
        let inst = p.fst_pair_at(&Type::bv(8), &Type::bool());
        let (lhs, _) = inst.dest_eq().unwrap();
        assert_eq!(lhs.ty(), Type::bv(8));
    }

    #[test]
    fn axioms_are_recorded() {
        let (thy, _) = setup();
        let names: Vec<&str> = thy.axioms().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["FST_PAIR", "SND_PAIR", "PAIR_ETA"]);
    }
}
