//! Differential property tests of the partitioned-transition subsystem.
//!
//! Image computation is the easiest place to silently get wrong answers,
//! so the clustered conjunction + early-quantification engine
//! (`hash_equiv::partition`, PR 4) is pinned against the monolithic
//! transition-relation path on randomly generated small machines
//! (≤ 10 latches): forward and backward images must agree **BDD-for-BDD**
//! (canonicity makes ref equality a semantic check), the full van Eijk
//! fixpoint must reach the same verdict in the same number of steps, an
//! infinite cluster limit must degenerate to the very monolithic relation
//! BDD, and no image may leak a protected intermediate (the live-node
//! count returns to its baseline after every image).

use hash_equiv::prelude::*;
use hash_netlist::gate::bit_blast;
use hash_netlist::prelude::*;
use proptest::prelude::*;

/// A random 1-bit expression over `inputs` input signals and `latches`
/// latch outputs.
#[derive(Clone, Debug)]
enum Expr {
    Input(usize),
    Latch(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn expr(inputs: usize, latches: usize, depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0..inputs).prop_map(Expr::Input),
        (0..latches).prop_map(Expr::Latch),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let sub = expr(inputs, latches, depth - 1);
        prop_oneof![
            leaf,
            sub.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (sub.clone(), sub).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
        .boxed()
    }
}

/// A random Moore-style machine: per-latch next-state expressions and
/// initial values, plus one output expression.
#[derive(Clone, Debug)]
struct MachineDesc {
    num_inputs: usize,
    latches: Vec<(Expr, bool)>,
    output: Expr,
}

/// A fixed-length list of (next-state expression, initial value) pairs,
/// built by chaining pair strategies (the vendored proptest subset has no
/// `collection::vec`).
fn latch_list(count: usize, inputs: usize, latches: usize) -> BoxedStrategy<Vec<(Expr, bool)>> {
    let mut s: BoxedStrategy<Vec<(Expr, bool)>> = Just(Vec::new()).boxed();
    for _ in 0..count {
        s = (s, expr(inputs, latches, 3), 0u8..2)
            .prop_map(|(mut v, e, init)| {
                v.push((e, init == 1));
                v
            })
            .boxed();
    }
    s
}

/// Remaps signal indices drawn over the maximal ranges into the actual
/// machine sizes (the subset has no `prop_flat_map` to condition the
/// expression strategy on the drawn sizes).
fn remap(e: &Expr, num_inputs: usize, num_latches: usize) -> Expr {
    match e {
        Expr::Input(i) => Expr::Input(i % num_inputs),
        Expr::Latch(i) => Expr::Latch(i % num_latches),
        Expr::Not(a) => Expr::Not(Box::new(remap(a, num_inputs, num_latches))),
        Expr::And(a, b) => Expr::And(
            Box::new(remap(a, num_inputs, num_latches)),
            Box::new(remap(b, num_inputs, num_latches)),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(remap(a, num_inputs, num_latches)),
            Box::new(remap(b, num_inputs, num_latches)),
        ),
        Expr::Xor(a, b) => Expr::Xor(
            Box::new(remap(a, num_inputs, num_latches)),
            Box::new(remap(b, num_inputs, num_latches)),
        ),
    }
}

/// Machines with 1–3 inputs and 1–`max_latches` latches.
fn machine(max_latches: usize) -> BoxedStrategy<MachineDesc> {
    (
        1usize..4,
        1usize..max_latches + 1,
        latch_list(max_latches, 3, 10),
        expr(3, 10, 2),
    )
        .prop_map(
            move |(num_inputs, num_latches, latches, output)| MachineDesc {
                num_inputs,
                latches: latches[..num_latches]
                    .iter()
                    .map(|(e, init)| (remap(e, num_inputs, num_latches), *init))
                    .collect(),
                output: remap(&output, num_inputs, num_latches),
            },
        )
        .boxed()
}

/// Realises the description as a 1-bit gate-level netlist.
fn build_netlist(desc: &MachineDesc) -> Netlist {
    let mut n = Netlist::new("random");
    let inputs: Vec<SignalId> = (0..desc.num_inputs)
        .map(|i| n.add_input(format!("i{i}"), 1))
        .collect();
    let latch_outs: Vec<SignalId> = (0..desc.latches.len())
        .map(|i| n.add_signal(format!("q{i}"), 1))
        .collect();
    fn build(n: &mut Netlist, e: &Expr, inputs: &[SignalId], latches: &[SignalId]) -> SignalId {
        match e {
            Expr::Input(i) => inputs[*i],
            Expr::Latch(i) => latches[*i],
            Expr::Not(a) => {
                let a = build(n, a, inputs, latches);
                n.not(a, "n").unwrap()
            }
            Expr::And(a, b) => {
                let (a, b) = (build(n, a, inputs, latches), build(n, b, inputs, latches));
                n.cell(CombOp::And, &[a, b], "a").unwrap()
            }
            Expr::Or(a, b) => {
                let (a, b) = (build(n, a, inputs, latches), build(n, b, inputs, latches));
                n.cell(CombOp::Or, &[a, b], "o").unwrap()
            }
            Expr::Xor(a, b) => {
                let (a, b) = (build(n, a, inputs, latches), build(n, b, inputs, latches));
                n.cell(CombOp::Xor, &[a, b], "x").unwrap()
            }
        }
    }
    for (i, (next, init)) in desc.latches.iter().enumerate() {
        let d = build(&mut n, next, &inputs, &latch_outs);
        n.add_register(d, latch_outs[i], BitVec::bit(*init))
            .unwrap();
    }
    let out = build(&mut n, &desc.output, &inputs, &latch_outs);
    n.mark_output(out);
    n
}

/// The self-product machine of the description (same interface on both
/// sides), the substrate of every property below.
fn product(desc: &MachineDesc) -> ProductMachine {
    let g = bit_blast(&build_netlist(desc)).unwrap().netlist;
    ProductMachine::build(&g, &g, 1 << 22).unwrap()
}

/// As [`product`], but with dynamic reordering off: the live-node leak
/// property compares absolute post-GC counts, which a sifting pass in the
/// middle of an image would legitimately change.
fn product_no_reorder(desc: &MachineDesc) -> ProductMachine {
    let g = bit_blast(&build_netlist(desc)).unwrap().netlist;
    ProductMachine::build_with(&g, &g, 1 << 22, false).unwrap()
}

/// The monolithic backward image: `∃ next, inputs. S[cur→next] ∧ T`.
fn pre_image_monolithic(
    pm: &mut ProductMachine,
    states: hash_bdd::BddRef,
    transition: hash_bdd::BddRef,
) -> hash_bdd::BddRef {
    let fwd: Vec<(u32, u32)> = pm
        .state_vars
        .iter()
        .zip(pm.next_vars.iter())
        .map(|(&c, &n)| (c, n))
        .collect();
    let s_next = pm.manager.rename(states, &fwd).unwrap();
    pm.manager.protect(s_next);
    let quantify: Vec<u32> = pm
        .next_vars
        .iter()
        .chain(pm.input_vars.iter())
        .copied()
        .collect();
    let pre = pm
        .manager
        .and_exists(s_next, transition, &quantify)
        .unwrap();
    pm.manager.unprotect(s_next);
    pre
}

proptest! {
    // Fixed case count AND fixed RNG seed, like the arena and manager
    // differential suites: CI explores exactly the same machines on every
    // run, and a failure reproduces from the seed alone.
    #![proptest_config(ProptestConfig::with_cases(192).with_rng_seed(0x9A47_1710_4EB2_0004))]

    /// Partitioned `image`/`pre_image` agree BDD-for-BDD with the
    /// monolithic path, on the initial state and on a deeper frontier,
    /// across a cluster-limit sweep within one machine.
    #[test]
    fn images_agree_bdd_for_bdd(desc in machine(10), cluster_limit in 1usize..64) {
        let mut pm = product(&desc);
        let transition = pm.transition_relation().unwrap();
        pm.manager.protect(transition);
        let init = pm.initial_state().unwrap();
        pm.manager.protect(init);

        for limit in [cluster_limit, usize::MAX] {
            let pt = pm.partitioned_transition(limit).unwrap();
            // Step 1: image of the initial state.
            let mono1 = pm.image(init, transition).unwrap();
            pm.manager.protect(mono1);
            let part1 = pt.image(&mut pm.manager, init).unwrap();
            prop_assert!(part1 == mono1, "image(init) at cluster limit {limit}");
            // Step 2: image of a deeper, denser state set.
            let frontier = pm.manager.or(mono1, init).unwrap();
            pm.manager.protect(frontier);
            let mono2 = pm.image(frontier, transition).unwrap();
            pm.manager.protect(mono2);
            let part2 = pt.image(&mut pm.manager, frontier).unwrap();
            prop_assert!(part2 == mono2, "image(frontier) at cluster limit {limit}");
            // Backward: pre-image of the reached set.
            let pre_mono = pre_image_monolithic(&mut pm, mono2, transition);
            pm.manager.protect(pre_mono);
            let pre_part = pt.pre_image(&mut pm.manager, mono2).unwrap();
            prop_assert!(pre_part == pre_mono, "pre_image at cluster limit {limit}");
            for f in [mono1, frontier, mono2, pre_mono] {
                pm.manager.unprotect(f);
            }
            pt.release(&mut pm.manager);
        }
        pm.manager.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// An infinite cluster limit degenerates to the monolithic relation:
    /// one cluster, and by canonicity the *same BDD ref* the monolithic
    /// builder produces.
    #[test]
    fn infinite_cluster_limit_is_the_monolithic_relation(desc in machine(10)) {
        let mut pm = product(&desc);
        let transition = pm.transition_relation().unwrap();
        pm.manager.protect(transition);
        let pt = pm.partitioned_transition(usize::MAX).unwrap();
        prop_assert_eq!(pt.num_clusters(), 1);
        prop_assert_eq!(pt.clusters()[0], transition);
        pt.release(&mut pm.manager);
        pm.manager.unprotect(transition);
        pm.manager.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// No protected intermediate leaks: after each image the manager's
    /// live-node count returns to its pre-image baseline (the unprotected
    /// result and every partial cluster product are reclaimed by the
    /// collector — nothing the image computed stays protected).
    #[test]
    fn images_do_not_leak_protections(desc in machine(10), cluster_limit in 1usize..32) {
        let mut pm = product_no_reorder(&desc);
        let init = pm.initial_state().unwrap();
        pm.manager.protect(init);
        let pt = pm.partitioned_transition(cluster_limit).unwrap();
        // Warm-up image: creates the (pinned) rename-target variable nodes
        // so the baseline below is stable across the measured images.
        let warm = pt.image(&mut pm.manager, init).unwrap();
        pm.manager.protect(warm);
        let states = pm.manager.or(warm, init).unwrap();
        pm.manager.protect(states);
        pm.manager.unprotect(warm);

        pm.manager.collect_garbage();
        let baseline = pm.manager.node_count();
        for round in 0..3 {
            let img = pt.image(&mut pm.manager, states).unwrap();
            let _ = img; // deliberately dropped unprotected
            pm.manager.collect_garbage();
            prop_assert!(
                pm.manager.node_count() == baseline,
                "image leaked live nodes in round {round}"
            );
            let pre = pt.pre_image(&mut pm.manager, states).unwrap();
            let _ = pre;
            pm.manager.collect_garbage();
            prop_assert!(
                pm.manager.node_count() == baseline,
                "pre_image leaked live nodes in round {round}"
            );
        }
        pt.release(&mut pm.manager);
        pm.manager.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// The full van Eijk fixpoint (both variants) reaches the same verdict
    /// in the same number of traversal steps through the partitioned and
    /// the monolithic engines — on equivalent machines (self comparison)
    /// and on possibly-inequivalent ones (an initial value flipped).
    #[test]
    fn eijk_fixpoint_agrees(
        desc in machine(6),
        cluster_limit in 1usize..64,
        flip in (0u8..2).prop_map(|b| b == 1),
    ) {
        let a = build_netlist(&desc);
        let mut b_desc = desc;
        if flip {
            b_desc.latches[0].1 = !b_desc.latches[0].1;
        }
        let b = build_netlist(&b_desc);
        let base = EijkOptions::default()
            .with_reorder(false)
            .with_max_iterations(64);
        let mono = check_equivalence_eijk(&a, &b, base);
        let part = check_equivalence_eijk(&a, &b, base.partitioned(cluster_limit));
        prop_assert!(part.verdict == mono.verdict, "basic Eijk verdicts diverge");
        prop_assert!(part.iterations == mono.iterations, "basic Eijk step counts diverge");
        let mono_plus = check_equivalence_eijk_plus(&a, &b, base);
        let part_plus = check_equivalence_eijk_plus(&a, &b, base.partitioned(cluster_limit));
        prop_assert!(part_plus.verdict == mono_plus.verdict, "Eijk+ verdicts diverge");
        prop_assert!(part_plus.iterations == mono_plus.iterations, "Eijk+ step counts diverge");
    }
}
