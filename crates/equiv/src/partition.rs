//! Partitioned transition relations with early quantification.
//!
//! The monolithic transition relation `T = ∧ᵢ (next_i ↔ f_i)` that
//! [`crate::machine::ProductMachine::transition_relation`] builds is the
//! classic scalability wall of symbolic traversal: the conjunction is often
//! exponentially larger than any of its conjuncts, and it must be held live
//! for the whole reachability fixpoint. Burch et al. ("Symbolic model
//! checking with partitioned transition relations") observed that the image
//! `∃ V. S ∧ T₁ ∧ … ∧ Tₖ` can instead be computed one conjunct at a time,
//! existentially quantifying each variable at the *last* conjunct that
//! mentions it — so most variables disappear long before the full product
//! is formed and the monolithic relation is never materialised. Ranjan et
//! al. added size-bounded clustering and quantification-scheduling
//! heuristics; this module implements that standard recipe on top of the
//! fused [`hash_bdd::BddManager::and_exists_cube`] relational product:
//!
//! * **Clustering.** The per-latch relations `next_i ↔ f_i` are conjoined
//!   greedily in latch order until the cluster BDD would exceed
//!   `cluster_limit` nodes, then a new cluster starts (`usize::MAX`
//!   degenerates to the monolithic relation, a property pinned by the
//!   differential suite `tests/partition_properties.rs`).
//! * **Scheduling.** Clusters are ordered by a greedy support heuristic —
//!   pick next the cluster that retires the most quantifiable variables,
//!   i.e. variables no *other* remaining cluster mentions, tie-breaking
//!   towards smaller support — and every quantifiable variable is assigned
//!   to the step of its last mentioning cluster (variables mentioned by no
//!   cluster are quantified at step 0, straight out of the state set).
//! * **Lifetime discipline.** The cluster BDDs are [`protect`]ed for the
//!   life of the value; every intermediate cluster product is protected
//!   only across the step that consumes it, so after an [`image`] the
//!   manager's live-node count returns to its pre-image baseline (also
//!   pinned by the differential suite). Call [`release`] to drop the
//!   cluster roots when the traversal is done.
//!
//! [`protect`]: hash_bdd::BddManager::protect
//! [`image`]: PartitionedTransition::image
//! [`release`]: PartitionedTransition::release

use crate::error::Result;
use hash_bdd::{BddManager, BddRef, VarCube};

/// Default cluster-size bound (in BDD nodes) used by the Table-II harness
/// and [`crate::eijk::EijkOptions::partitioned`] callers that do not sweep
/// the knob. Chosen from the EXPERIMENTS.md ablation: small enough that no
/// cluster approaches the monolithic blow-up, large enough that the
/// schedule stays short.
pub const DEFAULT_CLUSTER_LIMIT: usize = 2_000;

/// Borrowed description of a machine's transition structure, the input to
/// [`PartitionedTransition::build`]. The three variable slices and
/// `next_fns` are aligned per latch; `input_vars` are quantified by both
/// image directions. The van Eijk checker passes the *active* (merged)
/// subset of the product machine here, the SMV checker the full machine.
#[derive(Clone, Copy, Debug)]
pub struct PartitionSpec<'a> {
    /// Current-state variables, one per (active) latch.
    pub state_vars: &'a [u32],
    /// Next-state variables, aligned with `state_vars`.
    pub next_vars: &'a [u32],
    /// Primary-input variables.
    pub input_vars: &'a [u32],
    /// Next-state functions over current-state and input variables,
    /// aligned with `state_vars`. Must be protected in the manager (they
    /// are GC roots of the machine).
    pub next_fns: &'a [BddRef],
}

/// A conjunctively partitioned transition relation with a precomputed
/// early-quantification schedule, driving [`image`] and [`pre_image`]
/// through the fused relational product.
///
/// [`image`]: PartitionedTransition::image
/// [`pre_image`]: PartitionedTransition::pre_image
#[derive(Debug)]
pub struct PartitionedTransition {
    /// Cluster BDDs in schedule order, each protected in the manager.
    clusters: Vec<BddRef>,
    /// Per-step quantification cubes of the forward image (current-state
    /// and input variables, each at its last mentioning cluster).
    img_cubes: Vec<VarCube>,
    /// Per-step quantification cubes of the backward image (next-state and
    /// input variables).
    pre_cubes: Vec<VarCube>,
    /// Rename map next → current applied after a forward image.
    img_rename: Vec<(u32, u32)>,
    /// Rename map current → next applied before a backward image.
    pre_rename: Vec<(u32, u32)>,
}

/// Assigns each quantifiable variable to the last cluster mentioning it
/// and interns one cube per step. Variables mentioned by no cluster are
/// quantified at step 0 (their only occurrence can be in the state set).
fn schedule_cubes(
    manager: &mut BddManager,
    supports: &[Vec<u32>],
    quantify: &[u32],
) -> Vec<VarCube> {
    let steps = supports.len();
    let mut per_step: Vec<Vec<u32>> = vec![Vec::new(); steps];
    for &v in quantify {
        let last = supports
            .iter()
            .rposition(|s| s.binary_search(&v).is_ok())
            .unwrap_or(0);
        per_step[last].push(v);
    }
    per_step.iter().map(|vars| manager.cube(vars)).collect()
}

impl PartitionedTransition {
    /// Builds the clustered conjunction and its quantification schedules.
    /// The returned clusters are protected in `manager`; pair with
    /// [`PartitionedTransition::release`] (or drop the whole manager).
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit; no protections are leaked then.
    pub fn build(
        manager: &mut BddManager,
        spec: &PartitionSpec<'_>,
        cluster_limit: usize,
    ) -> Result<PartitionedTransition> {
        debug_assert_eq!(spec.state_vars.len(), spec.next_fns.len());
        debug_assert_eq!(spec.next_vars.len(), spec.next_fns.len());
        let mut clusters: Vec<BddRef> = Vec::new();
        // Greedy size-bounded clustering over the per-latch relations. The
        // accumulator and every finished cluster stay protected: building
        // the next relation may trigger a collection at the node budget.
        let mut acc = manager.constant(true);
        manager.protect(acc);
        let fail = |manager: &mut BddManager, clusters: &[BddRef], acc: BddRef| {
            for &c in clusters {
                manager.unprotect(c);
            }
            manager.unprotect(acc);
        };
        for (&nv, &f) in spec.next_vars.iter().zip(spec.next_fns.iter()) {
            let relation = manager
                .var(nv)
                .and_then(|nvar| manager.xnor(nvar, f))
                .inspect(|&t| manager.protect(t));
            let relation = match relation {
                Ok(t) => t,
                Err(e) => {
                    fail(manager, &clusters, acc);
                    return Err(e.into());
                }
            };
            // Trial conjunction under an allocation budget: a product that
            // would blow past the cluster bound is abandoned mid-operation
            // (fresh nodes of one operation are all reachable from its
            // result, so `> cluster_limit` fresh nodes proves the product
            // is over the bound) instead of being materialised and then
            // discarded by the size check. The size check remains the
            // authority for products that do complete — e.g. one that
            // mostly re-uses already-interned nodes.
            let trial = if acc == BddRef::TRUE {
                // First conjunct of a cluster: accepted unconditionally, so
                // probing `TRUE ∧ relation = relation` would be wasted work.
                manager.and(acc, relation).map(Some)
            } else {
                manager.and_within(acc, relation, cluster_limit)
            };
            match trial {
                Ok(Some(joined))
                    if acc == BddRef::TRUE || manager.size(joined) <= cluster_limit =>
                {
                    manager.update_protected(&mut acc, joined);
                    manager.unprotect(relation);
                }
                Ok(_) => {
                    // Over the bound (the trial aborted, or completed past
                    // the size check): finish the current cluster and start
                    // a new one from this relation alone (so a cluster
                    // holds at least one conjunct even when the bound is
                    // smaller than any single relation).
                    clusters.push(acc);
                    acc = relation; // transfers the protection
                }
                Err(e) => {
                    manager.unprotect(relation);
                    fail(manager, &clusters, acc);
                    return Err(e.into());
                }
            }
        }
        // The final cluster. A TRUE accumulator is kept only when there are
        // no clusters at all (latch-free machine): the image loop still
        // needs one step to quantify the state set's own variables.
        if acc != BddRef::TRUE || clusters.is_empty() {
            clusters.push(acc);
        } else {
            manager.unprotect(acc);
        }

        // Quantification schedule. The cluster order is chosen for the
        // forward image (the direction the traversals run); the backward
        // schedule reuses the order but recomputes last occurrences over
        // the next-state variables.
        let mut quantify_img: Vec<u32> = spec.state_vars.to_vec();
        quantify_img.extend_from_slice(spec.input_vars);
        let supports: Vec<Vec<u32>> = clusters.iter().map(|&c| manager.support(c)).collect();
        let order = schedule_order(&supports, &quantify_img);
        let clusters: Vec<BddRef> = order.iter().map(|&i| clusters[i]).collect();
        let supports: Vec<Vec<u32>> = order.into_iter().map(|i| supports[i].clone()).collect();

        let mut quantify_pre: Vec<u32> = spec.next_vars.to_vec();
        quantify_pre.extend_from_slice(spec.input_vars);
        let img_cubes = schedule_cubes(manager, &supports, &quantify_img);
        let pre_cubes = schedule_cubes(manager, &supports, &quantify_pre);
        let img_rename: Vec<(u32, u32)> = spec
            .next_vars
            .iter()
            .zip(spec.state_vars.iter())
            .map(|(&n, &c)| (n, c))
            .collect();
        let pre_rename: Vec<(u32, u32)> = img_rename.iter().map(|&(n, c)| (c, n)).collect();
        Ok(PartitionedTransition {
            clusters,
            img_cubes,
            pre_cubes,
            img_rename,
            pre_rename,
        })
    }

    /// The clusters of the partition, in schedule order. With
    /// `cluster_limit = usize::MAX` this is a single BDD equal (by
    /// canonicity, identical) to the monolithic transition relation.
    pub fn clusters(&self) -> &[BddRef] {
        &self.clusters
    }

    /// The number of clusters (= quantification-schedule steps).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The forward image of a state set over the current-state variables,
    /// returned over the current-state variables again. Equal BDD-for-BDD
    /// to [`crate::machine::ProductMachine::image`] on the monolithic
    /// relation, but no cluster product beyond the schedule's partial
    /// conjunctions is ever built. The result is *not* protected; the
    /// intermediates are released even on error.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    pub fn image(&self, manager: &mut BddManager, states: BddRef) -> Result<BddRef> {
        self.product(manager, states, &self.img_cubes, false)
    }

    /// The backward (pre-)image of a state set over the current-state
    /// variables: the states with a successor in `states`, over the
    /// current-state variables. Same lifetime contract as
    /// [`PartitionedTransition::image`].
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    pub fn pre_image(&self, manager: &mut BddManager, states: BddRef) -> Result<BddRef> {
        self.product(manager, states, &self.pre_cubes, true)
    }

    /// The shared early-quantification product loop. For the forward image
    /// the state set enters over current-state variables and the result is
    /// renamed back next → current at the end; for the backward image the
    /// state set is renamed current → next up front and the result is
    /// already over current-state variables.
    fn product(
        &self,
        manager: &mut BddManager,
        states: BddRef,
        cubes: &[VarCube],
        backward: bool,
    ) -> Result<BddRef> {
        let mut acc = if backward {
            manager.rename(states, &self.pre_rename)?
        } else {
            states
        };
        manager.protect(acc);
        for (&cluster, &cube) in self.clusters.iter().zip(cubes.iter()) {
            match manager.and_exists_cube(acc, cluster, cube) {
                Ok(next) => manager.update_protected(&mut acc, next),
                Err(e) => {
                    manager.unprotect(acc);
                    return Err(e.into());
                }
            }
        }
        let result = if backward {
            Ok(acc)
        } else {
            manager.rename(acc, &self.img_rename).map_err(Into::into)
        };
        manager.unprotect(acc);
        result
    }

    /// Releases the cluster protections. The value must not be used with
    /// this manager afterwards.
    pub fn release(self, manager: &mut BddManager) {
        for &c in &self.clusters {
            manager.unprotect(c);
        }
    }
}

/// Greedy cluster ordering for early quantification: repeatedly pick the
/// cluster that retires the most quantifiable variables (variables no
/// other remaining cluster mentions — they can be quantified at that
/// step), tie-breaking towards the smaller quantifiable support, then
/// towards the original (latch) order. Returns the permutation.
fn schedule_order(supports: &[Vec<u32>], quantify: &[u32]) -> Vec<usize> {
    let quantify: std::collections::BTreeSet<u32> = quantify.iter().copied().collect();
    let qsupport: Vec<Vec<u32>> = supports
        .iter()
        .map(|s| s.iter().copied().filter(|v| quantify.contains(v)).collect())
        .collect();
    let mut remaining: Vec<usize> = (0..supports.len()).collect();
    let mut order = Vec::with_capacity(supports.len());
    while !remaining.is_empty() {
        let mut best = 0usize;
        let mut best_score = (0usize, std::cmp::Reverse(usize::MAX));
        for (pos, &c) in remaining.iter().enumerate() {
            let retired = qsupport[c]
                .iter()
                .filter(|v| {
                    remaining
                        .iter()
                        .all(|&o| o == c || qsupport[o].binary_search(v).is_err())
                })
                .count();
            let score = (retired, std::cmp::Reverse(qsupport[c].len()));
            if pos == 0 || score > best_score {
                best_score = score;
                best = pos;
            }
        }
        order.push(remaining.remove(best));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built three-latch machine: x' = i, y' = x, z' = x ∧ y.
    fn spec_manager() -> (BddManager, Vec<u32>, Vec<u32>, Vec<u32>, Vec<BddRef>) {
        // Variable layout: input 0; (current, next) pairs (1,2) (3,4) (5,6).
        let mut m = BddManager::new(7);
        let i = m.var(0).unwrap();
        let x = m.var(1).unwrap();
        let y = m.var(3).unwrap();
        let fx = i;
        let fy = x;
        let fz = m.and(x, y).unwrap();
        for f in [fx, fy, fz] {
            m.protect(f);
        }
        (m, vec![1, 3, 5], vec![2, 4, 6], vec![0], vec![fx, fy, fz])
    }

    #[test]
    fn infinite_cluster_limit_degenerates_to_monolithic() {
        let (mut m, state, next, input, fns) = spec_manager();
        let spec = PartitionSpec {
            state_vars: &state,
            next_vars: &next,
            input_vars: &input,
            next_fns: &fns,
        };
        let pt = PartitionedTransition::build(&mut m, &spec, usize::MAX).unwrap();
        assert_eq!(pt.num_clusters(), 1);
        // The single cluster is the monolithic relation, built the way
        // ProductMachine::transition_relation builds it.
        let mut mono = m.constant(true);
        m.protect(mono);
        for (&nv, &f) in next.iter().zip(fns.iter()) {
            let nvar = m.var(nv).unwrap();
            let bi = m.xnor(nvar, f).unwrap();
            let joined = m.and(mono, bi).unwrap();
            m.update_protected(&mut mono, joined);
        }
        assert_eq!(
            pt.clusters()[0],
            mono,
            "canonicity: same function, same ref"
        );
        m.unprotect(mono);
        pt.release(&mut m);
        m.check_invariants().unwrap();
    }

    #[test]
    fn tiny_cluster_limit_gives_per_latch_clusters() {
        let (mut m, state, next, input, fns) = spec_manager();
        let spec = PartitionSpec {
            state_vars: &state,
            next_vars: &next,
            input_vars: &input,
            next_fns: &fns,
        };
        let pt = PartitionedTransition::build(&mut m, &spec, 1).unwrap();
        assert_eq!(pt.num_clusters(), 3, "one cluster per latch at limit 1");
        pt.release(&mut m);
        m.check_invariants().unwrap();
    }

    /// A machine whose per-latch relations are individually tiny but whose
    /// conjunction is exponential: `next_i ↔ state_i` with every next
    /// variable ordered above every state variable, so a growing cluster
    /// product must remember all paired values. Returns the manager and
    /// the spec vectors.
    fn crossing_machine(latches: u32) -> (BddManager, Vec<u32>, Vec<u32>, Vec<BddRef>) {
        let mut m = BddManager::new(2 * latches);
        let next: Vec<u32> = (0..latches).collect();
        let state: Vec<u32> = (latches..2 * latches).collect();
        let fns: Vec<BddRef> = state
            .iter()
            .map(|&s| {
                let v = m.var(s).unwrap();
                m.protect(v);
                v
            })
            .collect();
        (m, state, next, fns)
    }

    /// The pre-abort greedy clustering: materialise every trial conjunction
    /// in full, then discard it if the size check rejects it. Kept as the
    /// reference the budgeted clustering must agree with.
    fn reference_clusters(
        m: &mut BddManager,
        next: &[u32],
        fns: &[BddRef],
        limit: usize,
    ) -> Vec<BddRef> {
        let mut clusters = Vec::new();
        let mut acc = m.constant(true);
        m.protect(acc);
        for (&nv, &f) in next.iter().zip(fns.iter()) {
            let nvar = m.var(nv).unwrap();
            let rel = m.xnor(nvar, f).unwrap();
            m.protect(rel);
            let joined = m.and(acc, rel).unwrap();
            if acc == BddRef::TRUE || m.size(joined) <= limit {
                m.update_protected(&mut acc, joined);
                m.unprotect(rel);
            } else {
                clusters.push(acc);
                acc = rel;
            }
        }
        if acc != BddRef::TRUE || clusters.is_empty() {
            clusters.push(acc);
        } else {
            m.unprotect(acc);
        }
        clusters
    }

    #[test]
    fn budgeted_clustering_matches_reference_with_fewer_allocations() {
        const LATCHES: u32 = 10;
        for limit in [1usize, 40, 500, usize::MAX] {
            // Reference (materialise-and-discard) clustering in one manager…
            let (mut m_ref, _state, next, fns) = crossing_machine(LATCHES);
            let reference = reference_clusters(&mut m_ref, &next, &fns, limit);
            let ref_allocs = m_ref.stats().allocated_slots;

            // …budgeted clustering of the identical machine in another.
            let (mut m_new, state, next, fns) = crossing_machine(LATCHES);
            let spec = PartitionSpec {
                state_vars: &state,
                next_vars: &next,
                input_vars: &[],
                next_fns: &fns,
            };
            let pt = PartitionedTransition::build(&mut m_new, &spec, limit).unwrap();
            let new_allocs = m_new.stats().allocated_slots;

            // Same clustering decisions: cluster-for-cluster identical
            // functions. Refs are not comparable across managers (an abort
            // changes allocation order), so the reference is re-run inside
            // `m_new`, where canonicity makes equal functions equal refs;
            // the built partition is in schedule order, the reference in
            // latch order.
            drop(reference);
            let reference = reference_clusters(&mut m_new, &next, &fns, limit);
            let expected_order = schedule_order(
                &reference
                    .iter()
                    .map(|&c| m_new.support(c))
                    .collect::<Vec<_>>(),
                &state,
            );
            let expected: Vec<BddRef> = expected_order.into_iter().map(|i| reference[i]).collect();
            assert_eq!(pt.clusters(), &expected[..], "cluster limit {limit}");
            for &c in &reference {
                m_new.unprotect(c);
            }

            // The abort saves work exactly when a large trial product was
            // rejected (the 40-node bound rejects exponentially growing
            // trials); at the extremes the paths coincide.
            if limit == 40 {
                assert!(
                    new_allocs < ref_allocs,
                    "abort allocates strictly less ({new_allocs} >= {ref_allocs})"
                );
            } else {
                assert!(new_allocs <= ref_allocs, "abort never allocates more");
            }
            m_new.check_invariants().unwrap();
            pt.release(&mut m_new);
        }
    }

    #[test]
    fn image_agrees_with_monolithic_and_does_not_leak() {
        let (mut m, state, next, input, fns) = spec_manager();
        let spec = PartitionSpec {
            state_vars: &state,
            next_vars: &next,
            input_vars: &input,
            next_fns: &fns,
        };
        for limit in [1usize, 2, 8, usize::MAX] {
            let pt = PartitionedTransition::build(&mut m, &spec, limit).unwrap();
            // Monolithic reference path.
            let mut mono = m.constant(true);
            m.protect(mono);
            for (&nv, &f) in next.iter().zip(fns.iter()) {
                let nvar = m.var(nv).unwrap();
                let bi = m.xnor(nvar, f).unwrap();
                let joined = m.and(mono, bi).unwrap();
                m.update_protected(&mut mono, joined);
            }
            // States: x=1, y=0, z arbitrary… as a function x ∧ ¬y.
            let x = m.var(1).unwrap();
            let ny = m.nvar(3).unwrap();
            let s = m.and(x, ny).unwrap();
            m.protect(s);

            let quantify: Vec<u32> = state.iter().chain(input.iter()).copied().collect();
            let img_next = m.and_exists(s, mono, &quantify).unwrap();
            let back: Vec<(u32, u32)> = next
                .iter()
                .zip(state.iter())
                .map(|(&n, &c)| (n, c))
                .collect();
            let expected = m.rename(img_next, &back).unwrap();
            m.protect(expected);

            m.collect_garbage();
            let baseline = m.node_count();
            let img = pt.image(&mut m, s).unwrap();
            assert_eq!(img, expected, "partitioned image at limit {limit}");
            // The unprotected result and every intermediate are reclaimed:
            // the live count returns to the pre-image baseline.
            m.collect_garbage();
            assert_eq!(
                m.node_count(),
                baseline,
                "no leaked protection at limit {limit}"
            );

            // Pre-image: states with a successor in `expected`.
            let fwd: Vec<(u32, u32)> = back.iter().map(|&(n, c)| (c, n)).collect();
            let s_next = m.rename(expected, &fwd).unwrap();
            m.protect(s_next);
            let pre_quantify: Vec<u32> = next.iter().chain(input.iter()).copied().collect();
            let pre_expected = m.and_exists(s_next, mono, &pre_quantify).unwrap();
            m.protect(pre_expected);
            let pre = pt.pre_image(&mut m, expected).unwrap();
            assert_eq!(pre, pre_expected, "partitioned pre-image at limit {limit}");

            for f in [s, expected, s_next, pre_expected, mono] {
                m.unprotect(f);
            }
            pt.release(&mut m);
            m.check_invariants().unwrap();
        }
    }
}
