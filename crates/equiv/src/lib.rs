//! # hash-equiv
//!
//! Post-synthesis verification baselines for the DATE'97 HASH retiming
//! reproduction — the approaches the paper compares its formal synthesis
//! against in Tables I and II:
//!
//! * [`comb`] — boolean tautology / combinational equivalence checking
//!   (only applicable when the state representation is unchanged),
//! * [`smv`] — SMV-style symbolic model checking: BDD-based breadth-first
//!   traversal of the product machine,
//! * [`sis`] — SIS-style explicit FSM equivalence (product state
//!   enumeration),
//! * [`eijk`] — van Eijk's checker, plain and with register-correspondence /
//!   functional-dependency exploitation (`Eijk+`).
//!
//! The BDD traversals share [`machine`] (the symbolic product machine) and
//! [`partition`] (conjunctively partitioned transition relations with an
//! early-quantification schedule, enabled via
//! [`eijk::EijkOptions::partitioned`] / [`smv::SmvOptions::partition`];
//! the monolithic relation remains the default and the reference
//! semantics).
//!
//! All methods work on the bit-blasted gate-level form of the circuits
//! (see [`hash_netlist::gate`]), report wall-clock time, iteration counts
//! and peak structure sizes, and signal blow-ups as
//! [`Verdict::ResourceLimit`] — the dashes
//! in the paper's tables.
//!
//! ## Threading model
//!
//! Every checker entry point is a pure function of its two netlists and
//! its options: each run builds its own [`machine::ProductMachine`] —
//! which owns its [`hash_bdd::BddManager`], node/time budgets and
//! protection roots — and drops it at the end. All of these types are
//! [`Send`] (asserted at compile time below), so independent runs can be
//! farmed out to worker threads, one machine per run per worker, with no
//! shared state: one run's blow-up cannot evict another's operation cache
//! or inflate its peak-live sample. This is how the Table-II harness
//! parallelises its benchmark sweep (`table2 --jobs` in `hash-bench`).
//!
//! ## Example
//!
//! ```
//! use hash_circuits::figure2::Figure2;
//! use hash_equiv::prelude::*;
//! use hash_retiming::prelude::*;
//!
//! # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
//! let fig = Figure2::new(3);
//! let retimed = forward_retime(&fig.netlist, &fig.correct_cut())?;
//! let result = check_equivalence_smv(&fig.netlist, &retimed, SmvOptions::default());
//! assert!(result.verdict.is_equivalent());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod comb;
pub mod eijk;
pub mod error;
pub mod machine;
pub mod partition;
pub mod result;
pub mod sis;
pub mod smv;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::comb::check_combinational;
    pub use crate::eijk::{check_equivalence_eijk, check_equivalence_eijk_plus, EijkOptions};
    pub use crate::error::{EquivError, Result};
    pub use crate::machine::ProductMachine;
    pub use crate::partition::{PartitionSpec, PartitionedTransition, DEFAULT_CLUSTER_LIMIT};
    pub use crate::result::{Verdict, VerificationResult};
    pub use crate::sis::{check_equivalence_sis, SisOptions};
    pub use crate::smv::{check_equivalence_smv, SmvOptions};
}

pub use error::EquivError;
pub use result::{Verdict, VerificationResult};

/// Compile-time proof of the threading model: a verification run and every
/// structure it owns can be moved to a worker thread.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<machine::ProductMachine>();
    assert_send::<partition::PartitionedTransition>();
    assert_send::<eijk::EijkOptions>();
    assert_send::<smv::SmvOptions>();
    assert_send::<sis::SisOptions>();
    assert_send::<VerificationResult>();
    assert_send::<EquivError>();
};
