//! SMV-style symbolic model checking of sequential equivalence.
//!
//! This is the reproduction of the paper's `SMV` column: the two circuits
//! are composed into a product machine, the reachable state set is computed
//! by breadth-first symbolic traversal (each step is a BDD image
//! computation), and in every reachable state the outputs are compared.
//! "The algorithm terminates if no further states are found, i.e. the BDD
//! remains unchanged" — and both the number of traversal steps and the BDD
//! sizes grow with the number of state variables, which is exactly the
//! blow-up the experiments measure.

use crate::error::is_resource_limit;
use crate::machine::ProductMachine;
use crate::result::{Verdict, VerificationResult};
use hash_netlist::gate::bit_blast;
use hash_netlist::prelude::*;
use std::time::Instant;

/// Configuration of the symbolic traversal.
#[derive(Clone, Copy, Debug)]
pub struct SmvOptions {
    /// The budget of *live* BDD nodes (the manager garbage collects and
    /// retries before giving up); exceeding it is reported as a resource
    /// limit.
    pub node_limit: usize,
    /// The maximum number of image-computation steps.
    pub max_iterations: usize,
}

impl Default for SmvOptions {
    fn default() -> Self {
        SmvOptions {
            node_limit: 2_000_000,
            max_iterations: 10_000,
        }
    }
}

/// Checks sequential equivalence of two RT-level circuits by SMV-style
/// symbolic reachability on their bit-blasted product machine.
pub fn check_equivalence_smv(a: &Netlist, b: &Netlist, options: SmvOptions) -> VerificationResult {
    let start = Instant::now();
    match run(a, b, options) {
        Ok((verdict, iterations, peak, alloc)) => {
            VerificationResult::new("SMV", verdict, start.elapsed(), iterations, alloc)
                .with_peak_live(peak)
        }
        Err(e) if is_resource_limit(&e) => {
            VerificationResult::resource_limit("SMV", start.elapsed(), options.node_limit, &e)
        }
        Err(_) => VerificationResult::new("SMV", Verdict::Inconclusive, start.elapsed(), 0, 0),
    }
}

/// Returns (verdict, traversal steps, post-GC peak-live nodes, allocated
/// node slots of the manager).
fn run(
    a: &Netlist,
    b: &Netlist,
    options: SmvOptions,
) -> crate::error::Result<(Verdict, usize, usize, usize)> {
    let ga = bit_blast(a)?.netlist;
    let gb = bit_blast(b)?.netlist;
    let mut pm = ProductMachine::build(&ga, &gb, options.node_limit)?;
    // Everything held across BDD operations is protected from the garbage
    // collector; loop state transfers its root via `update_protected`.
    let transition = pm.transition_relation()?;
    pm.manager.protect(transition);
    let miter = pm.output_difference()?;
    pm.manager.protect(miter);

    let mut reached = pm.initial_state()?;
    pm.manager.protect(reached);
    let mut frontier = reached;
    pm.manager.protect(frontier);
    let mut peak = pm.live_checkpoint();
    for step in 1..=options.max_iterations {
        // Outputs must agree in every reachable state, for every input.
        let bad = pm.manager.and(reached, miter)?;
        if bad != hash_bdd::BddRef::FALSE {
            let alloc = pm.manager.stats().allocated_slots;
            return Ok((Verdict::NotEquivalent, step, peak, alloc));
        }
        let image = pm.image(frontier, transition)?;
        let not_reached = pm.manager.not(reached);
        let new_states = pm.manager.and(image, not_reached)?;
        if new_states == hash_bdd::BddRef::FALSE {
            peak = peak.max(pm.live_checkpoint());
            let alloc = pm.manager.stats().allocated_slots;
            return Ok((Verdict::Equivalent, step, peak, alloc));
        }
        let grown = pm.manager.or(reached, new_states)?;
        pm.manager.update_protected(&mut reached, grown);
        pm.manager.update_protected(&mut frontier, new_states);
        // Peak-live is sampled post-GC: dead traversal intermediates are
        // collected before the live count is recorded.
        peak = peak.max(pm.live_checkpoint());
    }
    let alloc = pm.manager.stats().allocated_slots;
    Ok((Verdict::Inconclusive, options.max_iterations, peak, alloc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_circuits::figure2::Figure2;
    use hash_retiming::prelude::*;

    #[test]
    fn retimed_figure2_is_equivalent() {
        let fig = Figure2::new(3);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_equivalence_smv(&fig.netlist, &retimed, SmvOptions::default());
        assert_eq!(r.verdict, Verdict::Equivalent, "{r}");
        assert!(r.iterations >= 1);
    }

    #[test]
    fn wrong_initial_value_is_detected() {
        let fig = Figure2::new(3);
        // A genuinely different circuit: the comparator is swapped
        // (a < b instead of a >= b), which changes the observable behaviour.
        let mut wrong = Netlist::new("wrong");
        let a = wrong.add_input("a", 3);
        let b = wrong.add_input("b", 3);
        let d0 = wrong.register(a, BitVec::zero(3), "d0").unwrap();
        let inc = wrong.inc(d0, "inc").unwrap();
        let cmp = wrong.cell(CombOp::Lt, &[a, b], "cmp").unwrap();
        let d1 = wrong.register(cmp, BitVec::zero(1), "d1").unwrap();
        let y = wrong.mux(d1, inc, b, "y").unwrap();
        wrong.mark_output(y);
        let r = check_equivalence_smv(&fig.netlist, &wrong, SmvOptions::default());
        assert_eq!(r.verdict, Verdict::NotEquivalent, "{r}");
    }

    #[test]
    fn node_limit_reports_resource_limit() {
        let fig = Figure2::new(8);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_equivalence_smv(
            &fig.netlist,
            &retimed,
            SmvOptions {
                node_limit: 50,
                max_iterations: 100,
            },
        );
        assert_eq!(r.verdict, Verdict::ResourceLimit);
    }
}
