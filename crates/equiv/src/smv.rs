//! SMV-style symbolic model checking of sequential equivalence.
//!
//! This is the reproduction of the paper's `SMV` column: the two circuits
//! are composed into a product machine, the reachable state set is computed
//! by breadth-first symbolic traversal (each step is a BDD image
//! computation), and in every reachable state the outputs are compared.
//! "The algorithm terminates if no further states are found, i.e. the BDD
//! remains unchanged" — and both the number of traversal steps and the BDD
//! sizes grow with the number of state variables, which is exactly the
//! blow-up the experiments measure.

use crate::error::is_resource_limit;
use crate::machine::ProductMachine;
use crate::result::{Verdict, VerificationResult};
use hash_netlist::gate::bit_blast;
use hash_netlist::prelude::*;
use std::time::{Duration, Instant};

/// Configuration of the symbolic traversal.
#[derive(Clone, Copy, Debug)]
pub struct SmvOptions {
    /// The budget of *live* BDD nodes (the manager garbage collects and
    /// retries before giving up); exceeding it is reported as a resource
    /// limit.
    pub node_limit: usize,
    /// The maximum number of image-computation steps.
    pub max_iterations: usize,
    /// `Some(cluster_limit)` computes images through the conjunctively
    /// partitioned transition relation (see [`crate::partition`]); `None`
    /// (the default) keeps the monolithic relation.
    pub partition: Option<usize>,
    /// An optional wall-clock budget, checked in the BDD node constructor
    /// and reported as a resource limit.
    pub time_limit: Option<Duration>,
    /// Sample the post-GC live-node count only every this many traversal
    /// steps (default 1: every step, the historical behaviour).
    pub gc_interval: usize,
}

impl Default for SmvOptions {
    fn default() -> Self {
        SmvOptions {
            node_limit: 2_000_000,
            max_iterations: 10_000,
            partition: None,
            time_limit: None,
            gc_interval: 1,
        }
    }
}

impl SmvOptions {
    /// Replaces the BDD live-node budget.
    pub fn with_node_limit(mut self, node_limit: usize) -> SmvOptions {
        self.node_limit = node_limit;
        self
    }

    /// Replaces the traversal-step limit.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> SmvOptions {
        self.max_iterations = max_iterations;
        self
    }

    /// Enables partitioned image computation with the given cluster-size
    /// bound in BDD nodes.
    pub fn partitioned(mut self, cluster_limit: usize) -> SmvOptions {
        self.partition = Some(cluster_limit);
        self
    }

    /// Sets a wall-clock budget for the run.
    pub fn with_time_limit(mut self, time_limit: Duration) -> SmvOptions {
        self.time_limit = Some(time_limit);
        self
    }

    /// Sets the live-node sampling cadence (clamped to at least 1).
    pub fn with_gc_interval(mut self, gc_interval: usize) -> SmvOptions {
        self.gc_interval = gc_interval.max(1);
        self
    }
}

/// Checks sequential equivalence of two RT-level circuits by SMV-style
/// symbolic reachability on their bit-blasted product machine.
pub fn check_equivalence_smv(a: &Netlist, b: &Netlist, options: SmvOptions) -> VerificationResult {
    let start = Instant::now();
    match run(a, b, options) {
        Ok((verdict, iterations, peak, alloc)) => {
            VerificationResult::new("SMV", verdict, start.elapsed(), iterations, alloc)
                .with_peak_live(peak)
        }
        Err(e) if is_resource_limit(&e) => {
            VerificationResult::resource_limit("SMV", start.elapsed(), options.node_limit, &e)
        }
        Err(_) => VerificationResult::new("SMV", Verdict::Inconclusive, start.elapsed(), 0, 0),
    }
}

/// Returns (verdict, traversal steps, post-GC peak-live nodes, allocated
/// node slots of the manager).
fn run(
    a: &Netlist,
    b: &Netlist,
    options: SmvOptions,
) -> crate::error::Result<(Verdict, usize, usize, usize)> {
    let ga = bit_blast(a)?.netlist;
    let gb = bit_blast(b)?.netlist;
    let mut pm =
        ProductMachine::build_limited(&ga, &gb, options.node_limit, true, options.time_limit)?;
    // Everything held across BDD operations is protected from the garbage
    // collector; loop state transfers its root via `update_protected`.
    // The transition relation is either the monolithic conjunction (the
    // reference semantics) or the clustered partition with its
    // early-quantification schedule.
    let (transition, partitioned) = match options.partition {
        Some(cluster_limit) => (None, Some(pm.partitioned_transition(cluster_limit)?)),
        None => {
            let t = pm.transition_relation()?;
            pm.manager.protect(t);
            (Some(t), None)
        }
    };
    let miter = pm.output_difference()?;
    pm.manager.protect(miter);

    let mut reached = pm.initial_state()?;
    pm.manager.protect(reached);
    let mut frontier = reached;
    pm.manager.protect(frontier);
    let mut peak = pm.live_checkpoint();
    let gc_interval = options.gc_interval.max(1);
    for step in 1..=options.max_iterations {
        // Outputs must agree in every reachable state, for every input.
        let bad = pm.manager.and(reached, miter)?;
        if bad != hash_bdd::BddRef::FALSE {
            let alloc = pm.manager.stats().allocated_slots;
            return Ok((Verdict::NotEquivalent, step, peak, alloc));
        }
        let image = match (&transition, &partitioned) {
            (Some(t), _) => pm.image(frontier, *t)?,
            (None, Some(pt)) => pt.image(&mut pm.manager, frontier)?,
            (None, None) => unreachable!("one image engine is always built"),
        };
        let not_reached = pm.manager.not(reached);
        let new_states = pm.manager.and(image, not_reached)?;
        if new_states == hash_bdd::BddRef::FALSE {
            peak = peak.max(pm.live_checkpoint());
            let alloc = pm.manager.stats().allocated_slots;
            return Ok((Verdict::Equivalent, step, peak, alloc));
        }
        let grown = pm.manager.or(reached, new_states)?;
        pm.manager.update_protected(&mut reached, grown);
        pm.manager.update_protected(&mut frontier, new_states);
        // Peak-live is sampled post-GC: dead traversal intermediates are
        // collected before the live count is recorded (every
        // `gc_interval` steps; the k = 1 default samples every step).
        if step % gc_interval == 0 {
            peak = peak.max(pm.live_checkpoint());
        }
    }
    let alloc = pm.manager.stats().allocated_slots;
    Ok((Verdict::Inconclusive, options.max_iterations, peak, alloc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_circuits::figure2::Figure2;
    use hash_retiming::prelude::*;

    #[test]
    fn retimed_figure2_is_equivalent() {
        let fig = Figure2::new(3);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_equivalence_smv(&fig.netlist, &retimed, SmvOptions::default());
        assert_eq!(r.verdict, Verdict::Equivalent, "{r}");
        assert!(r.iterations >= 1);
    }

    #[test]
    fn wrong_initial_value_is_detected() {
        let fig = Figure2::new(3);
        // A genuinely different circuit: the comparator is swapped
        // (a < b instead of a >= b), which changes the observable behaviour.
        let mut wrong = Netlist::new("wrong");
        let a = wrong.add_input("a", 3);
        let b = wrong.add_input("b", 3);
        let d0 = wrong.register(a, BitVec::zero(3), "d0").unwrap();
        let inc = wrong.inc(d0, "inc").unwrap();
        let cmp = wrong.cell(CombOp::Lt, &[a, b], "cmp").unwrap();
        let d1 = wrong.register(cmp, BitVec::zero(1), "d1").unwrap();
        let y = wrong.mux(d1, inc, b, "y").unwrap();
        wrong.mark_output(y);
        let r = check_equivalence_smv(&fig.netlist, &wrong, SmvOptions::default());
        assert_eq!(r.verdict, Verdict::NotEquivalent, "{r}");
    }

    #[test]
    fn node_limit_reports_resource_limit() {
        let fig = Figure2::new(8);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_equivalence_smv(
            &fig.netlist,
            &retimed,
            SmvOptions::default()
                .with_node_limit(50)
                .with_max_iterations(100),
        );
        assert_eq!(r.verdict, Verdict::ResourceLimit);
    }

    #[test]
    fn partitioned_traversal_agrees_with_monolithic() {
        let fig = Figure2::new(3);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let mono = check_equivalence_smv(&fig.netlist, &retimed, SmvOptions::default());
        for cluster_limit in [1usize, 500, usize::MAX] {
            let part = check_equivalence_smv(
                &fig.netlist,
                &retimed,
                SmvOptions::default().partitioned(cluster_limit),
            );
            assert_eq!(part.verdict, Verdict::Equivalent, "{part}");
            assert_eq!(
                part.iterations, mono.iterations,
                "same fixpoint depth at cluster limit {cluster_limit}"
            );
        }
    }

    #[test]
    fn expired_time_limit_reports_resource_limit() {
        let fig = Figure2::new(3);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_equivalence_smv(
            &fig.netlist,
            &retimed,
            SmvOptions::default().with_time_limit(Duration::ZERO),
        );
        assert_eq!(r.verdict, Verdict::ResourceLimit, "{r}");
    }
}
