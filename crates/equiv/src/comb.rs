//! Combinational equivalence and tautology checking.
//!
//! The paper's Section II lists boolean tautology checkers as the first
//! automatic post-synthesis verification technique: "they can only be
//! applied to pure combinational circuits and to sequential circuits with
//! the same state representation", and their cost grows exponentially with
//! circuit size. This module provides that baseline; it is also reused by
//! the sequential methods to compare outputs.

use crate::error::{is_resource_limit, EquivError, Result};
use crate::machine::ProductMachine;
use crate::result::{Verdict, VerificationResult};
use hash_netlist::gate::bit_blast;
use hash_netlist::prelude::*;
use std::time::Instant;

/// Checks combinational equivalence of two circuits (same inputs, same
/// outputs, compared for every input assignment), treating register outputs
/// as additional free inputs — i.e. the "same state representation"
/// requirement of a pure tautology check.
pub fn check_combinational(a: &Netlist, b: &Netlist, node_limit: usize) -> VerificationResult {
    let start = Instant::now();
    match run(a, b, node_limit) {
        Ok((verdict, peak_live, alloc)) => {
            VerificationResult::new("tautology", verdict, start.elapsed(), 1, alloc)
                .with_peak_live(peak_live)
        }
        Err(e) if is_resource_limit(&e) => {
            VerificationResult::resource_limit("tautology", start.elapsed(), node_limit, &e)
        }
        Err(_) => {
            VerificationResult::new("tautology", Verdict::Inconclusive, start.elapsed(), 1, 0)
        }
    }
}

/// Returns (verdict, post-GC peak-live nodes, allocated node slots): like
/// the traversal-based methods, the single-pass check reports its honest
/// post-build memory footprint through a GC checkpoint.
fn run(a: &Netlist, b: &Netlist, node_limit: usize) -> Result<(Verdict, usize, usize)> {
    let ga = bit_blast(a)?.netlist;
    let gb = bit_blast(b)?.netlist;
    if ga.registers().len() != gb.registers().len() {
        return Err(EquivError::InterfaceMismatch {
            message: format!(
                "tautology checking requires the same state representation: {} vs {} registers",
                ga.registers().len(),
                gb.registers().len()
            ),
        });
    }
    let mut pm = ProductMachine::build(&ga, &gb, node_limit)?;
    // Peak-live parity with the traversal-based checkers: the post-build
    // GC checkpoint is the honest footprint of the comparison structures
    // (comparisons below only add short-lived composition intermediates).
    let mut peak = pm.live_checkpoint();
    // Identify the state variables of both circuits pairwise (same state
    // representation) and compare outputs and next-state functions.
    let half = ga.registers().len();
    let mut subs: Vec<(u32, hash_bdd::BddRef)> = Vec::new();
    for i in 0..half {
        let rep = pm.manager.var(pm.state_vars[i])?;
        subs.push((pm.state_vars[half + i], rep));
    }
    let mut verdict = Verdict::Equivalent;
    for (fa, fb) in pm.outputs_a.clone().iter().zip(pm.outputs_b.clone().iter()) {
        let fb_sub = pm.manager.compose_many(*fb, &subs)?;
        if *fa != fb_sub {
            verdict = Verdict::NotEquivalent;
            break;
        }
    }
    if verdict == Verdict::Equivalent {
        let (next_a, next_b) = pm.next_fns.split_at(half);
        let next_a = next_a.to_vec();
        let next_b = next_b.to_vec();
        for (fa, fb) in next_a.iter().zip(next_b.iter()) {
            let fb_sub = pm.manager.compose_many(*fb, &subs)?;
            if *fa != fb_sub {
                verdict = Verdict::NotEquivalent;
                break;
            }
        }
    }
    peak = peak.max(pm.live_checkpoint());
    Ok((verdict, peak, pm.manager.stats().allocated_slots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_circuits::figure2::Figure2;
    use hash_retiming::prelude::*;

    #[test]
    fn identical_circuits_are_equivalent() {
        let a = Figure2::new(4);
        let b = Figure2::new(4);
        let r = check_combinational(&a.netlist, &b.netlist, 1 << 20);
        assert_eq!(r.verdict, Verdict::Equivalent, "{r}");
    }

    #[test]
    fn peak_live_is_reported_on_every_verdict_path() {
        // Equivalent path.
        let a = Figure2::new(3);
        let b = Figure2::new(3);
        let r = check_combinational(&a.netlist, &b.netlist, 1 << 20);
        assert_eq!(r.verdict, Verdict::Equivalent);
        let peak = r.peak_live.expect("tautology reports peak-live");
        assert!(peak > 1, "the comparison holds live nodes");
        assert!(r.peak_size >= peak, "allocated slots bound the live peak");

        // NotEquivalent path.
        let mut c = Netlist::new("c");
        let x = c.add_input("x", 3);
        let y = c.not(x, "y").unwrap();
        c.mark_output(y);
        let mut d = Netlist::new("d");
        let x2 = d.add_input("x", 3);
        d.mark_output(x2);
        let ne = check_combinational(&c, &d, 1 << 20);
        assert_eq!(ne.verdict, Verdict::NotEquivalent);
        assert!(ne.peak_live.is_some(), "peak-live on the refutation path");

        // Node-budget blow-up path: the shared resource_limit report pins
        // peak_live to the exhausted budget.
        let big = Figure2::new(16);
        let lim = check_combinational(&big.netlist, &big.netlist, 10);
        assert_eq!(lim.verdict, Verdict::ResourceLimit);
        assert_eq!(lim.peak_live, Some(10));
    }

    #[test]
    fn retimed_circuit_fails_the_same_state_requirement() {
        // After retiming the state representation changes, so the pure
        // combinational check cannot be applied / does not prove equality —
        // exactly the limitation the paper points out.
        let fig = Figure2::new(4);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_combinational(&fig.netlist, &retimed, 1 << 20);
        assert_ne!(r.verdict, Verdict::Equivalent);
    }

    #[test]
    fn genuinely_different_logic_is_refuted() {
        let mut a = Netlist::new("a");
        let x = a.add_input("x", 4);
        let y = a.add_input("y", 4);
        let s = a.add(x, y, "s").unwrap();
        a.mark_output(s);
        let mut b = Netlist::new("b");
        let x2 = b.add_input("x", 4);
        let y2 = b.add_input("y", 4);
        let s2 = b.xor(x2, y2, "s").unwrap();
        b.mark_output(s2);
        let r = check_combinational(&a, &b, 1 << 20);
        assert_eq!(r.verdict, Verdict::NotEquivalent);

        // And a correct alternative formulation is accepted: x + y = y + x.
        let mut c = Netlist::new("c");
        let x3 = c.add_input("x", 4);
        let y3 = c.add_input("y", 4);
        let s3 = c.add(y3, x3, "s").unwrap();
        c.mark_output(s3);
        let r2 = check_combinational(&a, &c, 1 << 20);
        assert_eq!(r2.verdict, Verdict::Equivalent);
    }
}
