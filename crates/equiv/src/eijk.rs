//! Van-Eijk-style sequential equivalence checking.
//!
//! The paper compares against two versions of van Eijk's checker: the basic
//! one (`Eijk`) and the one "exploiting functional dependencies" (`Eijk+`,
//! the ED&TC'96 paper referenced as \[7\]). Both are specialised
//! post-synthesis verification techniques: they still traverse the product
//! state space with BDDs, but the improved version first derives register
//! correspondences by induction and uses them to shrink the state space
//! before the traversal — which is why it survives to larger circuits than
//! plain model checking, yet still blows up eventually, unlike the formal
//! synthesis approach.
//!
//! The reimplementation here follows that structure:
//!
//! * [`check_equivalence_eijk`] — product-machine reachability with a
//!   frontier-based traversal (the basic checker),
//! * [`check_equivalence_eijk_plus`] — the same traversal after an
//!   induction pass that identifies provably equivalent registers
//!   (correspondences / functional dependencies) and replaces one of each
//!   pair by the other, removing state variables.

use crate::error::{is_resource_limit, EquivError};
use crate::machine::ProductMachine;
use crate::result::{Verdict, VerificationResult};
use hash_bdd::BddRef;
use hash_netlist::gate::bit_blast;
use hash_netlist::prelude::*;
use std::time::Instant;

/// Configuration shared by both van Eijk variants.
#[derive(Clone, Copy, Debug)]
pub struct EijkOptions {
    /// The budget of *live* BDD nodes: the manager garbage collects (and
    /// retries the failing operation) before reporting a blow-up, so dead
    /// intermediates and cache garbage no longer count against the limit.
    pub node_limit: usize,
    /// The maximum number of traversal steps.
    pub max_iterations: usize,
    /// The maximum number of correspondence-refinement rounds.
    pub max_refinements: usize,
    /// Whether sifting-based dynamic variable reordering is enabled.
    pub reorder: bool,
}

impl Default for EijkOptions {
    fn default() -> Self {
        EijkOptions {
            node_limit: 2_000_000,
            max_iterations: 10_000,
            max_refinements: 64,
            reorder: true,
        }
    }
}

impl EijkOptions {
    /// Creates fully explicit options (reordering on). Callers that sweep
    /// the limits (the Table-II harness, EXPERIMENTS.md reruns) use this
    /// instead of struct-literal updates so the knobs are visible at the
    /// call site.
    pub fn new(node_limit: usize, max_iterations: usize, max_refinements: usize) -> EijkOptions {
        EijkOptions {
            node_limit,
            max_iterations,
            max_refinements,
            reorder: true,
        }
    }

    /// Enables or disables dynamic variable reordering.
    pub fn with_reorder(mut self, reorder: bool) -> EijkOptions {
        self.reorder = reorder;
        self
    }

    /// Replaces the BDD node limit.
    pub fn with_node_limit(mut self, node_limit: usize) -> EijkOptions {
        self.node_limit = node_limit;
        self
    }

    /// Replaces the traversal-step limit.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> EijkOptions {
        self.max_iterations = max_iterations;
        self
    }

    /// Replaces the correspondence-refinement limit.
    pub fn with_max_refinements(mut self, max_refinements: usize) -> EijkOptions {
        self.max_refinements = max_refinements;
        self
    }
}

/// The basic van Eijk checker: frontier-based symbolic product traversal.
pub fn check_equivalence_eijk(
    a: &Netlist,
    b: &Netlist,
    options: EijkOptions,
) -> VerificationResult {
    let start = Instant::now();
    match run(a, b, options, false) {
        Ok((verdict, iterations, peak, alloc)) => {
            VerificationResult::new("Eijk", verdict, start.elapsed(), iterations, alloc)
                .with_peak_live(peak)
        }
        Err(e) if is_resource_limit(&e) => {
            VerificationResult::resource_limit("Eijk", start.elapsed(), options.node_limit, &e)
        }
        Err(_) => VerificationResult::new("Eijk", Verdict::Inconclusive, start.elapsed(), 0, 0),
    }
}

/// The improved checker exploiting register correspondences / functional
/// dependencies before the traversal.
pub fn check_equivalence_eijk_plus(
    a: &Netlist,
    b: &Netlist,
    options: EijkOptions,
) -> VerificationResult {
    let start = Instant::now();
    match run(a, b, options, true) {
        Ok((verdict, iterations, peak, alloc)) => {
            VerificationResult::new("Eijk+", verdict, start.elapsed(), iterations, alloc)
                .with_peak_live(peak)
        }
        Err(e) if is_resource_limit(&e) => {
            VerificationResult::resource_limit("Eijk+", start.elapsed(), options.node_limit, &e)
        }
        Err(_) => VerificationResult::new("Eijk+", Verdict::Inconclusive, start.elapsed(), 0, 0),
    }
}

/// Computes register equivalence classes by induction: start from classes
/// grouped by initial value, then repeatedly split classes whose members'
/// next-state functions differ when every register variable is replaced by
/// its class representative variable.
fn register_correspondence(
    pm: &mut ProductMachine,
    max_refinements: usize,
) -> std::result::Result<Vec<usize>, EquivError> {
    let n = pm.state_vars.len();
    // class[i] = representative index (smallest member index of the class).
    let mut class: Vec<usize> = (0..n)
        .map(|i| {
            (0..=i)
                .find(|&j| pm.init_values[j] == pm.init_values[i])
                .unwrap_or(i)
        })
        .collect();
    for _ in 0..max_refinements {
        // Substitution: each register variable is replaced by its class
        // representative's variable (a functional composition; variable
        // nodes are pinned in the manager, so the list is GC-safe).
        let mut subs: Vec<(u32, BddRef)> = Vec::new();
        for (i, &rep_idx) in class.iter().enumerate() {
            if rep_idx != i {
                let rep = pm.manager.var(pm.state_vars[rep_idx])?;
                subs.push((pm.state_vars[i], rep));
            }
        }
        // Each substituted function is protected as soon as it exists:
        // computing the next one may trigger a collection.
        let mut substituted: Vec<BddRef> = Vec::with_capacity(n);
        for f in pm.next_fns.clone() {
            match pm.manager.compose_many(f, &subs) {
                Ok(s) => {
                    pm.manager.protect(s);
                    substituted.push(s);
                }
                Err(e) => {
                    for &s in &substituted {
                        pm.manager.unprotect(s);
                    }
                    return Err(e.into());
                }
            }
        }
        // Split classes by (old class, substituted next function) —
        // canonicity makes the id comparison a semantic one.
        let mut new_class = vec![0usize; n];
        for i in 0..n {
            let mut rep = i;
            for j in 0..i {
                if class[j] == class[i] && substituted[j] == substituted[i] {
                    rep = j;
                    break;
                }
            }
            new_class[i] = if rep == i { i } else { new_class[rep] };
        }
        for &s in &substituted {
            pm.manager.unprotect(s);
        }
        if new_class == class {
            break;
        }
        class = new_class;
    }
    Ok(class)
}

/// Returns (verdict, traversal steps, post-GC peak-live nodes, allocated
/// node slots of the manager).
fn run(
    a: &Netlist,
    b: &Netlist,
    options: EijkOptions,
    exploit_dependencies: bool,
) -> std::result::Result<(Verdict, usize, usize, usize), EquivError> {
    let ga = bit_blast(a)?.netlist;
    let gb = bit_blast(b)?.netlist;
    let mut pm = ProductMachine::build_with(&ga, &gb, options.node_limit, options.reorder)?;

    // Correspondence reduction (Eijk+ only): registers proved equivalent by
    // induction are merged, i.e. the non-representative's variable is
    // replaced by the representative's everywhere and its state variable is
    // dropped from the traversal.
    let class = if exploit_dependencies {
        register_correspondence(&mut pm, options.max_refinements)?
    } else {
        (0..pm.state_vars.len()).collect()
    };
    let mut subs: Vec<(u32, BddRef)> = Vec::new();
    for (i, &rep_idx) in class.iter().enumerate() {
        if rep_idx != i {
            let rep = pm.manager.var(pm.state_vars[rep_idx])?;
            subs.push((pm.state_vars[i], rep));
        }
    }
    if !subs.is_empty() {
        pm.substitute(&subs)?;
    }
    let active: Vec<usize> = (0..pm.state_vars.len())
        .filter(|&i| class[i] == i)
        .collect();

    // Transition relation and miter over the reduced state space. Loop
    // state is kept protected (`update_protected`) so the garbage
    // collector only ever reclaims genuinely dead intermediates.
    let mut transition = pm.manager.constant(true);
    pm.manager.protect(transition);
    for &i in &active {
        let nv = pm.manager.var(pm.next_vars[i])?;
        let bi = pm.manager.xnor(nv, pm.next_fns[i])?;
        let next = pm.manager.and(transition, bi)?;
        pm.manager.update_protected(&mut transition, next);
    }
    let mut miter = pm.manager.constant(false);
    pm.manager.protect(miter);
    for (fa, fb) in pm.outputs_a.clone().iter().zip(pm.outputs_b.clone().iter()) {
        let d = pm.manager.xor(*fa, *fb)?;
        let next = pm.manager.or(miter, d)?;
        pm.manager.update_protected(&mut miter, next);
    }
    let mut reached = pm.manager.constant(true);
    pm.manager.protect(reached);
    for &i in &active {
        let lit = if pm.init_values[i] {
            pm.manager.var(pm.state_vars[i])?
        } else {
            pm.manager.nvar(pm.state_vars[i])?
        };
        let next = pm.manager.and(reached, lit)?;
        pm.manager.update_protected(&mut reached, next);
    }
    let mut frontier = reached;
    pm.manager.protect(frontier);
    let quantify: Vec<u32> = active
        .iter()
        .map(|&i| pm.state_vars[i])
        .chain(pm.input_vars.iter().copied())
        .collect();
    let back_rename: Vec<(u32, u32)> = active
        .iter()
        .map(|&i| (pm.next_vars[i], pm.state_vars[i]))
        .collect();
    let mut peak = pm.live_checkpoint();

    for step in 1..=options.max_iterations {
        let bad = pm.manager.and(reached, miter)?;
        if bad != BddRef::FALSE {
            let alloc = pm.manager.stats().allocated_slots;
            return Ok((Verdict::NotEquivalent, step, peak, alloc));
        }
        let img_next = pm.manager.and_exists(frontier, transition, &quantify)?;
        let image = pm.manager.rename(img_next, &back_rename)?;
        let not_reached = pm.manager.not(reached);
        let new_states = pm.manager.and(image, not_reached)?;
        if new_states == BddRef::FALSE {
            peak = peak.max(pm.live_checkpoint());
            let alloc = pm.manager.stats().allocated_slots;
            return Ok((Verdict::Equivalent, step, peak, alloc));
        }
        let grown = pm.manager.or(reached, new_states)?;
        pm.manager.update_protected(&mut reached, grown);
        pm.manager.update_protected(&mut frontier, new_states);
        // Live accounting: collect dead traversal intermediates, then
        // sample — `peak` is the post-GC live-node high-water mark.
        peak = peak.max(pm.live_checkpoint());
    }
    let alloc = pm.manager.stats().allocated_slots;
    Ok((Verdict::Inconclusive, options.max_iterations, peak, alloc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_circuits::figure2::Figure2;
    use hash_retiming::prelude::*;

    #[test]
    fn both_variants_prove_retimed_figure2() {
        let fig = Figure2::new(3);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let basic = check_equivalence_eijk(&fig.netlist, &retimed, EijkOptions::default());
        let plus = check_equivalence_eijk_plus(&fig.netlist, &retimed, EijkOptions::default());
        assert_eq!(basic.verdict, Verdict::Equivalent, "{basic}");
        assert_eq!(plus.verdict, Verdict::Equivalent, "{plus}");
    }

    #[test]
    fn correspondence_reduces_state_space() {
        // Comparing a circuit against an identical copy: every register has
        // a corresponding twin, so Eijk+ merges them all and converges in
        // fewer or equal traversal steps than the basic variant.
        let fig = Figure2::new(4);
        let copy = Figure2::new(4);
        let basic = check_equivalence_eijk(&fig.netlist, &copy.netlist, EijkOptions::default());
        let plus = check_equivalence_eijk_plus(&fig.netlist, &copy.netlist, EijkOptions::default());
        assert_eq!(basic.verdict, Verdict::Equivalent);
        assert_eq!(plus.verdict, Verdict::Equivalent);
        assert!(plus.iterations <= basic.iterations);
    }

    #[test]
    fn differences_are_found() {
        let fig = Figure2::new(2);
        let mut wrong = Netlist::new("wrong");
        let a = wrong.add_input("a", 2);
        let b = wrong.add_input("b", 2);
        let d0 = wrong.register(a, BitVec::zero(2), "d0").unwrap();
        let inc = wrong.inc(d0, "inc").unwrap();
        let cmp = wrong.cell(CombOp::Lt, &[a, b], "cmp").unwrap();
        let d1 = wrong.register(cmp, BitVec::zero(1), "d1").unwrap();
        let y = wrong.mux(d1, inc, b, "y").unwrap();
        wrong.mark_output(y);
        let r = check_equivalence_eijk_plus(&fig.netlist, &wrong, EijkOptions::default());
        assert_eq!(r.verdict, Verdict::NotEquivalent);
    }

    #[test]
    fn options_builders_compose() {
        let o = EijkOptions::default()
            .with_node_limit(123)
            .with_max_iterations(45)
            .with_max_refinements(6)
            .with_reorder(false);
        assert_eq!(o.node_limit, 123);
        assert_eq!(o.max_iterations, 45);
        assert_eq!(o.max_refinements, 6);
        assert!(!o.reorder);
        let n = EijkOptions::new(1, 2, 3);
        assert_eq!(
            (n.node_limit, n.max_iterations, n.max_refinements, n.reorder),
            (1, 2, 3, true)
        );
    }

    #[test]
    fn node_limit_reports_resource_limit() {
        let fig = Figure2::new(10);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_equivalence_eijk(&fig.netlist, &retimed, EijkOptions::new(100, 50, 4));
        assert_eq!(r.verdict, Verdict::ResourceLimit);
    }

    #[test]
    fn peak_live_is_reported_and_modest() {
        let fig = Figure2::new(3);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_equivalence_eijk(&fig.netlist, &retimed, EijkOptions::default());
        assert_eq!(r.verdict, Verdict::Equivalent);
        let peak = r.peak_live.expect("BDD method reports peak-live");
        assert!(peak > 1, "traversal allocates nodes");
        assert!(
            peak <= EijkOptions::default().node_limit,
            "peak-live respects the budget"
        );
        // Reordering off still proves the same verdict.
        let plain = check_equivalence_eijk(
            &fig.netlist,
            &retimed,
            EijkOptions::default().with_reorder(false),
        );
        assert_eq!(plain.verdict, Verdict::Equivalent);
    }
}
