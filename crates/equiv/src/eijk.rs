//! Van-Eijk-style sequential equivalence checking.
//!
//! The paper compares against two versions of van Eijk's checker: the basic
//! one (`Eijk`) and the one "exploiting functional dependencies" (`Eijk+`,
//! the ED&TC'96 paper referenced as \[7\]). Both are specialised
//! post-synthesis verification techniques: they still traverse the product
//! state space with BDDs, but the improved version first derives register
//! correspondences by induction and uses them to shrink the state space
//! before the traversal — which is why it survives to larger circuits than
//! plain model checking, yet still blows up eventually, unlike the formal
//! synthesis approach.
//!
//! The reimplementation here follows that structure:
//!
//! * [`check_equivalence_eijk`] — product-machine reachability with a
//!   frontier-based traversal (the basic checker),
//! * [`check_equivalence_eijk_plus`] — the same traversal after an
//!   induction pass that identifies provably equivalent registers
//!   (correspondences / functional dependencies) and replaces one of each
//!   pair by the other, removing state variables.

use crate::error::{is_resource_limit, EquivError};
use crate::machine::ProductMachine;
use crate::partition::{PartitionSpec, PartitionedTransition};
use crate::result::{Verdict, VerificationResult};
use hash_bdd::BddRef;
use hash_netlist::gate::bit_blast;
use hash_netlist::prelude::*;
use std::time::{Duration, Instant};

/// Configuration shared by both van Eijk variants.
///
/// Build the options with the fluent setters — every knob is visible at
/// the call site, and the options are `Copy`, so one base configuration
/// can be specialised per run (the Table-II harness hands the same value
/// to every worker of its parallel sweep):
///
/// ```
/// use hash_equiv::prelude::*;
///
/// let base = EijkOptions::new(100_000, 500, 8).with_reorder(false);
/// let partitioned = base.partitioned(DEFAULT_CLUSTER_LIMIT);
/// assert_eq!(base.node_limit, 100_000);
/// assert_eq!(base.partition, None, "monolithic by default");
/// assert_eq!(partitioned.partition, Some(DEFAULT_CLUSTER_LIMIT));
/// assert_eq!(partitioned.monolithic().partition, None);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct EijkOptions {
    /// The budget of *live* BDD nodes: the manager garbage collects (and
    /// retries the failing operation) before reporting a blow-up, so dead
    /// intermediates and cache garbage no longer count against the limit.
    pub node_limit: usize,
    /// The maximum number of traversal steps.
    pub max_iterations: usize,
    /// The maximum number of correspondence-refinement rounds.
    pub max_refinements: usize,
    /// Whether sifting-based dynamic variable reordering is enabled.
    pub reorder: bool,
    /// `Some(cluster_limit)` switches image computation to the
    /// conjunctively partitioned transition relation with early
    /// quantification (see [`crate::partition`]); `None` (the default)
    /// keeps the monolithic relation, which remains the reference
    /// semantics.
    pub partition: Option<usize>,
    /// An optional wall-clock budget for the whole run (machine build plus
    /// traversal), checked in the BDD node constructor and reported as a
    /// [`Verdict::ResourceLimit`] of kind [`hash_bdd::ResourceKind::Time`].
    pub time_limit: Option<Duration>,
    /// Sample the post-GC live-node count only every this many traversal
    /// steps (the default 1 keeps the historical every-step behaviour).
    /// A collection clears the op cache, so long thin traversals run
    /// faster at k > 1 — at the price of a coarser `peak_live`, which can
    /// only under-report relative to k = 1 (a sample subset).
    pub gc_interval: usize,
}

impl Default for EijkOptions {
    fn default() -> Self {
        EijkOptions {
            node_limit: 2_000_000,
            max_iterations: 10_000,
            max_refinements: 64,
            reorder: true,
            partition: None,
            time_limit: None,
            gc_interval: 1,
        }
    }
}

impl EijkOptions {
    /// Creates fully explicit options (reordering on). Callers that sweep
    /// the limits (the Table-II harness, EXPERIMENTS.md reruns) use this
    /// instead of struct-literal updates so the knobs are visible at the
    /// call site.
    pub fn new(node_limit: usize, max_iterations: usize, max_refinements: usize) -> EijkOptions {
        EijkOptions {
            node_limit,
            max_iterations,
            max_refinements,
            ..EijkOptions::default()
        }
    }

    /// Enables or disables dynamic variable reordering.
    pub fn with_reorder(mut self, reorder: bool) -> EijkOptions {
        self.reorder = reorder;
        self
    }

    /// Replaces the BDD node limit.
    pub fn with_node_limit(mut self, node_limit: usize) -> EijkOptions {
        self.node_limit = node_limit;
        self
    }

    /// Replaces the traversal-step limit.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> EijkOptions {
        self.max_iterations = max_iterations;
        self
    }

    /// Replaces the correspondence-refinement limit.
    pub fn with_max_refinements(mut self, max_refinements: usize) -> EijkOptions {
        self.max_refinements = max_refinements;
        self
    }

    /// Enables partitioned image computation with the given cluster-size
    /// bound in BDD nodes ([`crate::partition::DEFAULT_CLUSTER_LIMIT`] is
    /// the harness default; `usize::MAX` degenerates to the monolithic
    /// relation computed through the partitioned engine).
    pub fn partitioned(mut self, cluster_limit: usize) -> EijkOptions {
        self.partition = Some(cluster_limit);
        self
    }

    /// Restores the default monolithic transition relation.
    pub fn monolithic(mut self) -> EijkOptions {
        self.partition = None;
        self
    }

    /// Sets a wall-clock budget for the run.
    pub fn with_time_limit(mut self, time_limit: Duration) -> EijkOptions {
        self.time_limit = Some(time_limit);
        self
    }

    /// Sets the live-node sampling cadence (clamped to at least 1).
    pub fn with_gc_interval(mut self, gc_interval: usize) -> EijkOptions {
        self.gc_interval = gc_interval.max(1);
        self
    }
}

/// The basic van Eijk checker: frontier-based symbolic product traversal.
pub fn check_equivalence_eijk(
    a: &Netlist,
    b: &Netlist,
    options: EijkOptions,
) -> VerificationResult {
    let start = Instant::now();
    match run(a, b, options, false) {
        Ok((verdict, iterations, peak, alloc)) => {
            VerificationResult::new("Eijk", verdict, start.elapsed(), iterations, alloc)
                .with_peak_live(peak)
        }
        Err(e) if is_resource_limit(&e) => {
            VerificationResult::resource_limit("Eijk", start.elapsed(), options.node_limit, &e)
        }
        Err(_) => VerificationResult::new("Eijk", Verdict::Inconclusive, start.elapsed(), 0, 0),
    }
}

/// The improved checker exploiting register correspondences / functional
/// dependencies before the traversal.
pub fn check_equivalence_eijk_plus(
    a: &Netlist,
    b: &Netlist,
    options: EijkOptions,
) -> VerificationResult {
    let start = Instant::now();
    match run(a, b, options, true) {
        Ok((verdict, iterations, peak, alloc)) => {
            VerificationResult::new("Eijk+", verdict, start.elapsed(), iterations, alloc)
                .with_peak_live(peak)
        }
        Err(e) if is_resource_limit(&e) => {
            VerificationResult::resource_limit("Eijk+", start.elapsed(), options.node_limit, &e)
        }
        Err(_) => VerificationResult::new("Eijk+", Verdict::Inconclusive, start.elapsed(), 0, 0),
    }
}

/// Computes register equivalence classes by induction: start from classes
/// grouped by initial value, then repeatedly split classes whose members'
/// next-state functions differ when every register variable is replaced by
/// its class representative variable.
fn register_correspondence(
    pm: &mut ProductMachine,
    max_refinements: usize,
) -> std::result::Result<Vec<usize>, EquivError> {
    let n = pm.state_vars.len();
    // class[i] = representative index (smallest member index of the class).
    let mut class: Vec<usize> = (0..n)
        .map(|i| {
            (0..=i)
                .find(|&j| pm.init_values[j] == pm.init_values[i])
                .unwrap_or(i)
        })
        .collect();
    for _ in 0..max_refinements {
        // Substitution: each register variable is replaced by its class
        // representative's variable (a functional composition; variable
        // nodes are pinned in the manager, so the list is GC-safe).
        let mut subs: Vec<(u32, BddRef)> = Vec::new();
        for (i, &rep_idx) in class.iter().enumerate() {
            if rep_idx != i {
                let rep = pm.manager.var(pm.state_vars[rep_idx])?;
                subs.push((pm.state_vars[i], rep));
            }
        }
        // Each substituted function is protected as soon as it exists:
        // computing the next one may trigger a collection.
        let mut substituted: Vec<BddRef> = Vec::with_capacity(n);
        for f in pm.next_fns.clone() {
            match pm.manager.compose_many(f, &subs) {
                Ok(s) => {
                    pm.manager.protect(s);
                    substituted.push(s);
                }
                Err(e) => {
                    for &s in &substituted {
                        pm.manager.unprotect(s);
                    }
                    return Err(e.into());
                }
            }
        }
        // Split classes by (old class, substituted next function) —
        // canonicity makes the id comparison a semantic one.
        let mut new_class = vec![0usize; n];
        for i in 0..n {
            let mut rep = i;
            for j in 0..i {
                if class[j] == class[i] && substituted[j] == substituted[i] {
                    rep = j;
                    break;
                }
            }
            new_class[i] = if rep == i { i } else { new_class[rep] };
        }
        for &s in &substituted {
            pm.manager.unprotect(s);
        }
        if new_class == class {
            break;
        }
        class = new_class;
    }
    Ok(class)
}

/// The image engine of the traversal: the monolithic transition relation
/// (the reference semantics) or the clustered partition with its
/// early-quantification schedule.
enum Relation {
    Monolithic {
        transition: BddRef,
        quantify: Vec<u32>,
        back_rename: Vec<(u32, u32)>,
    },
    Partitioned(PartitionedTransition),
}

/// Returns (verdict, traversal steps, post-GC peak-live nodes, allocated
/// node slots of the manager).
fn run(
    a: &Netlist,
    b: &Netlist,
    options: EijkOptions,
    exploit_dependencies: bool,
) -> std::result::Result<(Verdict, usize, usize, usize), EquivError> {
    let ga = bit_blast(a)?.netlist;
    let gb = bit_blast(b)?.netlist;
    let mut pm = ProductMachine::build_limited(
        &ga,
        &gb,
        options.node_limit,
        options.reorder,
        options.time_limit,
    )?;

    // Correspondence reduction (Eijk+ only): registers proved equivalent by
    // induction are merged, i.e. the non-representative's variable is
    // replaced by the representative's everywhere and its state variable is
    // dropped from the traversal.
    let class = if exploit_dependencies {
        register_correspondence(&mut pm, options.max_refinements)?
    } else {
        (0..pm.state_vars.len()).collect()
    };
    let mut subs: Vec<(u32, BddRef)> = Vec::new();
    for (i, &rep_idx) in class.iter().enumerate() {
        if rep_idx != i {
            let rep = pm.manager.var(pm.state_vars[rep_idx])?;
            subs.push((pm.state_vars[i], rep));
        }
    }
    if !subs.is_empty() {
        pm.substitute(&subs)?;
    }
    let active: Vec<usize> = (0..pm.state_vars.len())
        .filter(|&i| class[i] == i)
        .collect();

    // Transition relation and miter over the reduced state space. Loop
    // state is kept protected (`update_protected`) so the garbage
    // collector only ever reclaims genuinely dead intermediates.
    let relation = if let Some(cluster_limit) = options.partition {
        let state: Vec<u32> = active.iter().map(|&i| pm.state_vars[i]).collect();
        let next: Vec<u32> = active.iter().map(|&i| pm.next_vars[i]).collect();
        let fns: Vec<BddRef> = active.iter().map(|&i| pm.next_fns[i]).collect();
        Relation::Partitioned(PartitionedTransition::build(
            &mut pm.manager,
            &PartitionSpec {
                state_vars: &state,
                next_vars: &next,
                input_vars: &pm.input_vars,
                next_fns: &fns,
            },
            cluster_limit,
        )?)
    } else {
        let mut transition = pm.manager.constant(true);
        pm.manager.protect(transition);
        for &i in &active {
            let nv = pm.manager.var(pm.next_vars[i])?;
            let bi = pm.manager.xnor(nv, pm.next_fns[i])?;
            let next = pm.manager.and(transition, bi)?;
            pm.manager.update_protected(&mut transition, next);
        }
        let quantify: Vec<u32> = active
            .iter()
            .map(|&i| pm.state_vars[i])
            .chain(pm.input_vars.iter().copied())
            .collect();
        let back_rename: Vec<(u32, u32)> = active
            .iter()
            .map(|&i| (pm.next_vars[i], pm.state_vars[i]))
            .collect();
        Relation::Monolithic {
            transition,
            quantify,
            back_rename,
        }
    };
    let mut miter = pm.manager.constant(false);
    pm.manager.protect(miter);
    for (fa, fb) in pm.outputs_a.clone().iter().zip(pm.outputs_b.clone().iter()) {
        let d = pm.manager.xor(*fa, *fb)?;
        let next = pm.manager.or(miter, d)?;
        pm.manager.update_protected(&mut miter, next);
    }
    let mut reached = pm.manager.constant(true);
    pm.manager.protect(reached);
    for &i in &active {
        let lit = if pm.init_values[i] {
            pm.manager.var(pm.state_vars[i])?
        } else {
            pm.manager.nvar(pm.state_vars[i])?
        };
        let next = pm.manager.and(reached, lit)?;
        pm.manager.update_protected(&mut reached, next);
    }
    let mut frontier = reached;
    pm.manager.protect(frontier);
    let mut peak = pm.live_checkpoint();
    let gc_interval = options.gc_interval.max(1);

    for step in 1..=options.max_iterations {
        let bad = pm.manager.and(reached, miter)?;
        if bad != BddRef::FALSE {
            let alloc = pm.manager.stats().allocated_slots;
            return Ok((Verdict::NotEquivalent, step, peak, alloc));
        }
        let image = match &relation {
            Relation::Monolithic {
                transition,
                quantify,
                back_rename,
            } => {
                let img_next = pm.manager.and_exists(frontier, *transition, quantify)?;
                pm.manager.rename(img_next, back_rename)?
            }
            Relation::Partitioned(pt) => pt.image(&mut pm.manager, frontier)?,
        };
        let not_reached = pm.manager.not(reached);
        let new_states = pm.manager.and(image, not_reached)?;
        if new_states == BddRef::FALSE {
            peak = peak.max(pm.live_checkpoint());
            let alloc = pm.manager.stats().allocated_slots;
            return Ok((Verdict::Equivalent, step, peak, alloc));
        }
        let grown = pm.manager.or(reached, new_states)?;
        pm.manager.update_protected(&mut reached, grown);
        pm.manager.update_protected(&mut frontier, new_states);
        // Live accounting: collect dead traversal intermediates, then
        // sample — `peak` is the post-GC live-node high-water mark. At a
        // sampling cadence k > 1 intermediate steps skip the collection
        // (keeping the op cache warm); the sampled steps are a subset of
        // the k = 1 samples, so `peak` can only under-report vs. k = 1.
        if step % gc_interval == 0 {
            peak = peak.max(pm.live_checkpoint());
        }
    }
    let alloc = pm.manager.stats().allocated_slots;
    Ok((Verdict::Inconclusive, options.max_iterations, peak, alloc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_circuits::figure2::Figure2;
    use hash_retiming::prelude::*;

    #[test]
    fn both_variants_prove_retimed_figure2() {
        let fig = Figure2::new(3);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let basic = check_equivalence_eijk(&fig.netlist, &retimed, EijkOptions::default());
        let plus = check_equivalence_eijk_plus(&fig.netlist, &retimed, EijkOptions::default());
        assert_eq!(basic.verdict, Verdict::Equivalent, "{basic}");
        assert_eq!(plus.verdict, Verdict::Equivalent, "{plus}");
    }

    #[test]
    fn correspondence_reduces_state_space() {
        // Comparing a circuit against an identical copy: every register has
        // a corresponding twin, so Eijk+ merges them all and converges in
        // fewer or equal traversal steps than the basic variant.
        let fig = Figure2::new(4);
        let copy = Figure2::new(4);
        let basic = check_equivalence_eijk(&fig.netlist, &copy.netlist, EijkOptions::default());
        let plus = check_equivalence_eijk_plus(&fig.netlist, &copy.netlist, EijkOptions::default());
        assert_eq!(basic.verdict, Verdict::Equivalent);
        assert_eq!(plus.verdict, Verdict::Equivalent);
        assert!(plus.iterations <= basic.iterations);
    }

    #[test]
    fn differences_are_found() {
        let fig = Figure2::new(2);
        let mut wrong = Netlist::new("wrong");
        let a = wrong.add_input("a", 2);
        let b = wrong.add_input("b", 2);
        let d0 = wrong.register(a, BitVec::zero(2), "d0").unwrap();
        let inc = wrong.inc(d0, "inc").unwrap();
        let cmp = wrong.cell(CombOp::Lt, &[a, b], "cmp").unwrap();
        let d1 = wrong.register(cmp, BitVec::zero(1), "d1").unwrap();
        let y = wrong.mux(d1, inc, b, "y").unwrap();
        wrong.mark_output(y);
        let r = check_equivalence_eijk_plus(&fig.netlist, &wrong, EijkOptions::default());
        assert_eq!(r.verdict, Verdict::NotEquivalent);
    }

    #[test]
    fn options_builders_compose() {
        let o = EijkOptions::default()
            .with_node_limit(123)
            .with_max_iterations(45)
            .with_max_refinements(6)
            .with_reorder(false)
            .partitioned(789)
            .with_time_limit(Duration::from_secs(7))
            .with_gc_interval(0);
        assert_eq!(o.node_limit, 123);
        assert_eq!(o.max_iterations, 45);
        assert_eq!(o.max_refinements, 6);
        assert!(!o.reorder);
        assert_eq!(o.partition, Some(789));
        assert_eq!(o.time_limit, Some(Duration::from_secs(7)));
        assert_eq!(o.gc_interval, 1, "cadence clamps to at least 1");
        assert_eq!(o.monolithic().partition, None);
        let n = EijkOptions::new(1, 2, 3);
        assert_eq!(
            (n.node_limit, n.max_iterations, n.max_refinements, n.reorder),
            (1, 2, 3, true)
        );
        assert_eq!(
            (n.partition, n.time_limit, n.gc_interval),
            (None, None, 1),
            "monolithic every-step defaults"
        );
    }

    #[test]
    fn partitioned_traversal_agrees_with_monolithic() {
        let fig = Figure2::new(3);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let mono = check_equivalence_eijk(&fig.netlist, &retimed, EijkOptions::default());
        for cluster_limit in [1, crate::partition::DEFAULT_CLUSTER_LIMIT, usize::MAX] {
            let part = check_equivalence_eijk(
                &fig.netlist,
                &retimed,
                EijkOptions::default().partitioned(cluster_limit),
            );
            assert_eq!(part.verdict, Verdict::Equivalent, "{part}");
            assert_eq!(
                part.iterations, mono.iterations,
                "same fixpoint depth at cluster limit {cluster_limit}"
            );
        }
        // Eijk+ (partitioned over the correspondence-reduced state space)
        // still proves the identical-copy case.
        let copy = Figure2::new(3);
        let plus = check_equivalence_eijk_plus(
            &fig.netlist,
            &copy.netlist,
            EijkOptions::default().partitioned(64),
        );
        assert_eq!(plus.verdict, Verdict::Equivalent);
    }

    #[test]
    fn expired_time_limit_reports_resource_limit() {
        let fig = Figure2::new(3);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_equivalence_eijk(
            &fig.netlist,
            &retimed,
            EijkOptions::default().with_time_limit(Duration::ZERO),
        );
        assert_eq!(r.verdict, Verdict::ResourceLimit, "{r}");
        // A time blow-up says nothing about memory, so peak_live stays
        // unset (unlike a node-budget blow-up).
        assert_eq!(r.peak_live, None);
    }

    #[test]
    fn gc_sampling_cadence_is_monotone_consistent() {
        // With reordering off, the live set at any traversal step is
        // independent of the sampling cadence, and the k = 4 samples are a
        // subset of the k = 1 samples: same verdict, same step count, and
        // peak(k=4) ≤ peak(k=1).
        let fig = Figure2::new(4);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let base = EijkOptions::default().with_reorder(false);
        let k1 = check_equivalence_eijk(&fig.netlist, &retimed, base.with_gc_interval(1));
        let k4 = check_equivalence_eijk(&fig.netlist, &retimed, base.with_gc_interval(4));
        assert_eq!(k1.verdict, Verdict::Equivalent);
        assert_eq!(k4.verdict, k1.verdict);
        assert_eq!(k4.iterations, k1.iterations);
        let (p1, p4) = (k1.peak_live.unwrap(), k4.peak_live.unwrap());
        assert!(
            p4 <= p1,
            "subset sampling cannot report a higher peak ({p4} > {p1})"
        );
    }

    #[test]
    fn node_limit_reports_resource_limit() {
        let fig = Figure2::new(10);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_equivalence_eijk(&fig.netlist, &retimed, EijkOptions::new(100, 50, 4));
        assert_eq!(r.verdict, Verdict::ResourceLimit);
    }

    #[test]
    fn peak_live_is_reported_and_modest() {
        let fig = Figure2::new(3);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_equivalence_eijk(&fig.netlist, &retimed, EijkOptions::default());
        assert_eq!(r.verdict, Verdict::Equivalent);
        let peak = r.peak_live.expect("BDD method reports peak-live");
        assert!(peak > 1, "traversal allocates nodes");
        assert!(
            peak <= EijkOptions::default().node_limit,
            "peak-live respects the budget"
        );
        // Reordering off still proves the same verdict.
        let plain = check_equivalence_eijk(
            &fig.netlist,
            &retimed,
            EijkOptions::default().with_reorder(false),
        );
        assert_eq!(plain.verdict, Verdict::Equivalent);
    }
}
