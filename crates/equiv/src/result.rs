//! Verification outcomes and statistics reported by the baselines.

use std::fmt;
use std::time::Duration;

/// The verdict of a verification run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The two circuits were proved equivalent.
    Equivalent,
    /// A difference was found (with a reachable distinguishing state).
    NotEquivalent,
    /// The method gave up without an answer (e.g. induction failed) — the
    /// question marks in the paper's Table II.
    Inconclusive,
    /// The run exceeded its resource limit (BDD nodes, states or time) —
    /// the dashes in the paper's tables.
    ResourceLimit,
}

impl Verdict {
    /// Whether the verdict establishes equivalence.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Equivalent => write!(f, "equivalent"),
            Verdict::NotEquivalent => write!(f, "NOT equivalent"),
            Verdict::Inconclusive => write!(f, "inconclusive"),
            Verdict::ResourceLimit => write!(f, "resource limit"),
        }
    }
}

/// The result of a verification run: verdict plus cost statistics.
#[derive(Clone, Debug)]
pub struct VerificationResult {
    /// The verdict.
    pub verdict: Verdict,
    /// Wall-clock time of the run.
    pub duration: Duration,
    /// Number of fixed-point iterations / traversal steps.
    pub iterations: usize,
    /// Peak size of the main symbolic structure (BDD nodes) or the number
    /// of explicit states explored.
    pub peak_size: usize,
    /// A short description of the method.
    pub method: &'static str,
}

impl VerificationResult {
    /// Creates a result.
    pub fn new(
        method: &'static str,
        verdict: Verdict,
        duration: Duration,
        iterations: usize,
        peak_size: usize,
    ) -> VerificationResult {
        VerificationResult {
            verdict,
            duration,
            iterations,
            peak_size,
            method,
        }
    }
}

impl fmt::Display for VerificationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} in {:.3}s ({} iterations, peak {})",
            self.method,
            self.verdict,
            self.duration.as_secs_f64(),
            self.iterations,
            self.peak_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_method_and_verdict() {
        let r = VerificationResult::new(
            "smv",
            Verdict::Equivalent,
            Duration::from_millis(1500),
            3,
            42,
        );
        let s = r.to_string();
        assert!(s.contains("smv") && s.contains("equivalent") && s.contains("42"));
        assert!(Verdict::Equivalent.is_equivalent());
        assert!(!Verdict::Inconclusive.is_equivalent());
    }
}
