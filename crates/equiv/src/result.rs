//! Verification outcomes and statistics reported by the baselines.

use std::fmt;
use std::time::Duration;

/// The verdict of a verification run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The two circuits were proved equivalent.
    Equivalent,
    /// A difference was found (with a reachable distinguishing state).
    NotEquivalent,
    /// The method gave up without an answer (e.g. induction failed) — the
    /// question marks in the paper's Table II.
    Inconclusive,
    /// The run exceeded its resource limit (BDD nodes, states or time) —
    /// the dashes in the paper's tables.
    ResourceLimit,
}

impl Verdict {
    /// Whether the verdict establishes equivalence.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Equivalent => write!(f, "equivalent"),
            Verdict::NotEquivalent => write!(f, "NOT equivalent"),
            Verdict::Inconclusive => write!(f, "inconclusive"),
            Verdict::ResourceLimit => write!(f, "resource limit"),
        }
    }
}

/// The result of a verification run: verdict plus cost statistics.
#[derive(Clone, Debug)]
pub struct VerificationResult {
    /// The verdict.
    pub verdict: Verdict,
    /// Wall-clock time of the run.
    pub duration: Duration,
    /// Number of fixed-point iterations / traversal steps.
    pub iterations: usize,
    /// The gross footprint of the run: allocated BDD node slots of the
    /// manager (live or awaiting reuse) for the symbolic methods, or the
    /// number of explicit states explored for SIS. Compare with
    /// `peak_live` to see how much of the allocation was ever needed at
    /// once.
    pub peak_size: usize,
    /// For the BDD-based methods: the peak number of *live* manager nodes,
    /// sampled after garbage collection at each traversal step. This is
    /// the honest memory footprint — dead nodes and cache garbage are
    /// excluded — and the quantity the `node_limit` budgets.
    pub peak_live: Option<usize>,
    /// A short description of the method.
    pub method: &'static str,
}

impl VerificationResult {
    /// Creates a result.
    pub fn new(
        method: &'static str,
        verdict: Verdict,
        duration: Duration,
        iterations: usize,
        peak_size: usize,
    ) -> VerificationResult {
        VerificationResult {
            verdict,
            duration,
            iterations,
            peak_size,
            peak_live: None,
            method,
        }
    }

    /// Records the peak live-node count (BDD-based methods).
    pub fn with_peak_live(mut self, peak_live: usize) -> VerificationResult {
        self.peak_live = Some(peak_live);
        self
    }

    /// The shared blow-up report of the BDD-based methods. Only a
    /// live-node-budget error implies the manager actually held
    /// `node_limit` live nodes; a depth-guard blow-up leaves `peak_live`
    /// unset (it says nothing about memory).
    pub(crate) fn resource_limit(
        method: &'static str,
        elapsed: Duration,
        node_limit: usize,
        error: &crate::error::EquivError,
    ) -> VerificationResult {
        let r = VerificationResult::new(method, Verdict::ResourceLimit, elapsed, 0, node_limit);
        if crate::error::is_node_budget(error) {
            r.with_peak_live(node_limit)
        } else {
            r
        }
    }
}

impl fmt::Display for VerificationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} in {:.3}s ({} iterations, peak {}",
            self.method,
            self.verdict,
            self.duration.as_secs_f64(),
            self.iterations,
            self.peak_size
        )?;
        if let Some(live) = self.peak_live {
            write!(f, ", peak live {live}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_method_and_verdict() {
        let r = VerificationResult::new(
            "smv",
            Verdict::Equivalent,
            Duration::from_millis(1500),
            3,
            42,
        );
        let s = r.to_string();
        assert!(s.contains("smv") && s.contains("equivalent") && s.contains("42"));
        assert!(Verdict::Equivalent.is_equivalent());
        assert!(!Verdict::Inconclusive.is_equivalent());
        let with_live = r.with_peak_live(17);
        assert_eq!(with_live.peak_live, Some(17));
        assert!(with_live.to_string().contains("peak live 17"));
    }
}
