//! Error type for the verification baselines.

use hash_bdd::BddError;
use hash_netlist::NetlistError;
use std::fmt;

/// Errors raised by the equivalence-checking baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivError {
    /// The two circuits do not have the same interface.
    InterfaceMismatch {
        /// Description of the mismatch.
        message: String,
    },
    /// A netlist passed to a gate-level method is not gate level.
    NotGateLevel {
        /// The offending netlist (or cell).
        name: String,
    },
    /// An underlying BDD operation failed (usually the node limit).
    Bdd(BddError),
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
    /// An internal invariant was violated.
    Internal {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::InterfaceMismatch { message } => {
                write!(f, "interface mismatch: {message}")
            }
            EquivError::NotGateLevel { name } => {
                write!(f, "netlist is not gate level: {name}")
            }
            EquivError::Bdd(e) => write!(f, "BDD error: {e}"),
            EquivError::Netlist(e) => write!(f, "netlist error: {e}"),
            EquivError::Internal { message } => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for EquivError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EquivError::Bdd(e) => Some(e),
            EquivError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BddError> for EquivError {
    fn from(e: BddError) -> Self {
        EquivError::Bdd(e)
    }
}

impl From<NetlistError> for EquivError {
    fn from(e: NetlistError) -> Self {
        EquivError::Netlist(e)
    }
}

/// Whether the error represents a resource blow-up (BDD live-node budget
/// or recursion-depth guard), which the experiment harness reports as a
/// dash like the paper's tables.
pub fn is_resource_limit(e: &EquivError) -> bool {
    matches!(e, EquivError::Bdd(BddError::ResourceLimit { .. }))
}

/// Whether the error is specifically the live-node budget: only then does
/// a blow-up imply the manager actually held `node_limit` live nodes
/// (the depth guard can fire with a nearly empty manager).
pub fn is_node_budget(e: &EquivError) -> bool {
    matches!(
        e,
        EquivError::Bdd(BddError::ResourceLimit {
            resource: hash_bdd::ResourceKind::Nodes,
            ..
        })
    )
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EquivError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_classification() {
        let e: EquivError = BddError::node_limit(10).into();
        assert!(is_resource_limit(&e));
        assert!(is_node_budget(&e));
        let d: EquivError = BddError::ResourceLimit {
            resource: hash_bdd::ResourceKind::Depth,
            limit: 4,
        }
        .into();
        assert!(is_resource_limit(&d));
        assert!(!is_node_budget(&d));
        assert!(e.to_string().contains("BDD"));
        let e2: EquivError = NetlistError::UnsupportedWidth { width: 0 }.into();
        assert!(!is_resource_limit(&e2));
    }
}
