//! SIS-style explicit FSM equivalence checking.
//!
//! The paper's `SIS` column uses the finite-state-machine comparison of the
//! SIS synthesis system: the product machine of the two circuits is
//! traversed state by state (the state transition graph is effectively
//! enumerated), checking that the outputs agree in every reachable product
//! state under every input. The cost is exponential both in the number of
//! state bits (reachable states) and in the number of input bits (explicit
//! input enumeration per state), which is why the SIS column of the paper's
//! tables degrades first.

use crate::result::{Verdict, VerificationResult};
use hash_netlist::prelude::*;
use std::collections::{HashSet, VecDeque};
use std::time::Instant;

/// Configuration of the explicit traversal.
#[derive(Clone, Copy, Debug)]
pub struct SisOptions {
    /// Maximum number of distinct product states to explore.
    pub max_states: usize,
    /// Maximum number of primary-input bits that will be enumerated
    /// exhaustively (the method gives up beyond `2^max_input_bits` vectors
    /// per state).
    pub max_input_bits: u32,
}

impl Default for SisOptions {
    fn default() -> Self {
        SisOptions {
            max_states: 1 << 20,
            max_input_bits: 16,
        }
    }
}

fn state_key(state: &[BitVec]) -> Vec<u64> {
    state.iter().map(|v| v.as_u64()).collect()
}

/// Checks sequential equivalence of two RT-level circuits by explicit
/// product-machine traversal (SIS `verify_fsm` style).
pub fn check_equivalence_sis(a: &Netlist, b: &Netlist, options: SisOptions) -> VerificationResult {
    let start = Instant::now();
    let result = run(a, b, options);
    let (verdict, iterations, states) = match result {
        Ok(t) => t,
        Err(_) => (Verdict::Inconclusive, 0, 0),
    };
    VerificationResult::new("SIS", verdict, start.elapsed(), iterations, states)
}

fn run(
    a: &Netlist,
    b: &Netlist,
    options: SisOptions,
) -> std::result::Result<(Verdict, usize, usize), NetlistError> {
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return Ok((Verdict::NotEquivalent, 0, 0));
    }
    let input_bits: u32 = a.inputs().iter().map(|id| a.width(*id).unwrap_or(1)).sum();
    if input_bits > options.max_input_bits {
        return Ok((Verdict::ResourceLimit, 0, 0));
    }
    let input_vectors: Vec<Vec<BitVec>> = (0..(1u64 << input_bits))
        .map(|combo| {
            let mut offset = 0;
            a.inputs()
                .iter()
                .map(|id| {
                    let w = a.width(*id).unwrap_or(1);
                    let v = BitVec::truncate(combo >> offset, w);
                    offset += w;
                    v
                })
                .collect()
        })
        .collect();

    let mut sim_a = Simulator::new(a)?;
    let mut sim_b = Simulator::new(b)?;
    let initial = (sim_a.state().to_vec(), sim_b.state().to_vec());

    let mut visited: HashSet<(Vec<u64>, Vec<u64>)> = HashSet::new();
    let mut queue: VecDeque<(Vec<BitVec>, Vec<BitVec>)> = VecDeque::new();
    visited.insert((state_key(&initial.0), state_key(&initial.1)));
    queue.push_back(initial);
    let mut steps = 0usize;

    while let Some((sa, sb)) = queue.pop_front() {
        steps += 1;
        for inputs in &input_vectors {
            sim_a.set_state(&sa)?;
            sim_b.set_state(&sb)?;
            let oa = sim_a.step(inputs)?;
            let ob = sim_b.step(inputs)?;
            if oa != ob {
                return Ok((Verdict::NotEquivalent, steps, visited.len()));
            }
            let next = (sim_a.state().to_vec(), sim_b.state().to_vec());
            let key = (state_key(&next.0), state_key(&next.1));
            if !visited.contains(&key) {
                if visited.len() >= options.max_states {
                    return Ok((Verdict::ResourceLimit, steps, visited.len()));
                }
                visited.insert(key);
                queue.push_back(next);
            }
        }
    }
    Ok((Verdict::Equivalent, steps, visited.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_circuits::figure2::Figure2;
    use hash_retiming::prelude::*;

    #[test]
    fn retimed_figure2_is_equivalent() {
        let fig = Figure2::new(2);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_equivalence_sis(&fig.netlist, &retimed, SisOptions::default());
        assert_eq!(r.verdict, Verdict::Equivalent, "{r}");
        assert!(r.peak_size >= 1);
    }

    #[test]
    fn different_circuits_are_distinguished() {
        let fig = Figure2::new(2);
        let reference = Figure2::retimed_reference(2);
        // Sanity: the reference is equivalent...
        let ok = check_equivalence_sis(&fig.netlist, &reference, SisOptions::default());
        assert_eq!(ok.verdict, Verdict::Equivalent);
        // ...while a counter with a different width interface is rejected
        // outright and a behaviourally different circuit is refuted.
        let mut wrong = Netlist::new("wrong");
        let a = wrong.add_input("a", 2);
        let b = wrong.add_input("b", 2);
        let d0 = wrong.register(a, BitVec::zero(2), "d0").unwrap();
        let inc = wrong.inc(d0, "inc").unwrap();
        let cmp = wrong.cell(CombOp::Lt, &[a, b], "cmp").unwrap();
        let d1 = wrong.register(cmp, BitVec::zero(1), "d1").unwrap();
        let y = wrong.mux(d1, inc, b, "y").unwrap();
        wrong.mark_output(y);
        let r = check_equivalence_sis(&fig.netlist, &wrong, SisOptions::default());
        assert_eq!(r.verdict, Verdict::NotEquivalent);
    }

    #[test]
    fn input_width_limit_reports_resource_limit() {
        let fig = Figure2::new(16);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let r = check_equivalence_sis(
            &fig.netlist,
            &retimed,
            SisOptions {
                max_states: 1000,
                max_input_bits: 8,
            },
        );
        assert_eq!(r.verdict, Verdict::ResourceLimit);
    }
}
