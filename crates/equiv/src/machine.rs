//! Symbolic (BDD-based) machine representation of gate-level netlists and
//! the product machine used by the sequential equivalence baselines.
//!
//! The paper's point of comparison is that all post-synthesis verification
//! techniques must work on "flat bit-level descriptions at the gate level"
//! and represent sets of states with BDDs whose size grows with the number
//! of state bits; this module builds exactly those structures from the
//! bit-blasted netlists of [`hash_netlist::gate`].

use crate::error::{EquivError, Result};
use crate::partition::{PartitionSpec, PartitionedTransition};
use hash_bdd::{BddManager, BddRef};
use hash_netlist::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

/// A symbolic product machine of two gate-level circuits with a shared
/// input alphabet.
///
/// The machine's function vectors (`next_fns`, `outputs_a`, `outputs_b`)
/// are registered as garbage-collection roots of the manager. Values
/// *returned* by the helper methods (`initial_state`, `image`, …) are not:
/// a caller that keeps one across further BDD operations must
/// [`hash_bdd::BddManager::protect`] it (and release it when done), or it
/// may be reclaimed by an automatic collection.
#[derive(Debug)]
pub struct ProductMachine {
    /// The BDD manager holding every function of the product machine.
    pub manager: BddManager,
    /// BDD variables of the primary inputs (shared by both circuits).
    pub input_vars: Vec<u32>,
    /// Current-state BDD variables, one per register of A then B.
    pub state_vars: Vec<u32>,
    /// Next-state BDD variables, aligned with `state_vars`.
    pub next_vars: Vec<u32>,
    /// Next-state functions over current-state and input variables.
    pub next_fns: Vec<BddRef>,
    /// Initial values of the registers, aligned with `state_vars`.
    pub init_values: Vec<bool>,
    /// Output functions of circuit A (bit-level, in output order).
    pub outputs_a: Vec<BddRef>,
    /// Output functions of circuit B.
    pub outputs_b: Vec<BddRef>,
}

/// Symbolic functions of one netlist: next-state functions (register
/// order), output functions (output order), and the per-signal BDD map.
type NetlistFunctions = (Vec<BddRef>, Vec<BddRef>, BTreeMap<SignalId, BddRef>);

/// Builds the symbolic functions of a single gate-level netlist inside an
/// existing manager, given the variable assignment for its inputs and
/// register outputs.
///
/// Every signal function in the returned map is `protect`ed — the manager
/// garbage collects at operation boundaries, so anything held across a BDD
/// call must be registered as a root. The caller releases the map once the
/// functions it keeps are protected in their own right.
fn build_functions(
    manager: &mut BddManager,
    netlist: &Netlist,
    input_vars: &[u32],
    state_vars: &[u32],
) -> Result<NetlistFunctions> {
    if !netlist.is_gate_level() {
        return Err(EquivError::NotGateLevel {
            name: netlist.name().to_string(),
        });
    }
    let mut values: BTreeMap<SignalId, BddRef> = BTreeMap::new();
    for (id, var) in netlist.inputs().iter().zip(input_vars.iter()) {
        let v = manager.var(*var)?;
        manager.protect(v);
        values.insert(*id, v);
    }
    for (r, var) in netlist.registers().iter().zip(state_vars.iter()) {
        let v = manager.var(*var)?;
        manager.protect(v);
        values.insert(r.output, v);
    }
    for ci in netlist.topo_order()? {
        let cell = &netlist.cells()[ci];
        let get = |id: &SignalId| -> Result<BddRef> {
            values.get(id).copied().ok_or_else(|| EquivError::Internal {
                message: format!("missing BDD for signal {id}"),
            })
        };
        let f = match &cell.op {
            CombOp::Const(v) => manager.constant(v.is_true()),
            CombOp::Not => {
                let a = get(&cell.inputs[0])?;
                manager.not(a)
            }
            CombOp::And => {
                let a = get(&cell.inputs[0])?;
                let b = get(&cell.inputs[1])?;
                manager.and(a, b)?
            }
            CombOp::Or => {
                let a = get(&cell.inputs[0])?;
                let b = get(&cell.inputs[1])?;
                manager.or(a, b)?
            }
            CombOp::Xor => {
                let a = get(&cell.inputs[0])?;
                let b = get(&cell.inputs[1])?;
                manager.xor(a, b)?
            }
            CombOp::Mux => {
                let s = get(&cell.inputs[0])?;
                let a = get(&cell.inputs[1])?;
                let b = get(&cell.inputs[2])?;
                manager.ite(s, a, b)?
            }
            other => {
                return Err(EquivError::NotGateLevel {
                    name: format!("{}: cell {other}", netlist.name()),
                })
            }
        };
        manager.protect(f);
        values.insert(cell.output, f);
    }
    let next_fns = netlist
        .registers()
        .iter()
        .map(|r| {
            values
                .get(&r.input)
                .copied()
                .ok_or_else(|| EquivError::Internal {
                    message: "missing next-state function".to_string(),
                })
        })
        .collect::<Result<Vec<_>>>()?;
    let output_fns = netlist
        .outputs()
        .iter()
        .map(|o| {
            values.get(o).copied().ok_or_else(|| EquivError::Internal {
                message: "missing output function".to_string(),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok((next_fns, output_fns, values))
}

impl ProductMachine {
    /// Builds the product machine of two gate-level circuits. The circuits
    /// must have the same number of primary inputs and outputs (bit-level).
    ///
    /// `node_limit` budgets the *live* BDD nodes (the manager garbage
    /// collects and retries before giving up); exceeding it is reported as
    /// a resource limit by the callers. Dynamic variable reordering is on.
    ///
    /// # Errors
    ///
    /// Fails if the interfaces differ, a netlist is not gate level, or the
    /// node limit is hit while building the functions.
    pub fn build(a: &Netlist, b: &Netlist, node_limit: usize) -> Result<ProductMachine> {
        ProductMachine::build_with(a, b, node_limit, true)
    }

    /// [`ProductMachine::build`] with explicit control over dynamic
    /// variable reordering (the Table-II harness ablates it).
    ///
    /// # Errors
    ///
    /// As for [`ProductMachine::build`].
    pub fn build_with(
        a: &Netlist,
        b: &Netlist,
        node_limit: usize,
        dynamic_reordering: bool,
    ) -> Result<ProductMachine> {
        ProductMachine::build_limited(a, b, node_limit, dynamic_reordering, None)
    }

    /// [`ProductMachine::build_with`] plus an optional wall-clock budget:
    /// the deadline starts counting here (manager creation) and is checked
    /// in the BDD node constructor, so both the machine build and every
    /// later traversal step can abort with
    /// [`hash_bdd::ResourceKind::Time`].
    ///
    /// # Errors
    ///
    /// As for [`ProductMachine::build`], plus the time budget.
    pub fn build_limited(
        a: &Netlist,
        b: &Netlist,
        node_limit: usize,
        dynamic_reordering: bool,
        time_limit: Option<Duration>,
    ) -> Result<ProductMachine> {
        if a.inputs().len() != b.inputs().len() {
            return Err(EquivError::InterfaceMismatch {
                message: format!(
                    "{} has {} inputs, {} has {}",
                    a.name(),
                    a.inputs().len(),
                    b.name(),
                    b.inputs().len()
                ),
            });
        }
        if a.outputs().len() != b.outputs().len() {
            return Err(EquivError::InterfaceMismatch {
                message: format!(
                    "{} has {} outputs, {} has {}",
                    a.name(),
                    a.outputs().len(),
                    b.name(),
                    b.outputs().len()
                ),
            });
        }
        let num_inputs = a.inputs().len() as u32;
        let num_state = (a.registers().len() + b.registers().len()) as u32;
        // Initial variable order: inputs first, then interleaved
        // (current, next) pairs — a good starting point for image
        // computation; sifting refines it from there.
        let mut manager = BddManager::new(num_inputs + 2 * num_state)
            .with_node_limit(node_limit)
            .with_dynamic_reordering(dynamic_reordering);
        if let Some(limit) = time_limit {
            manager = manager.with_time_limit(limit);
        }
        let input_vars: Vec<u32> = (0..num_inputs).collect();
        let state_vars: Vec<u32> = (0..num_state).map(|i| num_inputs + 2 * i).collect();
        let next_vars: Vec<u32> = (0..num_state).map(|i| num_inputs + 2 * i + 1).collect();

        let state_a = &state_vars[..a.registers().len()];
        let state_b = &state_vars[a.registers().len()..];
        let (next_a, out_a, vals_a) = build_functions(&mut manager, a, &input_vars, state_a)?;
        let (next_b, out_b, vals_b) = build_functions(&mut manager, b, &input_vars, state_b)?;
        let mut next_fns = next_a;
        next_fns.extend(next_b);
        // The machine's functions become the GC roots; the per-signal maps
        // (which kept intermediates alive during construction) are released
        // so dead gate functions can be reclaimed.
        for &f in next_fns.iter().chain(out_a.iter()).chain(out_b.iter()) {
            manager.protect(f);
        }
        for f in vals_a.values().chain(vals_b.values()) {
            manager.unprotect(*f);
        }
        manager.collect_garbage();
        let init_values: Vec<bool> = a
            .registers()
            .iter()
            .chain(b.registers().iter())
            .map(|r| r.init.is_true())
            .collect();

        Ok(ProductMachine {
            manager,
            input_vars,
            state_vars,
            next_vars,
            next_fns,
            init_values,
            outputs_a: out_a,
            outputs_b: out_b,
        })
    }

    /// The BDD of the initial product state (a single minterm over the
    /// current-state variables).
    ///
    /// # Errors
    ///
    /// Fails only on a node-limit blow-up.
    pub fn initial_state(&mut self) -> Result<BddRef> {
        // The accumulator is protected across the loop: creating the next
        // literal may itself trigger a collection at the node budget.
        let mut acc = self.manager.constant(true);
        self.manager.protect(acc);
        for (var, value) in self.state_vars.clone().iter().zip(self.init_values.iter()) {
            let step = if *value {
                self.manager.var(*var)
            } else {
                self.manager.nvar(*var)
            }
            .and_then(|lit| self.manager.and(acc, lit));
            match step {
                Ok(next) => self.manager.update_protected(&mut acc, next),
                Err(e) => {
                    self.manager.unprotect(acc);
                    return Err(e.into());
                }
            }
        }
        self.manager.unprotect(acc);
        Ok(acc)
    }

    /// The miter: true in a (state, input) pair where some output of A
    /// differs from the corresponding output of B.
    ///
    /// # Errors
    ///
    /// Fails only on a node-limit blow-up.
    pub fn output_difference(&mut self) -> Result<BddRef> {
        let mut acc = self.manager.constant(false);
        self.manager.protect(acc);
        for (fa, fb) in self.outputs_a.iter().zip(self.outputs_b.iter()) {
            let step = self
                .manager
                .xor(*fa, *fb)
                .and_then(|diff| self.manager.or(acc, diff));
            match step {
                Ok(next) => self.manager.update_protected(&mut acc, next),
                Err(e) => {
                    self.manager.unprotect(acc);
                    return Err(e.into());
                }
            }
        }
        self.manager.unprotect(acc);
        Ok(acc)
    }

    /// The transition relation `T(state, input, next) = ∧ next_i ↔ f_i`.
    ///
    /// # Errors
    ///
    /// Fails only on a node-limit blow-up.
    pub fn transition_relation(&mut self) -> Result<BddRef> {
        let mut acc = self.manager.constant(true);
        self.manager.protect(acc);
        for (nv, f) in self.next_vars.iter().zip(self.next_fns.iter()) {
            let step = self.manager.var(*nv).and_then(|nvar| {
                let bi = self.manager.xnor(nvar, *f)?;
                self.manager.and(acc, bi)
            });
            match step {
                Ok(next) => self.manager.update_protected(&mut acc, next),
                Err(e) => {
                    self.manager.unprotect(acc);
                    return Err(e.into());
                }
            }
        }
        self.manager.unprotect(acc);
        Ok(acc)
    }

    /// The image of a state set under the transition relation, expressed
    /// over the current-state variables again.
    ///
    /// # Errors
    ///
    /// Fails only on a node-limit blow-up.
    pub fn image(&mut self, states: BddRef, transition: BddRef) -> Result<BddRef> {
        let mut quantified: Vec<u32> = self.state_vars.clone();
        quantified.extend(self.input_vars.iter().copied());
        let img_next = self.manager.and_exists(states, transition, &quantified)?;
        let rename: Vec<(u32, u32)> = self
            .next_vars
            .iter()
            .zip(self.state_vars.iter())
            .map(|(n, c)| (*n, *c))
            .collect();
        Ok(self.manager.rename(img_next, &rename)?)
    }

    /// Builds the conjunctively partitioned transition relation of the
    /// whole machine (size-bounded clustering plus early-quantification
    /// schedule; see [`crate::partition`]). The clusters are protected in
    /// the machine's manager; release them with
    /// [`PartitionedTransition::release`] or drop the machine.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit.
    pub fn partitioned_transition(
        &mut self,
        cluster_limit: usize,
    ) -> Result<PartitionedTransition> {
        PartitionedTransition::build(
            &mut self.manager,
            &PartitionSpec {
                state_vars: &self.state_vars,
                next_vars: &self.next_vars,
                input_vars: &self.input_vars,
                next_fns: &self.next_fns,
            },
            cluster_limit,
        )
    }

    /// Applies a variable substitution to every machine function (next
    /// state, outputs of A and of B), maintaining the GC-root protection:
    /// the new functions are protected before the old ones are released.
    /// Used by the van Eijk register-correspondence reduction.
    ///
    /// # Errors
    ///
    /// Fails only on a resource limit (the machine's old functions stay
    /// protected then, but the run is abandoned anyway).
    pub fn substitute(&mut self, subs: &[(u32, BddRef)]) -> Result<()> {
        fn substitute_vec(
            manager: &mut BddManager,
            fns: &mut Vec<BddRef>,
            subs: &[(u32, BddRef)],
        ) -> Result<()> {
            let mut new = Vec::with_capacity(fns.len());
            for &f in fns.iter() {
                let s = manager.compose_many(f, subs)?;
                manager.protect(s);
                new.push(s);
            }
            for &f in fns.iter() {
                manager.unprotect(f);
            }
            *fns = new;
            Ok(())
        }
        substitute_vec(&mut self.manager, &mut self.next_fns, subs)?;
        substitute_vec(&mut self.manager, &mut self.outputs_a, subs)?;
        substitute_vec(&mut self.manager, &mut self.outputs_b, subs)?;
        Ok(())
    }

    /// Collects garbage and returns the live-node count: the honest
    /// "how big is the traversal right now" sample the baselines record as
    /// peak-live.
    pub fn live_checkpoint(&mut self) -> usize {
        self.manager.collect_garbage();
        self.manager.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_netlist::gate::bit_blast;

    fn toggler(init: bool) -> Netlist {
        // q' = not q, output q.
        let mut n = Netlist::new("toggler");
        let q = n.add_signal("q", 1);
        let nq = n.not(q, "nq").unwrap();
        n.add_register(nq, q, BitVec::bit(init)).unwrap();
        n.mark_output(q);
        n
    }

    #[test]
    fn product_machine_of_togglers() {
        let a = bit_blast(&toggler(false)).unwrap().netlist;
        let b = bit_blast(&toggler(false)).unwrap().netlist;
        let mut pm = ProductMachine::build(&a, &b, 1 << 20).unwrap();
        assert_eq!(pm.state_vars.len(), 2);
        let init = pm.initial_state().unwrap();
        assert!(pm.manager.eval(init, &[false, false, false, false, false]));
        let t = pm.transition_relation().unwrap();
        let img = pm.image(init, t).unwrap();
        // From (0,0) the only successor is (1,1).
        let sat = pm.manager.any_sat(img).unwrap();
        assert!(sat[pm.state_vars[0] as usize]);
        assert!(sat[pm.state_vars[1] as usize]);
    }

    #[test]
    fn partitioned_image_matches_monolithic_through_the_machine() {
        let a = bit_blast(&toggler(false)).unwrap().netlist;
        let b = bit_blast(&toggler(true)).unwrap().netlist;
        let mut pm = ProductMachine::build(&a, &b, 1 << 20).unwrap();
        let init = pm.initial_state().unwrap();
        pm.manager.protect(init);
        let t = pm.transition_relation().unwrap();
        pm.manager.protect(t);
        let mono = pm.image(init, t).unwrap();
        pm.manager.protect(mono);
        for limit in [1usize, usize::MAX] {
            let pt = pm.partitioned_transition(limit).unwrap();
            let part = pt.image(&mut pm.manager, init).unwrap();
            assert_eq!(part, mono, "cluster limit {limit}");
            pt.release(&mut pm.manager);
        }
        pm.manager.check_invariants().unwrap();
    }

    #[test]
    fn time_limited_build_reports_the_time_budget() {
        let a = bit_blast(&toggler(false)).unwrap().netlist;
        let err = ProductMachine::build_limited(&a, &a, 1 << 20, true, Some(Duration::ZERO))
            .expect_err("expired deadline");
        assert!(matches!(
            err,
            EquivError::Bdd(hash_bdd::BddError::ResourceLimit {
                resource: hash_bdd::ResourceKind::Time,
                ..
            })
        ));
    }

    #[test]
    fn interface_mismatch_is_reported() {
        let a = bit_blast(&toggler(false)).unwrap().netlist;
        let mut other = Netlist::new("io");
        let x = other.add_input("x", 1);
        let y = other.not(x, "y").unwrap();
        other.mark_output(y);
        let err = ProductMachine::build(&a, &other, 1 << 20).unwrap_err();
        assert!(matches!(err, EquivError::InterfaceMismatch { .. }));
    }

    #[test]
    fn rt_level_netlists_are_rejected() {
        let mut n = Netlist::new("rt");
        let x = n.add_input("x", 4);
        let y = n.inc(x, "y").unwrap();
        n.mark_output(y);
        let err = ProductMachine::build(&n, &n, 1 << 20).unwrap_err();
        assert!(matches!(err, EquivError::NotGateLevel { .. }));
    }
}
