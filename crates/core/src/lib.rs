//! # hash-core
//!
//! The primary contribution of the DATE'97 paper *"A Constructive Approach
//! towards Correctness of Synthesis — Application within Retiming"*:
//! **formal synthesis** of retimed circuits, where the synthesis step is a
//! logical derivation and its result is a machine-checked theorem
//! `⊢ automaton(original) = automaton(retimed)`.
//!
//! * [`retiming_thm`] derives the universal retiming theorem once and for
//!   all from the Automata theory's induction axiom — the work of the
//!   formal-synthesis-tool designer.
//! * [`synthesis`] provides the [`struct@Hash`] engine: the
//!   four-step retiming procedure driven by untrusted heuristics
//!   (`hash-retiming`), compound synthesis steps by transitivity, and the
//!   "faulty heuristics cannot compromise correctness" behaviour.
//!
//! ## Example
//!
//! ```
//! use hash_circuits::figure2::Figure2;
//! use hash_core::prelude::*;
//!
//! # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
//! let mut hash = Hash::new()?;
//! let fig = Figure2::new(8);
//! let result = hash.formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())?;
//! // The correctness theorem produced by the kernel:
//! assert!(result.theorem.is_closed());
//! // The new initial value of the shifted register is f(0) = 1.
//! assert_eq!(result.new_initial_values[0].as_u64(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod retiming_thm;
pub mod synthesis;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::error::{HashError, Result};
    pub use crate::retiming_thm::{derive_retiming_theorem, RetimingTheorem};
    pub use crate::synthesis::{FormalRetiming, Hash, RetimeOptions};
}

pub use error::HashError;
pub use retiming_thm::RetimingTheorem;
pub use synthesis::{FormalRetiming, Hash, RetimeOptions};
