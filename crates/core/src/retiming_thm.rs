//! Derivation of the universal retiming theorem (`RETIMING_THM`).
//!
//! The paper's Fig. 1 sketches a general pattern: a circuit whose
//! combinational part splits into a block `f` (over which the registers
//! are shifted) and a block `g` (untouched) is equivalent to the circuit
//! where the registers sit after `f` and start at `f(q)`:
//!
//! ```text
//! ⊢ automaton (\i s. g i (f s)) q
//!   = automaton (\i x. (fst (g i x), f (snd (g i x)))) (f q)
//! ```
//!
//! The paper emphasises that proving this theorem is "tedious and cannot be
//! automated (induction over time etc.), however it has only to be proved
//! once and for all". This module performs that one-time derivation: the
//! theorem is obtained from the `AUTOMATON_BISIM` induction axiom of the
//! Automata theory purely by kernel inference rules (specialisation,
//! beta conversion, the pair projection axioms, congruence, conjunction,
//! discharge and generalisation), instantiating the bisimulation relation
//! with `R s₁ s₂  :=  (s₂ = f s₁)`.

use crate::error::Result;
use hash_automata::theory::{comb_ty, mk_automaton, AutomataTheory};
use hash_logic::bool::{dest_conj, dest_forall, dest_imp, BoolTheory};
use hash_logic::conv::beta_spine_thm;
use hash_logic::pair::{mk_fst, mk_pair, mk_snd, PairTheory};
use hash_logic::prelude::*;

/// The universal retiming theorem together with the free variables used to
/// instantiate it for a concrete circuit.
#[derive(Clone, Debug)]
pub struct RetimingTheorem {
    /// `⊢ automaton (\i s. g i (f s)) q = automaton (...) (f q)`, with free
    /// variables `f`, `g`, `q` and type variables `'i`, `'o`, `'s`, `'t`.
    pub theorem: Theorem,
    /// The free variable `f : 's -> 't` (the block the registers move over).
    pub f_var: Var,
    /// The free variable `g : 'i -> 't -> ('o # 's)` (the untouched block).
    pub g_var: Var,
    /// The free variable `q : 's` (the original initial state).
    pub q_var: Var,
}

/// Derives the universal retiming theorem from the `AUTOMATON_BISIM` axiom.
///
/// # Errors
///
/// Fails only if one of the underlying theories was installed incorrectly;
/// with the standard installation the derivation always succeeds.
pub fn derive_retiming_theorem(
    bools: &BoolTheory,
    pairs: &PairTheory,
    automata: &AutomataTheory,
) -> Result<RetimingTheorem> {
    let ity = Type::var("i");
    let oty = Type::var("o");
    let sty = Type::var("s");
    let tty = Type::var("t");

    let f_var = Var::new("f", Type::fun(sty.clone(), tty.clone()));
    let g_var = Var::new(
        "g",
        Type::fun(
            ity.clone(),
            Type::fun(tty.clone(), Type::prod(oty.clone(), sty.clone())),
        ),
    );
    let q_var = Var::new("q", sty.clone());

    // R = \a b. b = f a
    let a = Var::new("a", sty.clone());
    let b = Var::new("b", tty.clone());
    let r_term = mk_abs(
        &a,
        &mk_abs(&b, &mk_eq(&b.term(), &mk_comb(&f_var.term(), &a.term())?)?),
    );
    // c1 = \i s. g i (f s)
    let iv = Var::new("i", ity.clone());
    let sv = Var::new("s", sty.clone());
    let c1_term = mk_abs(
        &iv,
        &mk_abs(
            &sv,
            &mk_comb(
                &mk_comb(&g_var.term(), &iv.term())?,
                &mk_comb(&f_var.term(), &sv.term())?,
            )?,
        ),
    );
    // c2 = \i x. (fst (g i x), f (snd (g i x)))
    let xv = Var::new("x", tty.clone());
    let gix = mk_comb(&mk_comb(&g_var.term(), &iv.term())?, &xv.term())?;
    let c2_term = mk_abs(
        &iv,
        &mk_abs(
            &xv,
            &mk_pair(&mk_fst(&gix)?, &mk_comb(&f_var.term(), &mk_snd(&gix)?)?)?,
        ),
    );
    let fq = mk_comb(&f_var.term(), &q_var.term())?;

    // Sanity: the two combinational functions have the expected types.
    debug_assert_eq!(c1_term.ty(), comb_ty(&ity, &sty, &oty));
    debug_assert_eq!(c2_term.ty(), comb_ty(&ity, &tty, &oty));

    // Specialise the bisimulation axiom.
    let th0 = bools.spec_list(
        &[r_term, c1_term, c2_term, q_var.term(), fq],
        &automata.bisim_axiom,
    )?;
    let (premise_target, _conclusion) = dest_imp(th0.concl())?;
    let (p1_target, p2_target) = dest_conj(&premise_target)?;

    // --- P1: R q (f q), which beta-reduces to f q = f q ---------------------
    let spine_p1 = beta_spine_thm(&p1_target)?;
    let p1_thm = Theorem::eq_mp(&spine_p1.sym()?, &Theorem::refl(&fq)?)?;

    // --- P2: ∀ i s1 s2. R s1 s2 ==> out-equality ∧ R (next1) (next2) --------
    let (v_i, body1) = dest_forall(&p2_target)?;
    let (v_s1, body2) = dest_forall(&body1)?;
    let (v_s2, body3) = dest_forall(&body2)?;
    let (ante, conseq) = dest_imp(&body3)?;
    let (a_target, b_target) = dest_conj(&conseq)?;

    // Hypothesis: s2 = f s1.
    let assume_ante = Theorem::assume(&ante)?;
    let spine_ante = beta_spine_thm(&ante)?;
    let h = Theorem::eq_mp(&spine_ante, &assume_ante)?;

    // Destruct the targets to reuse their exact sub-terms.
    let (lhs_a, rhs_a) = a_target.dest_eq()?;
    let (fst_c1, c1_app) = lhs_a.dest_comb()?;
    let (fst_c2, c2_app) = rhs_a.dest_comb()?;

    // fst (c1 i s1) = fst (g i (f s1))
    let spine_c1 = beta_spine_thm(&c1_app)?;
    let th_l = Theorem::ap_term(&fst_c1, &spine_c1)?;
    // fst (c2 i s2) = fst (g i s2)
    let spine_c2 = beta_spine_thm(&c2_app)?;
    let th_r1 = Theorem::ap_term(&fst_c2, &spine_c2)?;
    let (_, fst_pair_term) = th_r1.dest_eq()?;
    let th_r2 = hash_logic::conv::rewr_conv(&pairs.fst_pair, &fst_pair_term)?;
    let th_r = Theorem::trans(&th_r1, &th_r2)?;
    // fst (g i s2) = fst (g i (f s1))   (congruence with the hypothesis)
    let (_, fst_gis2) = th_r.dest_eq()?;
    let (fst_inst, gis2) = fst_gis2.dest_comb()?;
    let (gi, _) = gis2.dest_comb()?;
    let cong_g = Theorem::ap_term(&gi, &h)?;
    let cong_fst = Theorem::ap_term(&fst_inst, &cong_g)?;
    // fst (c1 i s1) = fst (c2 i s2)
    let chain2 = Theorem::trans(&th_r, &cong_fst)?;
    let a_thm = Theorem::trans(&th_l, &chain2.sym()?)?;

    // B: R (snd (c1 i s1)) (snd (c2 i s2)), reduced form
    //    snd (c2 i s2) = f (snd (c1 i s1)).
    let spine_b = beta_spine_thm(&b_target)?;
    let (_, reduced_b) = spine_b.dest_eq()?;
    let (lhs_b, rhs_b) = reduced_b.dest_eq()?;
    // lhs_b = snd (c2 i s2), rhs_b = f (snd (c1 i s1)).
    let (snd_c2, _) = lhs_b.dest_comb()?;
    let th1 = Theorem::ap_term(&snd_c2, &spine_c2)?;
    let (_, snd_pair_term) = th1.dest_eq()?;
    let th2 = hash_logic::conv::rewr_conv(&pairs.snd_pair, &snd_pair_term)?;
    // th2 rhs is  f (snd (g i s2)).
    let (_, f_snd_gis2) = th2.dest_eq()?;
    let (f_head, snd_gis2) = f_snd_gis2.dest_comb()?;
    let (snd_inst, _) = snd_gis2.dest_comb()?;
    let th3 = Theorem::ap_term(&f_head, &Theorem::ap_term(&snd_inst, &cong_g)?)?;
    // f (snd (g i (f s1))) = f (snd (c1 i s1))
    let th4 = Theorem::ap_term(&f_head, &Theorem::ap_term(&snd_inst, &spine_c1.sym()?)?)?;
    let target_eq = Theorem::trans_chain(&[th1, th2, th3, th4])?;
    // Sanity: the derived equation matches the reduced target shape.
    debug_assert!(target_eq.concl().dest_eq()?.1.aconv(&rhs_b));
    let b_thm = Theorem::eq_mp(&spine_b.sym()?, &target_eq)?;

    let conj_thm = bools.conj(&a_thm, &b_thm)?;
    let imp_thm = bools.disch(&ante, &conj_thm)?;
    let p2_thm = bools.gen_list(&[v_i, v_s1, v_s2], &imp_thm)?;

    // --- Combine and apply modus ponens --------------------------------------
    let premise_thm = bools.conj(&p1_thm, &p2_thm)?;
    let theorem = bools.mp(&th0, &premise_thm)?;

    // The conclusion has exactly the advertised shape.
    let expected_lhs = mk_automaton(&c1_term, &q_var.term())?;
    debug_assert!(theorem.concl().dest_eq()?.0.aconv(&expected_lhs));
    let _ = &expected_lhs;

    Ok(RetimingTheorem {
        theorem,
        f_var,
        g_var,
        q_var,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_automata::theory::dest_automaton;

    fn setup() -> (Theory, BoolTheory, PairTheory, AutomataTheory) {
        let mut thy = Theory::new();
        let b = BoolTheory::install(&mut thy).unwrap();
        let p = PairTheory::install(&mut thy).unwrap();
        let a = AutomataTheory::install(&mut thy).unwrap();
        (thy, b, p, a)
    }

    #[test]
    fn retiming_theorem_derives_and_is_closed() {
        let (_, b, p, a) = setup();
        let rt = derive_retiming_theorem(&b, &p, &a).expect("derivation succeeds");
        assert!(rt.theorem.is_closed(), "no leftover hypotheses");
        let (lhs, rhs) = rt.theorem.concl().dest_eq().unwrap();
        // Both sides are automaton terms.
        let (c1, q1) = dest_automaton(&lhs).unwrap();
        let (c2, q2) = dest_automaton(&rhs).unwrap();
        assert!(q1.aconv(&rt.q_var.term()));
        // The retimed initial state is f q.
        let (fh, fa) = q2.dest_comb().unwrap();
        assert!(fh.aconv(&rt.f_var.term()));
        assert!(fa.aconv(&rt.q_var.term()));
        // The free variables of the theorem are exactly f, g and q.
        let mut frees = rt.theorem.concl().free_vars();
        frees.sort();
        let mut expected = vec![rt.f_var.clone(), rt.g_var.clone(), rt.q_var.clone()];
        expected.sort();
        assert_eq!(frees, expected);
        let _ = (c1.ty(), c2.ty());
    }

    #[test]
    fn theorem_instantiates_at_concrete_types() {
        let (_, b, p, a) = setup();
        let rt = derive_retiming_theorem(&b, &p, &a).unwrap();
        let mut subst = TypeSubst::new();
        subst.insert("i".into(), Type::bv(4));
        subst.insert("o".into(), Type::bv(4));
        subst.insert("s".into(), Type::bv(8));
        subst.insert("t".into(), Type::bv(8));
        let inst = rt.theorem.inst_type(&subst);
        assert!(inst.is_closed());
        let (lhs, _) = inst.concl().dest_eq().unwrap();
        let (_, q) = dest_automaton(&lhs).unwrap();
        assert_eq!(q.ty(), Type::bv(8));
    }

    #[test]
    fn derivation_uses_only_the_documented_axioms() {
        let (thy, b, p, a) = setup();
        let _ = derive_retiming_theorem(&b, &p, &a).unwrap();
        let names: Vec<&str> = thy.axioms().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["FST_PAIR", "SND_PAIR", "PAIR_ETA", "AUTOMATON_BISIM"]
        );
    }
}
