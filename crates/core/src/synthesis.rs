//! The HASH formal synthesis engine: correct-by-construction retiming.
//!
//! [`struct@Hash`] bundles the logical theories (boolean, pair, Automata) and the
//! once-derived universal retiming theorem, and exposes the formal
//! synthesis steps of the paper:
//!
//! * [`Hash::formal_retime`] — the four-step retiming procedure of
//!   Section IV-A: split the combinational part along the cut, apply the
//!   universal retiming theorem, (optionally) join the parts again, and
//!   evaluate the new initial state `f(q)`. The result is a kernel
//!   [`Theorem`] equating the original and the retimed circuit terms,
//!   together with the retimed netlist.
//! * [`Hash::join_step_of`] — the logic-simplification step used to
//!   demonstrate *compound* synthesis steps (two theorems composed by a
//!   constant-cost transitivity, Section III-A).
//! * [`Hash::compound`] — composition of synthesis theorems by
//!   transitivity.
//!
//! A faulty cut never produces an incorrect theorem: it makes the
//! procedure fail with an error (Section IV-C), which is tested in
//! `tests/faulty_cut.rs` and demonstrated by `examples/faulty_cut.rs`.

use crate::error::{HashError, Result};
use crate::retiming_thm::{derive_retiming_theorem, RetimingTheorem};
use hash_automata::encode::{encode_split, literal_tuple_values, SplitEncoding};
use hash_automata::theory::{dest_automaton, eval_ground, AutomataTheory};
use hash_logic::conv::inst_theorem;
use hash_logic::prelude::*;
use hash_netlist::prelude::*;
use hash_retiming::prelude::{forward_retime, maximal_forward_cut, Cut};
use std::time::{Duration, Instant};

/// The result of a formal retiming step.
#[derive(Clone, Debug)]
pub struct FormalRetiming {
    /// The correctness theorem: `⊢ automaton comb q = automaton comb' q'`.
    pub theorem: Theorem,
    /// The retimed netlist (produced by the conventional move and
    /// cross-checked against the theorem's new initial values).
    pub retimed: Netlist,
    /// The term-level encoding of the original circuit along the cut.
    pub encoding: SplitEncoding,
    /// The new initial values of the shifted registers, as computed *by the
    /// kernel* (step 4, `f(q)`), in mid-tuple order.
    pub new_initial_values: Vec<BitVec>,
    /// Wall-clock time of the formal derivation only (excluding the
    /// conventional netlist manipulation).
    pub derivation_time: Duration,
}

/// Options controlling the formal retiming step.
#[derive(Clone, Copy, Debug, Default)]
pub struct RetimeOptions {
    /// Re-normalise ("join") the retimed combinational term — the paper's
    /// step 3. Joining expands the let-bound structure, so it is only
    /// advisable for small circuits; the theorem is equally valid without
    /// it.
    pub join_parts: bool,
}

/// The HASH formal synthesis engine.
pub struct Hash {
    theory: Theory,
    bools: BoolTheory,
    pairs: PairTheory,
    automata: AutomataTheory,
    retiming: RetimingTheorem,
}

impl Hash {
    /// Installs the logical theories and derives the universal retiming
    /// theorem (the "once and for all" work of the formal-synthesis-tool
    /// designer).
    ///
    /// # Errors
    ///
    /// Fails only if the theories cannot be installed (which does not
    /// happen for a fresh [`Theory`]).
    pub fn new() -> Result<Hash> {
        let mut theory = Theory::new();
        let bools = BoolTheory::install(&mut theory)?;
        let pairs = PairTheory::install(&mut theory)?;
        let automata = AutomataTheory::install(&mut theory)?;
        let retiming = derive_retiming_theorem(&bools, &pairs, &automata)?;
        Ok(Hash {
            theory,
            bools,
            pairs,
            automata,
            retiming,
        })
    }

    /// The universal retiming theorem (derived once at construction).
    pub fn retiming_theorem(&self) -> &Theorem {
        &self.retiming.theorem
    }

    /// The underlying logical theory (axioms, definitions, computation
    /// rules) — useful for auditing the trust base.
    pub fn theory(&self) -> &Theory {
        &self.theory
    }

    /// The boolean derived-rule layer.
    pub fn bools(&self) -> &BoolTheory {
        &self.bools
    }

    /// The pair theory.
    pub fn pairs(&self) -> &PairTheory {
        &self.pairs
    }

    /// The Automata theory.
    pub fn automata(&self) -> &AutomataTheory {
        &self.automata
    }

    /// Performs the formal retiming step for the given cut.
    ///
    /// # Errors
    ///
    /// Fails (without producing any theorem) if the cut does not match the
    /// universal pattern — the paper's "faulty heuristics" case — or if the
    /// circuit cannot be encoded.
    pub fn formal_retime(
        &mut self,
        netlist: &Netlist,
        cut: &Cut,
        options: RetimeOptions,
    ) -> Result<FormalRetiming> {
        let start = Instant::now();

        // Step 1: split the combinational part into f and g along the cut.
        let encoding = encode_split(&mut self.theory, netlist, cut)?;

        // Step 2: apply the universal retiming theorem by instantiation.
        let mut type_subst = TypeSubst::new();
        type_subst.insert("i".into(), encoding.input_ty.clone());
        type_subst.insert("o".into(), encoding.output_ty.clone());
        type_subst.insert("s".into(), encoding.state_ty.clone());
        type_subst.insert("t".into(), encoding.mid_ty.clone());
        let term_subst: TermSubst = vec![
            (self.retiming.f_var.clone(), encoding.f_term),
            (self.retiming.g_var.clone(), encoding.g_term),
            (self.retiming.q_var.clone(), encoding.init_term),
        ];
        let mut theorem = inst_theorem(&self.retiming.theorem, &type_subst, &term_subst)?;

        // The instantiated left-hand side is exactly the encoded circuit.
        let (lhs, _) = theorem.dest_eq()?;
        if !lhs.aconv(&encoding.circuit_term) {
            return Err(HashError::CrossCheck {
                message: "instantiated theorem does not match the encoded circuit".to_string(),
            });
        }

        // Step 3 (optional): join f and g into a single combinational part.
        if options.join_parts {
            theorem = Theorem::trans(&theorem, &self.join_step_of(&theorem)?)?;
        }

        // Step 4: evaluate the new initial state f(q).
        let (_, rhs) = theorem.dest_eq()?;
        let (_, fq_term) = dest_automaton(&rhs)?;
        let eval_thm = eval_ground(&self.theory, &self.pairs, &fq_term)?;
        let (rhs_rator, _) = rhs.dest_comb()?;
        let rhs_update = Theorem::ap_term(&rhs_rator, &eval_thm)?;
        theorem = Theorem::trans(&theorem, &rhs_update)?;

        let derivation_time = start.elapsed();

        // Extract the kernel-computed initial values and cross-check them
        // against the conventional netlist transformation.
        let (_, final_rhs) = theorem.dest_eq()?;
        let (_, new_init_term) = dest_automaton(&final_rhs)?;
        let new_initial_values = literal_tuple_values(&new_init_term)?;
        let retimed = forward_retime(netlist, cut)?;
        self.cross_check(&encoding, &new_initial_values, &retimed)?;

        Ok(FormalRetiming {
            theorem,
            retimed,
            encoding,
            new_initial_values,
            derivation_time,
        })
    }

    /// Performs the formal retiming step using the maximal forward cut
    /// chosen automatically by the (untrusted) heuristics — the fully
    /// automatic flow of the paper's experiments.
    ///
    /// # Errors
    ///
    /// Fails if no retimable block exists or the derivation fails.
    pub fn formal_retime_auto(
        &mut self,
        netlist: &Netlist,
        options: RetimeOptions,
    ) -> Result<FormalRetiming> {
        let cut = maximal_forward_cut(netlist);
        if cut.is_empty() {
            return Err(HashError::Retiming(hash_retiming::RetimingError::BadCut {
                message: "no retimable block exists".to_string(),
            }));
        }
        self.formal_retime(netlist, &cut, options)
    }

    /// The "join" / logic-simplification step: given a synthesis theorem
    /// `⊢ a = automaton c q`, derives `⊢ automaton c q = automaton c' q`
    /// where `c'` is the beta/projection normal form of `c`.
    ///
    /// # Errors
    ///
    /// Fails if the right-hand side is not an automaton term.
    pub fn join_step_of(&self, theorem: &Theorem) -> Result<Theorem> {
        let (_, rhs) = theorem.dest_eq()?;
        let (comb, init) = dest_automaton(&rhs)?;
        let mut rw = Rewriter::new().with_max_passes(100_000);
        rw.add_eqs(&self.pairs.projection_eqs())?;
        let conv = rw.rewrite(&comb)?;
        let (automaton_partial, _) = rhs.dest_comb()?;
        let (automaton_const, _) = automaton_partial.dest_comb()?;
        let cong = Theorem::ap_term(&automaton_const, &conv)?;
        Ok(Theorem::ap_thm(&cong, &init)?)
    }

    /// Composes two synthesis theorems `⊢ a = b` and `⊢ b = c` into the
    /// compound step `⊢ a = c`. The cost is a single transitivity rule —
    /// the paper's argument for why combined synthesis steps stay cheap.
    ///
    /// # Errors
    ///
    /// Fails if the middle terms do not match.
    pub fn compound(&self, first: &Theorem, second: &Theorem) -> Result<Theorem> {
        Ok(Theorem::trans(first, second)?)
    }

    /// Verifies that the kernel-computed initial values agree with the
    /// conventional netlist transformation.
    fn cross_check(
        &self,
        encoding: &SplitEncoding,
        kernel_values: &[BitVec],
        retimed: &Netlist,
    ) -> Result<()> {
        // Kernel value tuple order: cut outputs first, then kept registers.
        // In the retimed netlist the kept registers come first (in original
        // order) and the new registers (one per cut output) are appended.
        let kept = encoding.kept_registers.len();
        let cut_outputs = encoding.cut_outputs.len();
        if kernel_values.len() != kept + cut_outputs {
            return Err(HashError::CrossCheck {
                message: format!(
                    "kernel produced {} initial values, expected {}",
                    kernel_values.len(),
                    kept + cut_outputs
                ),
            });
        }
        let new_regs = &retimed.registers()[retimed.registers().len() - cut_outputs..];
        for (k, reg) in new_regs.iter().enumerate() {
            let kernel = kernel_values[k];
            if reg.init != kernel {
                return Err(HashError::CrossCheck {
                    message: format!(
                        "register {k}: kernel computed {kernel}, conventional retiming {}",
                        reg.init
                    ),
                });
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Hash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hash")
            .field("theory", &self.theory)
            .field(
                "retiming_theorem",
                &self.retiming.theorem.concl().to_string(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_circuits::figure2::Figure2;
    use hash_netlist::sim::{random_stimuli, traces_equal};

    #[test]
    fn formal_retime_figure2() {
        let mut hash = Hash::new().unwrap();
        let fig = Figure2::new(8);
        let result = hash
            .formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
            .unwrap();
        // The theorem is closed and equates two automaton terms.
        assert!(result.theorem.is_closed());
        let (lhs, rhs) = result.theorem.concl().dest_eq().unwrap();
        assert!(lhs.head_is_const("automaton"));
        assert!(rhs.head_is_const("automaton"));
        // The kernel computed f(q) = (1, 0).
        assert_eq!(result.new_initial_values[0].as_u64(), 1);
        // The retimed netlist behaves identically.
        let stim = random_stimuli(&fig.netlist, 50, 11);
        assert!(traces_equal(&fig.netlist, &result.retimed, &stim).unwrap());
    }

    #[test]
    fn formal_retime_with_join_step() {
        let mut hash = Hash::new().unwrap();
        let fig = Figure2::new(4);
        let joined = hash
            .formal_retime(
                &fig.netlist,
                &fig.correct_cut(),
                RetimeOptions { join_parts: true },
            )
            .unwrap();
        assert!(joined.theorem.is_closed());
        // Joining must not change the computed initial values.
        assert_eq!(joined.new_initial_values[0].as_u64(), 1);
    }

    #[test]
    fn faulty_cut_produces_no_theorem() {
        let mut hash = Hash::new().unwrap();
        let fig = Figure2::new(8);
        let err = hash
            .formal_retime(&fig.netlist, &fig.false_cut(), RetimeOptions::default())
            .unwrap_err();
        assert!(matches!(err, HashError::Logic(_)), "{err}");
    }

    #[test]
    fn compound_step_composes_by_transitivity() {
        let mut hash = Hash::new().unwrap();
        let fig = Figure2::new(4);
        let step1 = hash
            .formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
            .unwrap();
        let step2 = hash.join_step_of(&step1.theorem).unwrap();
        let compound = hash.compound(&step1.theorem, &step2).unwrap();
        assert!(compound.is_closed());
        let (lhs, _) = compound.concl().dest_eq().unwrap();
        assert!(lhs.aconv(&step1.encoding.circuit_term));
    }

    #[test]
    fn automatic_flow_uses_the_heuristic_cut() {
        let mut hash = Hash::new().unwrap();
        let fig = Figure2::new(6);
        let result = hash
            .formal_retime_auto(&fig.netlist, RetimeOptions::default())
            .unwrap();
        assert!(result.theorem.is_closed());
        // A purely combinational circuit has no retimable block.
        let mut comb = Netlist::new("comb");
        let a = comb.add_input("a", 2);
        let b = comb.not(a, "b").unwrap();
        comb.mark_output(b);
        assert!(hash
            .formal_retime_auto(&comb, RetimeOptions::default())
            .is_err());
    }

    #[test]
    fn trust_base_stays_fixed_across_runs() {
        let mut hash = Hash::new().unwrap();
        let before = hash.theory().axioms().len();
        for n in [2u32, 4, 8] {
            let fig = Figure2::new(n);
            hash.formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
                .unwrap();
        }
        assert_eq!(
            hash.theory().axioms().len(),
            before,
            "formal synthesis must not add axioms"
        );
    }
}
