//! Error type for the HASH formal synthesis layer.

use hash_logic::LogicError;
use hash_netlist::NetlistError;
use hash_retiming::RetimingError;
use std::fmt;

/// Errors raised by the formal synthesis procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HashError {
    /// A kernel-level derivation failed (this is the *safe* failure mode:
    /// no theorem is produced, so no incorrect circuit can be derived).
    Logic(LogicError),
    /// The conventional netlist manipulation failed.
    Netlist(NetlistError),
    /// The retiming heuristics rejected the requested transformation.
    Retiming(RetimingError),
    /// The formal and the conventional result disagree — this would indicate
    /// a bug in the *conventional* path (the theorem cannot be wrong).
    CrossCheck {
        /// Description of the disagreement.
        message: String,
    },
}

impl fmt::Display for HashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HashError::Logic(e) => write!(f, "formal derivation failed: {e}"),
            HashError::Netlist(e) => write!(f, "netlist error: {e}"),
            HashError::Retiming(e) => write!(f, "retiming error: {e}"),
            HashError::CrossCheck { message } => write!(f, "cross-check failed: {message}"),
        }
    }
}

impl std::error::Error for HashError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HashError::Logic(e) => Some(e),
            HashError::Netlist(e) => Some(e),
            HashError::Retiming(e) => Some(e),
            HashError::CrossCheck { .. } => None,
        }
    }
}

impl From<LogicError> for HashError {
    fn from(e: LogicError) -> Self {
        HashError::Logic(e)
    }
}

impl From<NetlistError> for HashError {
    fn from(e: NetlistError) -> Self {
        HashError::Netlist(e)
    }
}

impl From<RetimingError> for HashError {
    fn from(e: RetimingError) -> Self {
        HashError::Retiming(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, HashError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: HashError = LogicError::match_failure("no").into();
        assert!(e.to_string().contains("formal derivation failed"));
        let e2: HashError = NetlistError::UnsupportedWidth { width: 0 }.into();
        assert!(e2.to_string().contains("netlist"));
        let e3 = HashError::CrossCheck {
            message: "oops".into(),
        };
        assert!(e3.to_string().contains("oops"));
    }
}
