//! # hash-bench
//!
//! The experiment harness of the reproduction: it regenerates every table
//! and figure of the paper's evaluation section (see DESIGN.md for the
//! experiment index and EXPERIMENTS.md for recorded results).
//!
//! * [`table1`] — the scalable Figure-2 example swept over the bit width,
//!   comparing SIS-style FSM comparison, SMV-style model checking and the
//!   HASH formal retiming (paper Table I).
//! * [`table2`] — the IWLS'91-style benchmark suite, comparing van Eijk's
//!   checkers, SIS and HASH (paper Table II).
//! * [`scaling`] — the multiplier-family scaling factors discussed in
//!   Section V.
//! * [`ablation`] — additional studies: HASH cost versus cut size and
//!   compound-step composition cost.
//!
//! Each module returns plain rows that the `table1`/`table2`/`scaling`/
//! `ablation_*` binaries print as text tables.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use hash_core::prelude::*;
use hash_equiv::prelude::*;
use hash_netlist::prelude::*;
use hash_retiming::prelude::*;
use std::time::{Duration, Instant};

/// How a verification/synthesis run ended, with its wall-clock time and —
/// for the iterative BDD-based checkers — its deterministic cost columns
/// (traversal steps and post-GC peak-live nodes). The deterministic
/// columns are what the parallel and sequential Table-II drivers must
/// agree on byte-for-byte; only `seconds` varies between runs.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Seconds of wall-clock time.
    pub seconds: f64,
    /// A short status: `ok`, `limit` (resource blow-up, printed as a dash in
    /// the paper), `fail` or `n/a`.
    pub status: &'static str,
    /// Fixed-point iterations / traversal steps of the run (0 for methods
    /// that do not iterate, e.g. the HASH synthesis step).
    pub steps: usize,
    /// Peak *live* BDD nodes, sampled post-GC (BDD-based methods only).
    pub peak_live: Option<usize>,
}

impl Timing {
    fn ok(d: Duration) -> Timing {
        Timing::flat(d.as_secs_f64(), "ok")
    }

    /// A timing with no iteration/peak statistics (non-BDD methods and
    /// failure paths that never reached the traversal).
    fn flat(seconds: f64, status: &'static str) -> Timing {
        Timing {
            seconds,
            status,
            steps: 0,
            peak_live: None,
        }
    }

    /// Renders the timing like the paper's tables: the time in seconds, or
    /// a dash for blow-ups.
    pub fn render(&self) -> String {
        match self.status {
            "ok" => format!("{:.3}", self.seconds),
            "limit" => "-".to_string(),
            "fail" => "!".to_string(),
            _ => "?".to_string(),
        }
    }

    /// The timing as a JSON object. `seconds` is the only field that varies
    /// from run to run; `status`, `steps` and `peak_live` are deterministic
    /// for a given configuration.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seconds\": {}, \"status\": \"{}\", \"steps\": {}, \"peak_live\": {}}}",
            json::num(self.seconds),
            self.status,
            self.steps,
            self.peak_live
                .map_or_else(|| "null".to_string(), |p| p.to_string())
        )
    }
}

/// Builds the application chain `f^n(x)` in the logic kernel (term size
/// 2n + 1) — the standard large-term workload of the kernel benches
/// (`benches/kernel.rs` and the `kernel_perf` binary).
pub fn term_chain(n: usize) -> hash_logic::TermRef {
    use hash_logic::prelude::*;
    let f = mk_var("f", Type::fun(Type::bool(), Type::bool()));
    let mut t = mk_var("x", Type::bool());
    for _ in 0..n {
        t = mk_comb(&f, &t).unwrap();
    }
    t
}

/// Tiny argv helpers shared by the experiment binaries.
pub mod cli {
    /// Whether the flag (e.g. `--json`) is present.
    pub fn flag(args: &[String], name: &str) -> bool {
        args.iter().any(|a| a == name)
    }

    /// The value following `--name`, if any.
    pub fn opt_value(args: &[String], name: &str) -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    }

    /// Positional (non-flag) arguments. `value_flags` lists this binary's
    /// flags that consume the following argument (e.g. `--node-limit`),
    /// so their values are not misparsed as positionals.
    pub fn positional(args: &[String], value_flags: &[&str]) -> Vec<String> {
        let mut out = Vec::new();
        let mut skip = false;
        for a in args {
            if skip {
                skip = false;
                continue;
            }
            if a.starts_with("--") {
                skip = value_flags.iter().any(|f| f == a);
                continue;
            }
            out.push(a.clone());
        }
        out
    }
}

/// Tiny hand-rolled JSON emission helpers (the container is offline, so no
/// serde; the formats are small and fixed).
pub mod json {
    /// Formats a float with stable precision for the snapshot files.
    pub fn num(x: f64) -> String {
        format!("{x:.6}")
    }

    /// Escapes a string for inclusion in a JSON literal.
    pub fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
}

fn timing_of(result: &VerificationResult) -> Timing {
    let status = match result.verdict {
        Verdict::Equivalent => "ok",
        Verdict::ResourceLimit => "limit",
        Verdict::NotEquivalent => "fail",
        Verdict::Inconclusive => "?",
    };
    Timing {
        seconds: result.duration.as_secs_f64(),
        status,
        steps: result.iterations,
        peak_live: result.peak_live,
    }
}

/// Table I: the scalable Figure-2 example.
pub mod table1 {
    use super::*;
    use hash_circuits::figure2::Figure2;

    /// One row of Table I.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// The bit width `n`.
        pub n: u32,
        /// Flip-flop count of the circuit.
        pub flip_flops: usize,
        /// Gate-equivalent count of the circuit.
        pub gates: usize,
        /// SIS-style explicit FSM comparison.
        pub sis: Timing,
        /// SMV-style symbolic model checking.
        pub smv: Timing,
        /// HASH formal retiming.
        pub hash: Timing,
    }

    /// Runs the Table-I experiment for the given bit widths.
    ///
    /// `node_limit` bounds the BDD size of the model checker (blow-ups are
    /// reported as dashes, like the paper).
    pub fn run(widths: &[u32], node_limit: usize) -> Vec<Row> {
        let mut hash_engine = Hash::new().expect("theories install");
        widths
            .iter()
            .map(|&n| {
                let fig = Figure2::new(n);
                let st = stats(&fig.netlist);
                let retimed =
                    forward_retime(&fig.netlist, &fig.correct_cut()).expect("retiming applies");

                let sis = timing_of(&check_equivalence_sis(
                    &fig.netlist,
                    &retimed,
                    SisOptions {
                        max_states: 1 << 20,
                        max_input_bits: 14,
                    },
                ));
                let smv = timing_of(&check_equivalence_smv(
                    &fig.netlist,
                    &retimed,
                    SmvOptions::default().with_node_limit(node_limit),
                ));
                let start = Instant::now();
                let hash = match hash_engine.formal_retime(
                    &fig.netlist,
                    &fig.correct_cut(),
                    RetimeOptions::default(),
                ) {
                    Ok(_) => Timing::ok(start.elapsed()),
                    Err(_) => Timing::flat(start.elapsed().as_secs_f64(), "fail"),
                };
                Row {
                    n,
                    flip_flops: st.flip_flops,
                    gates: st.gate_estimate,
                    sis,
                    smv,
                    hash,
                }
            })
            .collect()
    }

    /// Renders the rows as a machine-readable JSON document (one row per
    /// line, so the perf-smoke check can parse it without a JSON library).
    pub fn render_json(rows: &[Row], node_limit: usize) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"table1\",\n");
        out.push_str(&format!("  \"node_limit\": {node_limit},\n"));
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"n\": {}, \"flip_flops\": {}, \"gates\": {}, \"sis\": {}, \"smv\": {}, \"hash\": {}}}{}\n",
                r.n,
                r.flip_flops,
                r.gates,
                r.sis.to_json(),
                r.smv.to_json(),
                r.hash.to_json(),
                comma
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Formats the rows like the paper's Table I.
    pub fn render(rows: &[Row]) -> String {
        let mut out = String::from("n\tflipflops\tgates\tSIS\tSMV\tHASH\n");
        for r in rows {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\n",
                r.n,
                r.flip_flops,
                r.gates,
                r.sis.render(),
                r.smv.render(),
                r.hash.render()
            ));
        }
        out
    }
}

/// Table II: the IWLS'91-style benchmark suite.
///
/// Since PR 5 the driver is *embarrassingly parallel*: every benchmark
/// entry runs on a worker of a fixed-size pool ([`table2::run_jobs`]),
/// each worker owning its own `hash_bdd::BddManager`s (one per checker
/// run, as before), its own node/time budgets and protection roots, and
/// its own HASH kernel (the term arena is thread-local). Nothing is
/// shared between entries, so one benchmark's blow-up cannot evict
/// another's cache or skew its peak-live sample — the verdict, step and
/// peak-live columns are byte-identical at any job count; only the
/// wall-clock fields vary.
pub mod table2 {
    use super::*;
    use hash_circuits::iwls::{generate, table2_benchmarks, Benchmark};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// One row of Table II.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// The benchmark name.
        pub name: String,
        /// Flip-flop count.
        pub flip_flops: usize,
        /// Gate count.
        pub gates: usize,
        /// Van Eijk's basic checker.
        pub eijk: Timing,
        /// Van Eijk's checker exploiting register correspondences.
        pub eijk_plus: Timing,
        /// Van Eijk's basic checker over the partitioned transition
        /// relation (clustered conjunction + early quantification), at the
        /// configured cluster limit — the PR 4 ablation column, gated for
        /// s344 by CI's perf-smoke step.
        pub eijk_part: Timing,
        /// SIS-style explicit FSM comparison.
        pub sis: Timing,
        /// HASH formal retiming.
        pub hash: Timing,
        /// Wall-clock seconds the whole entry (generation, retiming and
        /// all five checker runs) took on its worker.
        pub wall_seconds: f64,
    }

    /// The number of workers `table2 --jobs` defaults to: the machine's
    /// available parallelism (1 when it cannot be determined).
    pub fn default_jobs() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The default cluster limits of `table2 --sweep-cluster-limit`, the
    /// EXPERIMENTS.md sweep that grounds [`default_cluster_limit`].
    pub fn default_sweep_limits() -> Vec<usize> {
        vec![500, 2_000, 10_000, 50_000]
    }

    /// The cluster-size bound (in BDD nodes) of the `eijk_part` column and
    /// of `table2 --partitioned` when `--cluster-limit` is not given.
    pub fn default_cluster_limit() -> usize {
        hash_equiv::partition::DEFAULT_CLUSTER_LIMIT
    }

    /// The Table-II van Eijk limits. PR 1's open item was a too-small
    /// 100k default; PR 2 settled on 8M *allocated* nodes. Since PR 3 the
    /// limit budgets **live** nodes (the BDD engine garbage collects, has
    /// complement edges and fuses relational products), which is a much
    /// stricter currency: the benchmarks that complete peak below 400k
    /// live nodes, while the rest must now *genuinely hold* the budget in
    /// reachable-set nodes to blow up — at 8M live that takes minutes per
    /// dash (s641 ≈ 80 s, s838 ≈ 180 s). 2M live keeps the completion
    /// frontier identical (see the EXPERIMENTS.md sweep: raising 2M → 8M
    /// completes nothing new) and a full-table run in minutes.
    pub fn default_options() -> EijkOptions {
        EijkOptions::new(2_000_000, 2_000, 16)
    }

    /// Runs the Table-II experiment with the given node limit (other knobs
    /// at their defaults), sequentially.
    pub fn run(node_limit: usize) -> Vec<Row> {
        run_with(default_options().with_node_limit(node_limit))
    }

    /// Runs the Table-II experiment with full control over the van Eijk
    /// limits, sequentially ([`run_jobs`] with one worker).
    pub fn run_with(opts: EijkOptions) -> Vec<Row> {
        run_jobs(opts, 1)
    }

    /// One Table-II entry: generation, retiming and all five checker runs.
    /// Everything the entry allocates — the BDD managers of the three van
    /// Eijk runs, the SIS state sets, the HASH kernel's terms — is owned
    /// here (or by the calling worker, for `hash_engine`), which is what
    /// makes the pool in [`run_selected_jobs`] embarrassingly parallel.
    fn run_one(b: &Benchmark, hash_engine: &mut Hash, opts: EijkOptions) -> Row {
        let entry_start = Instant::now();
        let part_opts = opts.partitioned(opts.partition.unwrap_or_else(default_cluster_limit));
        let netlist = generate(b);
        let st = stats(&netlist);
        let cut = maximal_forward_cut(&netlist);
        let retimed = forward_retime(&netlist, &cut).expect("benchmark is retimable");

        let eijk = timing_of(&check_equivalence_eijk(&netlist, &retimed, opts));
        let eijk_plus = timing_of(&check_equivalence_eijk_plus(&netlist, &retimed, opts));
        // Under --partitioned at the same cluster limit the Eijk
        // and EijkP configurations coincide; reuse the run instead
        // of traversing (or blowing up) a second time.
        let eijk_part = if opts.partition == part_opts.partition {
            eijk.clone()
        } else {
            timing_of(&check_equivalence_eijk(&netlist, &retimed, part_opts))
        };
        let sis = timing_of(&check_equivalence_sis(
            &netlist,
            &retimed,
            SisOptions {
                max_states: 1 << 14,
                max_input_bits: 12,
            },
        ));
        let start = Instant::now();
        let hash = match hash_engine.formal_retime(&netlist, &cut, RetimeOptions::default()) {
            Ok(_) => Timing::ok(start.elapsed()),
            Err(_) => Timing::flat(start.elapsed().as_secs_f64(), "fail"),
        };
        Row {
            name: b.name.to_string(),
            flip_flops: st.flip_flops,
            gates: st.gate_estimate,
            eijk,
            eijk_plus,
            eijk_part,
            sis,
            hash,
            wall_seconds: entry_start.elapsed().as_secs_f64(),
        }
    }

    /// Runs the full Table-II suite on a pool of `jobs` workers
    /// ([`run_selected_jobs`] over [`table2_benchmarks`]).
    pub fn run_jobs(opts: EijkOptions, jobs: usize) -> Vec<Row> {
        run_selected_jobs(&table2_benchmarks(), opts, jobs)
    }

    /// Runs the given benchmark entries on a pool of `jobs` worker threads
    /// (clamped to at least 1 and at most the entry count). Work items are
    /// claimed from a shared counter; each worker owns its HASH kernel
    /// (the term arena is thread-local) and every checker run inside an
    /// entry builds its own BDD manager with its own budgets and
    /// protection roots, so entries interact through nothing but the
    /// counter. Results land in their input slot: the output order is the
    /// input order regardless of completion order, and the verdict / step /
    /// peak-live columns are byte-identical to a sequential run — only the
    /// wall-clock fields (and, under `opts.time_limit`, deadline-dependent
    /// verdicts) can differ.
    pub fn run_selected_jobs(benchmarks: &[Benchmark], opts: EijkOptions, jobs: usize) -> Vec<Row> {
        pool_map(
            benchmarks.len(),
            jobs,
            || Hash::new().expect("theories install"),
            |hash_engine, i| run_one(&benchmarks[i], hash_engine, opts),
        )
    }

    /// The shared worker pool of the parallel drivers: runs `count`
    /// independent work items on `jobs` threads (clamped to at least 1 and
    /// at most `count`), returning results in *item order* regardless of
    /// completion order. Each worker claims items from a shared atomic
    /// counter — so the slowest item, not a static chunking, bounds the
    /// makespan — and owns one instance of per-worker state built by
    /// `init` on the worker's own thread (the HASH kernel, whose term
    /// arena is thread-local, rides in here).
    fn pool_map<S, R, I, F>(count: usize, jobs: usize, init: I, work: F) -> Vec<R>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        let jobs = jobs.clamp(1, count.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        *slots[i].lock().expect("result slot poisoned") = Some(work(&mut state, i));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot filled")
            })
            .collect()
    }

    /// One cell of the cluster-limit sweep: the partitioned basic van Eijk
    /// checker on one benchmark at one cluster limit.
    #[derive(Clone, Debug)]
    pub struct SweepRow {
        /// The benchmark name.
        pub name: String,
        /// Flip-flop count.
        pub flip_flops: usize,
        /// Gate count.
        pub gates: usize,
        /// One timing per swept cluster limit, aligned with the `limits`
        /// slice passed to [`sweep_cluster_limits`].
        pub entries: Vec<Timing>,
    }

    /// The cluster-limit sweep behind `table2 --sweep-cluster-limit`: the
    /// partitioned basic van Eijk checker over every benchmark × every
    /// cluster limit, on a pool of `jobs` workers (each benchmark × limit
    /// cell is one work item — the sweep is as parallel as the table
    /// itself). Rows come back in benchmark order, cells in `limits`
    /// order, regardless of completion order.
    pub fn sweep_cluster_limits(limits: &[usize], opts: EijkOptions, jobs: usize) -> Vec<SweepRow> {
        let benchmarks = table2_benchmarks();
        // Generate and retime each benchmark once up front (netlists are
        // read-only plain data, shared by reference into the workers):
        // the per-cell work is the checker run, not the circuit prep.
        let prepared: Vec<(Netlist, Netlist)> = benchmarks
            .iter()
            .map(|b| {
                let netlist = generate(b);
                let cut = maximal_forward_cut(&netlist);
                let retimed = forward_retime(&netlist, &cut).expect("benchmark is retimable");
                (netlist, retimed)
            })
            .collect();
        let mut cells = pool_map(
            benchmarks.len() * limits.len(),
            jobs,
            || (),
            |(), cell| {
                let (netlist, retimed) = &prepared[cell / limits.len()];
                let limit = limits[cell % limits.len()];
                timing_of(&check_equivalence_eijk(
                    netlist,
                    retimed,
                    opts.partitioned(limit),
                ))
            },
        )
        .into_iter();
        benchmarks
            .iter()
            .zip(prepared.iter())
            .map(|(b, (netlist, _))| {
                let st = stats(netlist);
                SweepRow {
                    name: b.name.to_string(),
                    flip_flops: st.flip_flops,
                    gates: st.gate_estimate,
                    entries: (&mut cells).take(limits.len()).collect(),
                }
            })
            .collect()
    }

    /// Renders the rows as a machine-readable JSON document. `jobs` is the
    /// worker count the rows were produced with; it and the wall-time
    /// fields (`wall_seconds` per row, `seconds` per column) are the only
    /// run-dependent parts of the document — verdicts, steps and peak-live
    /// are byte-identical at any job count.
    pub fn render_json(rows: &[Row], options: &EijkOptions, jobs: usize) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"table2\",\n");
        out.push_str(&format!(
            "  \"node_limit\": {}, \"max_iterations\": {}, \"max_refinements\": {}, \"reorder\": {},\n",
            options.node_limit, options.max_iterations, options.max_refinements, options.reorder
        ));
        out.push_str(&format!(
            "  \"partitioned\": {}, \"cluster_limit\": {}, \"jobs\": {},\n",
            options.partition.is_some(),
            options.partition.unwrap_or_else(default_cluster_limit),
            jobs
        ));
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"flip_flops\": {}, \"gates\": {}, \"eijk\": {}, \"eijk_plus\": {}, \"eijk_part\": {}, \"sis\": {}, \"hash\": {}, \"wall_seconds\": {}}}{}\n",
                crate::json::esc(&r.name),
                r.flip_flops,
                r.gates,
                r.eijk.to_json(),
                r.eijk_plus.to_json(),
                r.eijk_part.to_json(),
                r.sis.to_json(),
                r.hash.to_json(),
                crate::json::num(r.wall_seconds),
                comma
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the cluster-limit sweep as a machine-readable JSON document
    /// (`limits` must be the slice the sweep ran with).
    pub fn render_sweep_json(
        rows: &[SweepRow],
        limits: &[usize],
        options: &EijkOptions,
        jobs: usize,
    ) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"table2_cluster_sweep\",\n");
        out.push_str(&format!(
            "  \"node_limit\": {}, \"max_iterations\": {}, \"max_refinements\": {}, \"reorder\": {}, \"jobs\": {},\n",
            options.node_limit, options.max_iterations, options.max_refinements, options.reorder, jobs
        ));
        out.push_str(&format!(
            "  \"cluster_limits\": [{}],\n",
            limits
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            let cells: Vec<String> = limits
                .iter()
                .zip(r.entries.iter())
                .map(|(l, t)| format!("\"limit_{}\": {}", l, t.to_json()))
                .collect();
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"flip_flops\": {}, \"gates\": {}, {}}}{}\n",
                crate::json::esc(&r.name),
                r.flip_flops,
                r.gates,
                cells.join(", "),
                comma
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Formats the cluster-limit sweep as a text table (one column per
    /// swept limit).
    pub fn render_sweep(rows: &[SweepRow], limits: &[usize]) -> String {
        let mut out = String::from("name\tflipflops\tgates");
        for l in limits {
            out.push_str(&format!("\tEijkP@{l}"));
        }
        out.push('\n');
        for r in rows {
            out.push_str(&format!("{}\t{}\t{}", r.name, r.flip_flops, r.gates));
            for t in &r.entries {
                out.push('\t');
                out.push_str(&t.render());
            }
            out.push('\n');
        }
        out
    }

    /// Formats the rows like the paper's Table II (`EijkP` is the
    /// partitioned-relation ablation column, not in the original table).
    pub fn render(rows: &[Row]) -> String {
        let mut out = String::from("name\tflipflops\tgates\tEijk\tEijk+\tEijkP\tSIS\tHASH\n");
        for r in rows {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                r.name,
                r.flip_flops,
                r.gates,
                r.eijk.render(),
                r.eijk_plus.render(),
                r.eijk_part.render(),
                r.sis.render(),
                r.hash.render()
            ));
        }
        out
    }
}

/// The multiplier-family scaling study of Section V.
pub mod scaling {
    use super::*;
    use hash_circuits::FracMult;

    /// One row: multiplier width and the HASH / model-checking costs.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// The multiplier data width.
        pub width: u32,
        /// HASH formal retiming time.
        pub hash: Timing,
        /// SMV-style model checking time (or a dash on blow-up).
        pub smv: Timing,
    }

    /// Runs the scaling study over multiplier widths.
    pub fn run(widths: &[u32], node_limit: usize) -> Vec<Row> {
        let mut hash_engine = Hash::new().expect("theories install");
        widths
            .iter()
            .map(|&w| {
                let m = FracMult::new(w).netlist;
                let cut = maximal_forward_cut(&m);
                let retimed = forward_retime(&m, &cut).expect("multiplier is retimable");
                let smv = timing_of(&check_equivalence_smv(
                    &m,
                    &retimed,
                    SmvOptions::default()
                        .with_node_limit(node_limit)
                        .with_max_iterations(2_000),
                ));
                let start = Instant::now();
                let hash = match hash_engine.formal_retime(&m, &cut, RetimeOptions::default()) {
                    Ok(_) => Timing::ok(start.elapsed()),
                    Err(_) => Timing::flat(start.elapsed().as_secs_f64(), "fail"),
                };
                Row {
                    width: w,
                    hash,
                    smv,
                }
            })
            .collect()
    }

    /// Renders the rows as a machine-readable JSON document.
    pub fn render_json(rows: &[Row], node_limit: usize) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"scaling\",\n");
        out.push_str(&format!("  \"node_limit\": {node_limit},\n"));
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"width\": {}, \"hash\": {}, \"smv\": {}}}{}\n",
                r.width,
                r.hash.to_json(),
                r.smv.to_json(),
                comma
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Formats the rows, including the growth factor between successive
    /// widths (the paper reports ~3 per doubling for HASH and much larger
    /// factors for the checkers).
    pub fn render(rows: &[Row]) -> String {
        let mut out = String::from("width\tHASH\tSMV\tHASH-growth\n");
        let mut prev: Option<f64> = None;
        for r in rows {
            let growth = match prev {
                Some(p) if p > 0.0 && r.hash.status == "ok" => {
                    format!("{:.2}x", r.hash.seconds / p)
                }
                _ => "-".to_string(),
            };
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\n",
                r.width,
                r.hash.render(),
                r.smv.render(),
                growth
            ));
            if r.hash.status == "ok" {
                prev = Some(r.hash.seconds);
            }
        }
        out
    }
}

/// Ablation studies called out in DESIGN.md.
pub mod ablation {
    use super::*;
    use hash_circuits::figure2::Figure2;
    use hash_circuits::iwls::{generate, table2_benchmarks};

    /// HASH cost as a function of the cut size (the paper claims the time
    /// "is quite independent from the cut", apart from the initial-state
    /// evaluation).
    pub fn cut_size(name: &str) -> Vec<(usize, f64)> {
        let benchmark = table2_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| table2_benchmarks()[0].clone());
        let netlist = generate(&benchmark);
        let mut hash_engine = Hash::new().expect("theories install");
        let mut rows = Vec::new();
        // Single-cell cuts, then the maximal cut.
        let mut cuts = single_cell_cuts(&netlist);
        cuts.truncate(5);
        cuts.push(maximal_forward_cut(&netlist));
        for cut in cuts {
            if cut.is_empty() {
                continue;
            }
            let start = Instant::now();
            if hash_engine
                .formal_retime(&netlist, &cut, RetimeOptions::default())
                .is_ok()
            {
                rows.push((cut.len(), start.elapsed().as_secs_f64()));
            }
        }
        rows
    }

    /// One row of the compound-step trajectory: circuit width and the
    /// retime / join / compose costs in seconds.
    pub type CompoundRow = (u32, f64, f64, f64);

    /// Runs [`compound`] over a sweep of widths.
    pub fn compound_rows(widths: &[u32]) -> Vec<CompoundRow> {
        widths
            .iter()
            .map(|&n| {
                let (retime, join, compose) = compound(n);
                (n, retime, join, compose)
            })
            .collect()
    }

    /// Renders compound rows as the JSON row list shared by the
    /// `ablation_compound` and `kernel_perf` snapshots (one schema, one
    /// place).
    pub fn compound_rows_json(rows: &[CompoundRow]) -> String {
        let lines: Vec<String> = rows
            .iter()
            .map(|(n, retime, join, compose)| {
                format!(
                    "    {{\"n\": {n}, \"retime_seconds\": {}, \"join_seconds\": {}, \"compose_seconds\": {}}}",
                    crate::json::num(*retime),
                    crate::json::num(*join),
                    crate::json::num(*compose)
                )
            })
            .collect();
        lines.join(",\n")
    }

    /// Compound-step composition: the cost of composing a retiming theorem
    /// with a simplification theorem by transitivity, compared with the cost
    /// of the two steps themselves (the paper argues the composition is
    /// constant-cost).
    pub fn compound(n: u32) -> (f64, f64, f64) {
        let mut hash_engine = Hash::new().expect("theories install");
        let fig = Figure2::new(n);
        let t0 = Instant::now();
        let step1 = hash_engine
            .formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
            .expect("retiming applies");
        let t1 = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let step2 = hash_engine
            .join_step_of(&step1.theorem)
            .expect("join applies");
        let t2 = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = hash_engine
            .compound(&step1.theorem, &step2)
            .expect("composition succeeds");
        let t3 = t0.elapsed().as_secs_f64();
        (t1, t2, t3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_small_widths_produce_rows() {
        let rows = table1::run(&[2, 3], 200_000);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].hash.status, "ok");
        assert_eq!(rows[0].smv.status, "ok");
        let text = table1::render(&rows);
        assert!(text.contains("HASH"));
    }

    #[test]
    fn scaling_smallest_multiplier() {
        let rows = scaling::run(&[8], 50_000);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].hash.status, "ok");
        assert!(!scaling::render(&rows).is_empty());
    }

    #[test]
    fn compound_ablation_reports_three_times() {
        let (t1, t2, t3) = ablation::compound(4);
        assert!(t1 > 0.0 && t2 >= 0.0 && t3 >= 0.0);
        assert!(t3 < t1, "composition must be cheaper than the steps");
    }

    #[test]
    fn timing_rendering() {
        let t = Timing::flat(1.5, "limit");
        assert_eq!(t.render(), "-");
        let ok = Timing::ok(Duration::from_millis(250));
        assert_eq!(ok.render(), "0.250");
    }
}
