//! Machine-readable kernel micro-benchmarks (the JSON twin of
//! `benches/kernel.rs`, runnable without criterion): term equality,
//! alpha-equivalence, transitivity and substitution at several term sizes,
//! retiming-theorem instantiation at several circuit widths, and the
//! per-step compound-composition costs.
//!
//! `cargo run --release -p hash-bench --bin kernel_perf > BENCH_kernel.json`
//! records the perf-trajectory snapshot committed to the repository. The
//! O(1) claims are visible directly in the output: the `*_n100` /
//! `*_n1000` / `*_n10000` entries must be of the same magnitude.
use hash_bench::{ablation, json, term_chain};
use hash_circuits::figure2::Figure2;
use hash_core::prelude::*;
use hash_logic::prelude::*;
use std::time::Instant;

/// Median-of-runs nanoseconds per iteration of `f`.
fn measure<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut samples = Vec::new();
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        samples.push(start.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let mut benches: Vec<(String, f64)> = Vec::new();

    for n in [100usize, 1_000, 10_000] {
        let t1 = term_chain(n);
        let t2 = term_chain(n);
        benches.push((
            format!("term_eq_n{n}"),
            measure(100_000, || {
                std::hint::black_box(t1) == std::hint::black_box(t2)
            }),
        ));
        benches.push((format!("aconv_n{n}"), measure(100_000, || t1.aconv(&t2))));

        let f = mk_var("f", Type::fun(Type::bool(), Type::bool()));
        let b_t = mk_comb(&f, &t1).unwrap();
        let c_t = mk_comb(&f, &b_t).unwrap();
        let th1 = Theorem::assume(&mk_eq(&t1, &b_t).unwrap()).unwrap();
        let th2 = Theorem::assume(&mk_eq(&b_t, &c_t).unwrap()).unwrap();
        benches.push((
            format!("trans_n{n}"),
            measure(10_000, || Theorem::trans(&th1, &th2).unwrap()),
        ));

        let theta = vec![(Var::new("x", Type::bool()), mk_var("y", Type::bool()))];
        benches.push((
            format!("vsubst_n{n}"),
            measure(10_000, || vsubst(&theta, &t1)),
        ));
    }

    let mut hash = Hash::new().unwrap();
    for n in [8u32, 32, 64] {
        let fig = Figure2::new(n);
        benches.push((
            format!("formal_retime_n{n}"),
            measure(20, || {
                hash.formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
                    .unwrap()
            }),
        ));
    }

    // Compound-step trajectory: join and compose must stay flat in n.
    let compound_rows = ablation::compound_rows(&[4, 8, 16, 32]);

    let stats = hash_logic::term::arena_stats();
    println!("{{");
    println!("  \"experiment\": \"kernel\",");
    println!("  \"benches\": [");
    for (i, (name, ns)) in benches.iter().enumerate() {
        let comma = if i + 1 == benches.len() { "" } else { "," };
        println!(
            "    {{\"name\": \"{name}\", \"ns_per_iter\": {}}}{comma}",
            json::num(*ns)
        );
    }
    println!("  ],");
    println!("  \"compound\": [");
    println!("{}", ablation::compound_rows_json(&compound_rows));
    println!("  ],");
    println!(
        "  \"arena\": {{\"nodes\": {}, \"substs\": {}, \"vsubst_cache\": {}, \"aconv_cache\": {}, \"beta_cache\": {}}}",
        stats.nodes, stats.substs, stats.vsubst_cache, stats.aconv_cache, stats.beta_cache
    );
    println!("}}");
}
