//! Regenerates Table I of the paper: the scalable Figure-2 example swept
//! over the bit width, comparing SIS, SMV and HASH.
//!
//! `--json` emits the machine-readable snapshot committed as
//! `BENCH_table1.json` (the perf trajectory the CI smoke check compares
//! against); `--node-limit N` bounds the model checker's BDD.
use hash_bench::{cli, table1};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let node_limit: usize = cli::opt_value(&args, "--node-limit")
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let widths: Vec<u32> = cli::positional(&args, &["--node-limit"])
        .first()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![2, 4, 6, 8, 12, 16, 24, 32, 48, 64]);
    let rows = table1::run(&widths, node_limit);
    if cli::flag(&args, "--json") {
        print!("{}", table1::render_json(&rows, node_limit));
    } else {
        println!("Table I — scalable example from Figure 2 (times in seconds, '-' = blow-up)");
        print!("{}", table1::render(&rows));
    }
}
