//! Regenerates Table I of the paper: the scalable Figure-2 example swept
//! over the bit width, comparing SIS, SMV and HASH.
use hash_bench::table1;

fn main() {
    let widths: Vec<u32> = std::env::args()
        .nth(1)
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![2, 4, 6, 8, 12, 16, 24, 32, 48, 64]);
    let rows = table1::run(&widths, 300_000);
    println!("Table I — scalable example from Figure 2 (times in seconds, '-' = blow-up)");
    print!("{}", table1::render(&rows));
}
