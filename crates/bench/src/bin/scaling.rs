//! The multiplier-family scaling study of Section V: HASH cost grows
//! moderately with the bit width while model checking blows up.
use hash_bench::scaling;

fn main() {
    let rows = scaling::run(&[8, 16, 32], 200_000);
    println!("Multiplier scaling (Section V)");
    print!("{}", scaling::render(&rows));
}
