//! The multiplier-family scaling study of Section V: HASH cost grows
//! moderately with the bit width while model checking blows up.
//!
//! `--json` emits a machine-readable snapshot; `--widths a,b,c` and
//! `--node-limit N` override the defaults.
use hash_bench::{cli, scaling};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let widths: Vec<u32> = cli::opt_value(&args, "--widths")
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![8, 16, 32]);
    let node_limit: usize = cli::opt_value(&args, "--node-limit")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let rows = scaling::run(&widths, node_limit);
    if cli::flag(&args, "--json") {
        print!("{}", scaling::render_json(&rows, node_limit));
    } else {
        println!("Multiplier scaling (Section V)");
        print!("{}", scaling::render(&rows));
    }
}
