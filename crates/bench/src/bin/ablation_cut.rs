//! Ablation: HASH formal-retiming cost as a function of the cut size.
use hash_bench::ablation;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "s344".to_string());
    println!("cut size\tHASH seconds ({name})");
    for (size, secs) in ablation::cut_size(&name) {
        println!("{size}\t{secs:.4}");
    }
}
