//! Ablation: HASH formal-retiming cost as a function of the cut size.
//!
//! `--json` emits a machine-readable snapshot.
use hash_bench::{ablation, cli};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = cli::positional(&args, &[])
        .first()
        .cloned()
        .unwrap_or_else(|| "s344".to_string());
    let rows = ablation::cut_size(&name);
    if cli::flag(&args, "--json") {
        println!("{{");
        println!(
            "  \"experiment\": \"ablation_cut\", \"benchmark\": \"{}\",",
            hash_bench::json::esc(&name)
        );
        println!("  \"rows\": [");
        for (i, (size, secs)) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            println!(
                "    {{\"cut_size\": {size}, \"hash_seconds\": {}}}{comma}",
                hash_bench::json::num(*secs)
            );
        }
        println!("  ]");
        println!("}}");
    } else {
        println!("cut size\tHASH seconds ({name})");
        for (size, secs) in rows {
            println!("{size}\t{secs:.4}");
        }
    }
}
