//! CI perf-smoke check: re-runs the HASH column of Table I (best of three
//! runs per width, to shave scheduler noise) and fails if any entry
//! regresses past 10× the value recorded in the committed
//! `BENCH_table1.json` snapshot, with a 25 ms absolute floor so the
//! sub-millisecond entries cannot flake on a loaded CI machine (for those
//! rows the effective gate is "slower than 25 ms", still far below any
//! real state-space-traversal regression).
//!
//! Usage: `cargo run --release -p hash-bench --bin perf_smoke [--snapshot PATH]`
use hash_bench::cli;
use hash_circuits::figure2::Figure2;
use hash_core::prelude::*;
use std::time::Instant;

/// Regression threshold: the current time may be at most 10× the recorded
/// one...
const FACTOR: f64 = 10.0;
/// ...but never less than this absolute floor (seconds), so entries that
/// were recorded as a few hundred microseconds do not flake on a loaded
/// CI machine.
const FLOOR_SECONDS: f64 = 0.025;
/// Runs per width; the best (smallest) time is compared, which removes
/// one-off scheduler hiccups without hiding a sustained regression.
const RUNS: u32 = 3;

/// Extracts `(n, hash_seconds)` pairs from the snapshot. The snapshot is
/// emitted one row per line by `table1 --json`, so a line-oriented scan is
/// enough — no JSON library needed (the container is offline).
fn parse_snapshot(text: &str) -> Vec<(u32, f64, String)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(n) = field(line, "\"n\": ") else {
            continue;
        };
        let Some(hash_part) = line.split("\"hash\": {").nth(1) else {
            continue;
        };
        let Some(secs) = field(hash_part, "\"seconds\": ") else {
            continue;
        };
        let status = hash_part
            .split("\"status\": \"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap_or("?")
            .to_string();
        rows.push((n as u32, secs, status));
    }
    rows
}

/// Parses the number that follows `key` in `line`.
fn field(line: &str, key: &str) -> Option<f64> {
    let rest = line.split(key).nth(1)?;
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = cli::opt_value(&args, "--snapshot").unwrap_or_else(|| "BENCH_table1.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_smoke: cannot read snapshot {path}: {e}");
            std::process::exit(2);
        }
    };
    let recorded = parse_snapshot(&text);
    if recorded.is_empty() {
        eprintln!("perf_smoke: no rows found in {path}");
        std::process::exit(2);
    }

    let mut hash_engine = Hash::new().expect("theories install");
    let mut failures = 0usize;
    println!("n\trecorded\tcurrent\tlimit\tverdict");
    for (n, recorded_secs, status) in recorded {
        if status != "ok" {
            println!("{n}\t({status})\t-\t-\tskipped");
            continue;
        }
        let fig = Figure2::new(n);
        let mut current = f64::INFINITY;
        let mut result = Err(());
        for _ in 0..RUNS {
            let start = Instant::now();
            let attempt = hash_engine.formal_retime(
                &fig.netlist,
                &fig.correct_cut(),
                RetimeOptions::default(),
            );
            current = current.min(start.elapsed().as_secs_f64());
            result = attempt.map(|_| ()).map_err(|_| ());
            if result.is_err() {
                break;
            }
        }
        let limit = (recorded_secs * FACTOR).max(FLOOR_SECONDS);
        let verdict = match (&result, current <= limit) {
            (Ok(_), true) => "ok",
            (Ok(_), false) => {
                failures += 1;
                "REGRESSED"
            }
            (Err(_), _) => {
                failures += 1;
                "FAILED"
            }
        };
        println!("{n}\t{recorded_secs:.6}\t{current:.6}\t{limit:.6}\t{verdict}");
    }
    if failures > 0 {
        eprintln!("perf_smoke: {failures} HASH entr(y/ies) regressed past the 10x threshold");
        std::process::exit(1);
    }
    println!("perf_smoke: all HASH entries within threshold");
}
