//! CI perf-smoke check: re-runs the HASH columns of Table I (Figure-2
//! sweep) and Table II (IWLS'91-style suite), plus one *partitioned* van
//! Eijk Table II entry (s344, against the snapshot's `eijk_part` column)
//! — best of three runs per entry, to shave scheduler noise — and fails if
//! any entry regresses past 10× the value recorded in the committed
//! `BENCH_table1.json` / `BENCH_table2.json` snapshots, with a 25 ms
//! absolute floor so the sub-millisecond entries cannot flake on a loaded
//! CI machine (for those rows the effective gate is "slower than 25 ms",
//! still far below any real state-space-traversal regression).
//!
//! Usage: `cargo run --release -p hash-bench --bin perf_smoke
//!         [--snapshot PATH] [--table2-snapshot PATH]`
use hash_bench::{cli, table2};
use hash_circuits::figure2::Figure2;
use hash_circuits::iwls::{generate, table2_benchmarks};
use hash_core::prelude::*;
use hash_equiv::prelude::*;
use hash_retiming::prelude::*;
use std::time::Instant;

/// Regression threshold: the current time may be at most 10× the recorded
/// one...
const FACTOR: f64 = 10.0;
/// ...but never less than this absolute floor (seconds), so entries that
/// were recorded as a few hundred microseconds do not flake on a loaded
/// CI machine.
const FLOOR_SECONDS: f64 = 0.025;
/// Runs per entry; the best (smallest) time is compared, which removes
/// one-off scheduler hiccups without hiding a sustained regression.
const RUNS: u32 = 3;

/// A recorded HASH entry: its label (width or benchmark name), the
/// recorded seconds and the recorded status.
struct Recorded {
    label: String,
    seconds: f64,
    status: String,
}

/// Extracts one timing column from a snapshot. Snapshots are emitted one
/// row per line by `table1 --json` / `table2 --json`, so a line-oriented
/// scan is enough — no JSON library needed (the container is offline).
fn parse_snapshot(text: &str, label_key: &str, column_key: &str) -> Vec<Recorded> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.split(label_key).nth(1) else {
            continue;
        };
        let label: String = if label_key.ends_with('"') {
            // String label ("name": "s344").
            rest.split('"').next().unwrap_or("").to_string()
        } else {
            // Numeric label ("n": 8).
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].to_string()
        };
        let Some(hash_part) = line.split(column_key).nth(1) else {
            continue;
        };
        let Some(seconds) = field(hash_part, "\"seconds\": ") else {
            continue;
        };
        let status = hash_part
            .split("\"status\": \"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap_or("?")
            .to_string();
        if label.is_empty() {
            continue;
        }
        rows.push(Recorded {
            label,
            seconds,
            status,
        });
    }
    rows
}

/// Parses the number that follows `key` in `line`.
fn field(line: &str, key: &str) -> Option<f64> {
    let rest = line.split(key).nth(1)?;
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn read_snapshot(path: &str, label_key: &str, column_key: &str) -> Vec<Recorded> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_smoke: cannot read snapshot {path}: {e}");
            std::process::exit(2);
        }
    };
    let recorded = parse_snapshot(&text, label_key, column_key);
    if recorded.is_empty() {
        eprintln!("perf_smoke: no rows found in {path}");
        std::process::exit(2);
    }
    recorded
}

/// Runs one entry best-of-RUNS and prints the verdict row; returns whether
/// it regressed or failed.
fn check_entry(row: &Recorded, mut attempt: impl FnMut() -> std::result::Result<(), ()>) -> bool {
    if row.status != "ok" {
        println!("{}\t({})\t-\t-\tskipped", row.label, row.status);
        return false;
    }
    let mut current = f64::INFINITY;
    let mut result = Err(());
    for _ in 0..RUNS {
        let start = Instant::now();
        result = attempt();
        current = current.min(start.elapsed().as_secs_f64());
        if result.is_err() {
            break;
        }
    }
    let limit = (row.seconds * FACTOR).max(FLOOR_SECONDS);
    let (verdict, failed) = match (&result, current <= limit) {
        (Ok(_), true) => ("ok", false),
        (Ok(_), false) => ("REGRESSED", true),
        (Err(_), _) => ("FAILED", true),
    };
    println!(
        "{}\t{:.6}\t{current:.6}\t{limit:.6}\t{verdict}",
        row.label, row.seconds
    );
    failed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let t1_path = cli::opt_value(&args, "--snapshot").unwrap_or_else(|| "BENCH_table1.json".into());
    let t2_path =
        cli::opt_value(&args, "--table2-snapshot").unwrap_or_else(|| "BENCH_table2.json".into());
    let mut failures = 0usize;

    // Table I: the Figure-2 HASH column, parameterised by the bit width.
    let mut hash_engine = Hash::new().expect("theories install");
    println!("Table I HASH column (label = bit width)");
    println!("n\trecorded\tcurrent\tlimit\tverdict");
    for row in read_snapshot(&t1_path, "\"n\": ", "\"hash\": {") {
        let n: u32 = match row.label.parse() {
            Ok(n) => n,
            Err(_) => continue,
        };
        let fig = Figure2::new(n);
        let failed = check_entry(&row, || {
            hash_engine
                .formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
                .map(|_| ())
                .map_err(|_| ())
        });
        failures += failed as usize;
    }

    // Table II: the IWLS'91-style HASH column, parameterised by benchmark
    // name (the van Eijk columns are not gated — their cost is the point
    // of the experiment, not a regression signal).
    println!("Table II HASH column (label = benchmark)");
    println!("name\trecorded\tcurrent\tlimit\tverdict");
    let suite = table2_benchmarks();
    for row in read_snapshot(&t2_path, "\"name\": \"", "\"hash\": {") {
        let Some(benchmark) = suite.iter().find(|b| b.name == row.label) else {
            eprintln!("perf_smoke: unknown benchmark {} in snapshot", row.label);
            failures += 1;
            continue;
        };
        let netlist = generate(benchmark);
        let cut = maximal_forward_cut(&netlist);
        let failed = check_entry(&row, || {
            hash_engine
                .formal_retime(&netlist, &cut, RetimeOptions::default())
                .map(|_| ())
                .map_err(|_| ())
        });
        failures += failed as usize;
    }

    // Table II partitioned van Eijk: one entry (s344) re-run against the
    // snapshot's `eijk_part` column, under the same best-of-3 / 10x / 25 ms
    // policy — the partitioned image engine is the one van Eijk path CI
    // gates (the monolithic columns' cost is the point of the experiment,
    // not a regression signal).
    println!("Table II partitioned Eijk entry (label = benchmark)");
    println!("name\trecorded\tcurrent\tlimit\tverdict");
    let eijk_opts = table2::default_options().partitioned(table2::default_cluster_limit());
    for row in read_snapshot(&t2_path, "\"name\": \"", "\"eijk_part\": {")
        .into_iter()
        .filter(|r| r.label == "s344")
    {
        let Some(benchmark) = suite.iter().find(|b| b.name == row.label) else {
            eprintln!("perf_smoke: unknown benchmark {} in snapshot", row.label);
            failures += 1;
            continue;
        };
        let netlist = generate(benchmark);
        let cut = maximal_forward_cut(&netlist);
        let retimed = forward_retime(&netlist, &cut).expect("benchmark is retimable");
        let failed = check_entry(&row, || {
            let r = check_equivalence_eijk(&netlist, &retimed, eijk_opts);
            if r.verdict.is_equivalent() {
                Ok(())
            } else {
                Err(())
            }
        });
        failures += failed as usize;
    }

    if failures > 0 {
        eprintln!("perf_smoke: {failures} HASH entr(y/ies) regressed past the 10x threshold");
        std::process::exit(1);
    }
    println!("perf_smoke: all HASH entries within threshold");
}
