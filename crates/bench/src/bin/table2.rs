//! Regenerates Table II of the paper: IWLS'91-style benchmarks compared
//! across Eijk, Eijk+, partitioned Eijk, SIS and HASH.
//!
//! The van Eijk limits are configurable: `--node-limit N` (a *live*-node
//! budget since the BDD engine garbage collects), `--max-iterations N`,
//! `--max-refinements N`, and `--no-reorder` disables sifting dynamic
//! variable reordering (PR 1's open item was that a too-small node limit
//! made every Eijk entry blow up; see EXPERIMENTS.md for the sweep).
//! `--time-limit SECONDS` arms a wall-clock deadline per van Eijk run
//! (checked in the BDD node constructor, reported as a dash like the other
//! resource limits). `--partitioned` switches the `Eijk`/`Eijk+` columns
//! to the clustered transition relation with early quantification and
//! `--cluster-limit N` sets the cluster-size bound (passing it implies
//! `--partitioned`); the `EijkP` column always reports the partitioned
//! basic checker — at the default cluster limit on a default run — so one
//! pass records the monolithic-vs-partitioned ablation. `--json` emits the
//! machine-readable snapshot. A positional number is still accepted as the
//! node limit for backwards compatibility.
//!
//! `--jobs N` runs the benchmark entries on a pool of N worker threads
//! (default: the machine's available parallelism), one BDD manager — and
//! one set of budgets and protection roots — per checker run per worker;
//! the verdict / step / peak-live columns are byte-identical to a
//! sequential run, only the wall-time fields vary. `--sweep-cluster-limit`
//! switches to the cluster-limit sweep (partitioned basic Eijk over every
//! benchmark × every limit; defaults 500/2000/10000/50000, overridable
//! with `--sweep-limits 500,2000,…`), the EXPERIMENTS.md table that
//! grounds the 2,000-node default.
use hash_bench::{cli, table2};
use std::time::Duration;

const VALUE_FLAGS: &[&str] = &[
    "--node-limit",
    "--max-iterations",
    "--max-refinements",
    "--cluster-limit",
    "--time-limit",
    "--jobs",
    "--sweep-limits",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = table2::default_options();
    if let Some(n) = cli::positional(&args, VALUE_FLAGS)
        .first()
        .and_then(|s| s.parse().ok())
    {
        options = options.with_node_limit(n);
    }
    if let Some(n) = cli::opt_value(&args, "--node-limit").and_then(|s| s.parse().ok()) {
        options = options.with_node_limit(n);
    }
    if let Some(n) = cli::opt_value(&args, "--max-iterations").and_then(|s| s.parse().ok()) {
        options = options.with_max_iterations(n);
    }
    if let Some(n) = cli::opt_value(&args, "--max-refinements").and_then(|s| s.parse().ok()) {
        options = options.with_max_refinements(n);
    }
    if cli::flag(&args, "--no-reorder") {
        options = options.with_reorder(false);
    }
    if let Some(secs) = cli::opt_value(&args, "--time-limit")
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s >= 0.0)
    {
        options = options.with_time_limit(Duration::from_secs_f64(secs));
    }
    let cluster_limit = cli::opt_value(&args, "--cluster-limit")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(table2::default_cluster_limit);
    if cli::flag(&args, "--partitioned") || cli::flag(&args, "--cluster-limit") {
        options = options.partitioned(cluster_limit);
    }
    let jobs = cli::opt_value(&args, "--jobs")
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(table2::default_jobs);

    if cli::flag(&args, "--sweep-cluster-limit") {
        let limits: Vec<usize> = cli::opt_value(&args, "--sweep-limits")
            .map(|s| {
                s.split(',')
                    .filter_map(|p| p.trim().parse().ok())
                    .collect::<Vec<usize>>()
            })
            .filter(|l| !l.is_empty())
            .unwrap_or_else(table2::default_sweep_limits);
        let rows = table2::sweep_cluster_limits(&limits, options, jobs);
        if cli::flag(&args, "--json") {
            print!(
                "{}",
                table2::render_sweep_json(&rows, &limits, &options, jobs)
            );
        } else {
            println!(
                "Table II cluster-limit sweep — partitioned basic Eijk \
                 (times in seconds, '-' = blow-up; node limit {}, {} jobs)",
                options.node_limit, jobs
            );
            print!("{}", table2::render_sweep(&rows, &limits));
        }
        return;
    }

    let rows = table2::run_jobs(options, jobs);
    if cli::flag(&args, "--json") {
        print!("{}", table2::render_json(&rows, &options, jobs));
    } else {
        println!(
            "Table II — IWLS'91-style benchmarks (times in seconds, '-' = blow-up; \
             Eijk node limit {}, max {} iterations, {} jobs{})",
            options.node_limit,
            options.max_iterations,
            jobs,
            match options.partition {
                Some(limit) => format!(", partitioned at cluster limit {limit}"),
                None => String::new(),
            }
        );
        print!("{}", table2::render(&rows));
    }
}
