//! Regenerates Table II of the paper: IWLS'91-style benchmarks compared
//! across Eijk, Eijk+, partitioned Eijk, SIS and HASH.
//!
//! The van Eijk limits are configurable: `--node-limit N` (a *live*-node
//! budget since the BDD engine garbage collects), `--max-iterations N`,
//! `--max-refinements N`, and `--no-reorder` disables sifting dynamic
//! variable reordering (PR 1's open item was that a too-small node limit
//! made every Eijk entry blow up; see EXPERIMENTS.md for the sweep).
//! `--time-limit SECONDS` arms a wall-clock deadline per van Eijk run
//! (checked in the BDD node constructor, reported as a dash like the other
//! resource limits). `--partitioned` switches the `Eijk`/`Eijk+` columns
//! to the clustered transition relation with early quantification and
//! `--cluster-limit N` sets the cluster-size bound (passing it implies
//! `--partitioned`); the `EijkP` column always reports the partitioned
//! basic checker — at the default cluster limit on a default run — so one
//! pass records the monolithic-vs-partitioned ablation. `--json` emits the
//! machine-readable snapshot. A positional number is still accepted as the
//! node limit for backwards compatibility.
use hash_bench::{cli, table2};
use std::time::Duration;

const VALUE_FLAGS: &[&str] = &[
    "--node-limit",
    "--max-iterations",
    "--max-refinements",
    "--cluster-limit",
    "--time-limit",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = table2::default_options();
    if let Some(n) = cli::positional(&args, VALUE_FLAGS)
        .first()
        .and_then(|s| s.parse().ok())
    {
        options = options.with_node_limit(n);
    }
    if let Some(n) = cli::opt_value(&args, "--node-limit").and_then(|s| s.parse().ok()) {
        options = options.with_node_limit(n);
    }
    if let Some(n) = cli::opt_value(&args, "--max-iterations").and_then(|s| s.parse().ok()) {
        options = options.with_max_iterations(n);
    }
    if let Some(n) = cli::opt_value(&args, "--max-refinements").and_then(|s| s.parse().ok()) {
        options = options.with_max_refinements(n);
    }
    if cli::flag(&args, "--no-reorder") {
        options = options.with_reorder(false);
    }
    if let Some(secs) = cli::opt_value(&args, "--time-limit")
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s >= 0.0)
    {
        options = options.with_time_limit(Duration::from_secs_f64(secs));
    }
    let cluster_limit = cli::opt_value(&args, "--cluster-limit")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(table2::default_cluster_limit);
    if cli::flag(&args, "--partitioned") || cli::flag(&args, "--cluster-limit") {
        options = options.partitioned(cluster_limit);
    }
    let rows = table2::run_with(options);
    if cli::flag(&args, "--json") {
        print!("{}", table2::render_json(&rows, &options));
    } else {
        println!(
            "Table II — IWLS'91-style benchmarks (times in seconds, '-' = blow-up; \
             Eijk node limit {}, max {} iterations{})",
            options.node_limit,
            options.max_iterations,
            match options.partition {
                Some(limit) => format!(", partitioned at cluster limit {limit}"),
                None => String::new(),
            }
        );
        print!("{}", table2::render(&rows));
    }
}
