//! Regenerates Table II of the paper: IWLS'91-style benchmarks compared
//! across Eijk, Eijk+, SIS and HASH.
use hash_bench::table2;

fn main() {
    let node_limit: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let rows = table2::run(node_limit);
    println!("Table II — IWLS'91-style benchmarks (times in seconds, '-' = blow-up)");
    print!("{}", table2::render(&rows));
}
