//! Ablation: the cost of composing synthesis theorems by transitivity
//! compared with the cost of the individual steps. With the hash-consed
//! kernel the per-step join and the composition must stay flat in `n`.
//!
//! `--json` emits a machine-readable snapshot.
use hash_bench::{ablation, cli};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows = ablation::compound_rows(&[4, 8, 16, 32]);
    if cli::flag(&args, "--json") {
        println!("{{");
        println!("  \"experiment\": \"ablation_compound\",");
        println!("  \"rows\": [");
        println!("{}", ablation::compound_rows_json(&rows));
        println!("  ]");
        println!("}}");
    } else {
        for (n, retime, join, compose) in rows {
            println!("n={n}: retime {retime:.4}s, join {join:.4}s, compose {compose:.6}s");
        }
    }
}
