//! Ablation: the cost of composing synthesis theorems by transitivity
//! compared with the cost of the individual steps.
use hash_bench::ablation;

fn main() {
    for n in [4u32, 8, 16, 32] {
        let (retime, join, compose) = ablation::compound(n);
        println!("n={n}: retime {retime:.4}s, join {join:.4}s, compose {compose:.6}s");
    }
}
