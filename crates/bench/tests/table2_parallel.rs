//! The parallel Table-II driver must be a pure speed-up: at any job count
//! the deterministic columns (verdict/status, traversal steps, post-GC
//! peak-live) are byte-identical to a sequential run, rows come back in
//! benchmark order regardless of completion order, and the cluster-limit
//! sweep obeys the same contract cell-for-cell.
//!
//! The checks run on a trimmed benchmark subset at a small node limit so
//! the monolithic blow-ups are cheap; what matters here is the pool
//! plumbing, not the blow-up frontier (EXPERIMENTS.md records the full
//! table at the real budget).

use hash_bench::table2;
use hash_circuits::iwls::{table2_benchmarks, Benchmark};
use hash_equiv::prelude::*;

/// A fast configuration: small live-node budget (the monolithic runs on
/// these benchmarks blow up quickly and deterministically), reordering on.
fn fast_options() -> EijkOptions {
    table2::default_options().with_node_limit(30_000)
}

fn subset(names: &[&str]) -> Vec<Benchmark> {
    table2_benchmarks()
        .into_iter()
        .filter(|b| names.contains(&b.name))
        .collect()
}

/// The deterministic part of a timing column, as a comparable value.
fn fingerprint(t: &hash_bench::Timing) -> (String, usize, Option<usize>) {
    (t.status.to_string(), t.steps, t.peak_live)
}

#[test]
fn parallel_rows_match_sequential_rows() {
    let benchmarks = subset(&["s344", "s444"]);
    assert_eq!(benchmarks.len(), 2, "trimmed suite resolves");
    let sequential = table2::run_selected_jobs(&benchmarks, fast_options(), 1);
    let parallel = table2::run_selected_jobs(&benchmarks, fast_options(), 3);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(parallel.iter()) {
        assert_eq!(s.name, p.name, "deterministic row order");
        assert_eq!((s.flip_flops, s.gates), (p.flip_flops, p.gates));
        for (label, ts, tp) in [
            ("eijk", &s.eijk, &p.eijk),
            ("eijk_plus", &s.eijk_plus, &p.eijk_plus),
            ("eijk_part", &s.eijk_part, &p.eijk_part),
            ("sis", &s.sis, &p.sis),
            ("hash", &s.hash, &p.hash),
        ] {
            assert_eq!(
                fingerprint(ts),
                fingerprint(tp),
                "{}: {label} column differs between jobs=1 and jobs=3",
                s.name
            );
        }
        assert!(s.wall_seconds > 0.0 && p.wall_seconds > 0.0);
    }
    // The JSON documents agree byte-for-byte once the run-dependent
    // fields (every wall-time, the job count) are stripped: each such
    // key's numeric value is replaced by a placeholder.
    fn strip_key(text: &str, key: &str) -> String {
        let mut out = String::new();
        let mut rest = text;
        while let Some(pos) = rest.find(key) {
            out.push_str(&rest[..pos]);
            out.push_str(key);
            out.push('X');
            let after = &rest[pos + key.len()..];
            let end = after
                .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
                .unwrap_or(after.len());
            rest = &after[end..];
        }
        out.push_str(rest);
        out
    }
    let strip = |text: &str| -> String {
        let t = strip_key(text, "\"seconds\": ");
        let t = strip_key(&t, "\"wall_seconds\": ");
        strip_key(&t, "\"jobs\": ")
    };
    let opts = fast_options();
    let js = strip(&table2::render_json(&sequential, &opts, 1));
    let jp = strip(&table2::render_json(&parallel, &opts, 3));
    assert_eq!(js, jp, "stripped JSON is byte-identical");
    assert_ne!(
        table2::render_json(&sequential, &opts, 1),
        table2::render_json(&sequential, &opts, 3),
        "the jobs field is recorded"
    );
}

#[test]
fn oversized_job_count_is_clamped_and_deterministic() {
    let benchmarks = subset(&["s344"]);
    let rows = table2::run_selected_jobs(&benchmarks, fast_options(), 64);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].name, "s344");
    // The partitioned column completes within the small budget (pinned by
    // the PR 4 results); the monolithic columns blow up against it.
    assert_eq!(rows[0].eijk_part.status, "ok");
    assert_eq!(rows[0].eijk.status, "limit");
}

#[test]
fn cluster_sweep_rows_are_ordered_and_deterministic() {
    let limits = [500usize, 2_000];
    let opts = fast_options();
    let seq = table2::sweep_cluster_limits(&limits, opts, 1);
    let par = table2::sweep_cluster_limits(&limits, opts, 3);
    let names: Vec<&str> = seq.iter().map(|r| r.name.as_str()).collect();
    let expected: Vec<&str> = table2_benchmarks().iter().map(|b| b.name).collect();
    assert_eq!(names, expected, "rows in benchmark order");
    for (s, p) in seq.iter().zip(par.iter()) {
        assert_eq!(s.name, p.name);
        assert_eq!(s.entries.len(), limits.len());
        for (ts, tp) in s.entries.iter().zip(p.entries.iter()) {
            assert_eq!(fingerprint(ts), fingerprint(tp), "{}", s.name);
        }
    }
    let rendered = table2::render_sweep(&seq, &limits);
    assert!(rendered.contains("EijkP@500") && rendered.contains("EijkP@2000"));
    let json = table2::render_sweep_json(&seq, &limits, &opts, 1);
    assert!(json.contains("\"cluster_limits\": [500, 2000]"));
    assert!(json.contains("table2_cluster_sweep"));
}
