//! Criterion bench for the BDD substrate: building the product machine and
//! one image computation for the Figure-2 example.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hash_circuits::figure2::Figure2;
use hash_equiv::machine::ProductMachine;
use hash_netlist::gate::bit_blast;
use hash_retiming::prelude::*;

fn bench_bdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_product_machine");
    group.sample_size(10);
    for n in [4u32, 8] {
        let fig = Figure2::new(n);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let ga = bit_blast(&fig.netlist).unwrap().netlist;
        let gb = bit_blast(&retimed).unwrap().netlist;
        group.bench_with_input(BenchmarkId::new("build_and_image", n), &n, |b, _| {
            b.iter(|| {
                let mut pm = ProductMachine::build(&ga, &gb, 1 << 22).unwrap();
                let t = pm.transition_relation().unwrap();
                let init = pm.initial_state().unwrap();
                pm.image(init, t).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bdd);
criterion_main!(benches);
