//! Criterion bench for the BDD engine: ite/exists/rename scaling curves
//! with dynamic reordering on vs. off, plus the product-machine image
//! computation the verification baselines spend their time in.
//!
//! The scaling workload is the classic sifting showcase
//! `(x0∧xn) ∨ (x1∧x(n+1)) ∨ …` built under the adversarial interleaved
//! order: exponential with the order fixed, linear once sifting pairs the
//! variables up.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hash_bdd::{BddManager, BddRef};
use hash_circuits::figure2::Figure2;
use hash_equiv::machine::ProductMachine;
use hash_netlist::gate::bit_blast;
use hash_retiming::prelude::*;

/// Builds `∨_i (x_i ∧ x_{n+i})` — adversarial under the default order.
fn pairs_function(m: &mut BddManager, n: u32) -> BddRef {
    let mut f = m.constant(false);
    m.protect(f);
    for i in 0..n {
        let a = m.var(i).unwrap();
        let b = m.var(n + i).unwrap();
        let ab = m.and(a, b).unwrap();
        let next = m.or(f, ab).unwrap();
        m.update_protected(&mut f, next);
    }
    f
}

fn manager(n: u32, reorder: bool) -> BddManager {
    BddManager::new(2 * n).with_dynamic_reordering(reorder)
}

fn bench_manager_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_manager");
    group.sample_size(10);
    for n in [8u32, 11] {
        for reorder in [false, true] {
            let label = if reorder { "reorder" } else { "fixed" };
            group.bench_with_input(
                BenchmarkId::new(format!("ite_build_{label}"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        let mut m = manager(n, reorder);
                        let f = pairs_function(&mut m, n);
                        m.size(f)
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("exists_{label}"), n),
                &n,
                |b, &n| {
                    let mut m = manager(n, reorder);
                    let f = pairs_function(&mut m, n);
                    let evens: Vec<u32> = (0..n).map(|i| 2 * i).collect();
                    b.iter(|| {
                        let r = m.exists(f, &evens).unwrap();
                        m.collect_garbage();
                        r
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("rename_{label}"), n),
                &n,
                |b, &n| {
                    let mut m = manager(n, reorder);
                    let f = pairs_function(&mut m, n);
                    // Swap the two halves: non-monotone, exercises the
                    // general simultaneous-substitution path.
                    let map: Vec<(u32, u32)> =
                        (0..n).flat_map(|i| [(i, n + i), (n + i, i)]).collect();
                    b.iter(|| {
                        let r = m.rename(f, &map).unwrap();
                        m.collect_garbage();
                        r
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_product_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_product_machine");
    group.sample_size(10);
    for n in [4u32, 8] {
        let fig = Figure2::new(n);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        let ga = bit_blast(&fig.netlist).unwrap().netlist;
        let gb = bit_blast(&retimed).unwrap().netlist;
        group.bench_with_input(BenchmarkId::new("build_and_image", n), &n, |b, _| {
            b.iter(|| {
                let mut pm = ProductMachine::build(&ga, &gb, 1 << 22).unwrap();
                let t = pm.transition_relation().unwrap();
                pm.manager.protect(t);
                let init = pm.initial_state().unwrap();
                pm.manager.protect(init);
                pm.image(init, t).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_manager_ops, bench_product_machine);
criterion_main!(benches);
