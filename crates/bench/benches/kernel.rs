//! Criterion bench for the logic kernel.
//!
//! Besides the original one-time cost (deriving the universal retiming
//! theorem) and the per-compound-step cost (transitivity), this bench pins
//! the hash-consing arena's cost model: term equality and transitivity
//! composition are measured at several term sizes and must stay flat —
//! equality is an id compare and `TRANS` only re-interns an already-interned
//! equation — while substitution over shared structure is memoised.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hash_bench::term_chain as chain;
use hash_circuits::figure2::Figure2;
use hash_core::prelude::*;
use hash_logic::prelude::*;

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.sample_size(20);
    group.bench_function("derive_retiming_theorem", |b| {
        b.iter(|| Hash::new().unwrap())
    });
    let mut hash = Hash::new().unwrap();
    let fig = Figure2::new(8);
    let step1 = hash
        .formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
        .unwrap();
    let step2 = hash.join_step_of(&step1.theorem).unwrap();
    group.bench_function("compound_transitivity", |b| {
        b.iter(|| hash.compound(&step1.theorem, &step2).unwrap())
    });
    group.finish();

    // O(1) structural equality: the two handles are ids, the terms huge.
    let mut group = c.benchmark_group("term_eq");
    for n in [100usize, 1_000, 10_000] {
        let t1 = chain(n);
        let t2 = chain(n);
        group.bench_function(format!("eq_n{n}"), |b| {
            b.iter(|| black_box(black_box(t1) == black_box(t2)))
        });
        group.bench_function(format!("aconv_n{n}"), |b| {
            b.iter(|| black_box(t1.aconv(black_box(&t2))))
        });
    }
    group.finish();

    // O(1) transitivity in term size: TRANS on ⊢ a = b, ⊢ b = c where the
    // terms are chains of increasing size. dest_eq, the aconv middle-term
    // check (id compare) and the re-interning of `a = c` are all cache hits.
    let mut group = c.benchmark_group("trans");
    for n in [100usize, 1_000, 10_000] {
        let a = chain(n);
        let f = mk_var("f", Type::fun(Type::bool(), Type::bool()));
        let b_t = mk_comb(&f, &a).unwrap();
        let c_t = mk_comb(&f, &b_t).unwrap();
        let th1 = Theorem::assume(&mk_eq(&a, &b_t).unwrap()).unwrap();
        let th2 = Theorem::assume(&mk_eq(&b_t, &c_t).unwrap()).unwrap();
        group.bench_function(format!("trans_n{n}"), |b| {
            b.iter(|| Theorem::trans(black_box(&th1), black_box(&th2)).unwrap())
        });
    }
    group.finish();

    // Memoised substitution: replacing x deep inside the chain re-uses the
    // (subst, term) cache across iterations.
    let mut group = c.benchmark_group("subst");
    for n in [100usize, 1_000, 10_000] {
        let t = chain(n);
        let x = Var::new("x", Type::bool());
        let theta = vec![(x, mk_var("y", Type::bool()))];
        group.bench_function(format!("vsubst_n{n}"), |b| {
            b.iter(|| black_box(vsubst(black_box(&theta), &t)))
        });
    }
    group.finish();

    // Retiming-theorem instantiation at growing circuit width: the paper's
    // "theorem instantiation, not state traversal" cost.
    let mut group = c.benchmark_group("retime");
    group.sample_size(10);
    for n in [8u32, 32, 64] {
        let fig = Figure2::new(n);
        group.bench_function(format!("formal_retime_n{n}"), |b| {
            b.iter(|| {
                hash.formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
