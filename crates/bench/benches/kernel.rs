//! Criterion bench for the logic kernel: deriving the universal retiming
//! theorem (the tool designer's one-time cost) and composing theorems by
//! transitivity (the per-compound-step cost).
use criterion::{criterion_group, criterion_main, Criterion};
use hash_circuits::figure2::Figure2;
use hash_core::prelude::*;

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.sample_size(20);
    group.bench_function("derive_retiming_theorem", |b| {
        b.iter(|| Hash::new().unwrap())
    });
    let mut hash = Hash::new().unwrap();
    let fig = Figure2::new(8);
    let step1 = hash
        .formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
        .unwrap();
    let step2 = hash.join_step_of(&step1.theorem).unwrap();
    group.bench_function("compound_transitivity", |b| {
        b.iter(|| hash.compound(&step1.theorem, &step2).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
