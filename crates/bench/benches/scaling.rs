//! Criterion bench for the multiplier scaling study (Section V).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hash_circuits::FracMult;
use hash_core::prelude::*;
use hash_retiming::prelude::*;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiplier_scaling");
    group.sample_size(10);
    for width in [8u32, 16, 32] {
        let m = FracMult::new(width).netlist;
        let cut = maximal_forward_cut(&m);
        group.bench_with_input(BenchmarkId::new("hash", width), &width, |b, _| {
            b.iter(|| {
                let mut hash = Hash::new().unwrap();
                hash.formal_retime(&m, &cut, RetimeOptions::default())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
