//! Criterion bench for Table II: HASH versus the Eijk+ checker on the
//! smallest benchmark of the suite.
use criterion::{criterion_group, criterion_main, Criterion};
use hash_circuits::iwls::{generate, table2_benchmarks};
use hash_core::prelude::*;
use hash_equiv::prelude::*;
use hash_retiming::prelude::*;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_s344");
    group.sample_size(10);
    let bench = table2_benchmarks()[0].clone();
    let netlist = generate(&bench);
    let cut = maximal_forward_cut(&netlist);
    let retimed = forward_retime(&netlist, &cut).unwrap();
    group.bench_function("hash", |b| {
        b.iter(|| {
            let mut hash = Hash::new().unwrap();
            hash.formal_retime(&netlist, &cut, RetimeOptions::default())
                .unwrap()
        })
    });
    group.bench_function("eijk_plus", |b| {
        b.iter(|| check_equivalence_eijk_plus(&netlist, &retimed, EijkOptions::new(50_000, 500, 8)))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
