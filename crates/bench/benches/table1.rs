//! Criterion bench for Table I: one HASH formal retiming and one SMV
//! verification of the Figure-2 example at small widths.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hash_circuits::figure2::Figure2;
use hash_core::prelude::*;
use hash_equiv::prelude::*;
use hash_retiming::prelude::*;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for n in [4u32, 8] {
        let fig = Figure2::new(n);
        let retimed = forward_retime(&fig.netlist, &fig.correct_cut()).unwrap();
        group.bench_with_input(BenchmarkId::new("hash", n), &n, |b, _| {
            b.iter(|| {
                let mut hash = Hash::new().unwrap();
                hash.formal_retime(&fig.netlist, &fig.correct_cut(), RetimeOptions::default())
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("smv", n), &n, |b, _| {
            b.iter(|| {
                check_equivalence_smv(
                    &fig.netlist,
                    &retimed,
                    SmvOptions::default().with_node_limit(200_000),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sis", n), &n, |b, _| {
            b.iter(|| {
                check_equivalence_sis(
                    &fig.netlist,
                    &retimed,
                    SisOptions {
                        max_states: 1 << 18,
                        max_input_bits: 14,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
