//! Probes one Table-II benchmark with one van Eijk configuration and
//! prints the full verification result, including the post-GC peak-live
//! node count that the table renderers omit — the tool behind the
//! EXPERIMENTS.md partitioning ablation.
//!
//! Usage:
//!   cargo run --release -p hash-bench --example partition_probe -- \
//!     s641 [--partitioned] [--cluster-limit N] [--no-reorder] \
//!     [--node-limit N] [--time-limit SECONDS] [--plus]
use hash_bench::{cli, table2};
use hash_circuits::iwls::{generate, table2_benchmarks};
use hash_equiv::prelude::*;
use hash_retiming::prelude::*;
use std::time::Duration;

const VALUE_FLAGS: &[&str] = &["--node-limit", "--cluster-limit", "--time-limit"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = cli::positional(&args, VALUE_FLAGS)
        .first()
        .cloned()
        .unwrap_or_else(|| "s641".to_string());
    let suite = table2_benchmarks();
    let Some(benchmark) = suite.iter().find(|b| b.name == name) else {
        eprintln!(
            "unknown benchmark {name}; have: {}",
            suite.iter().map(|b| b.name).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    };

    let mut options = table2::default_options();
    if let Some(n) = cli::opt_value(&args, "--node-limit").and_then(|s| s.parse().ok()) {
        options = options.with_node_limit(n);
    }
    if cli::flag(&args, "--no-reorder") {
        options = options.with_reorder(false);
    }
    if let Some(secs) = cli::opt_value(&args, "--time-limit")
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s >= 0.0)
    {
        options = options.with_time_limit(Duration::from_secs_f64(secs));
    }
    let cluster_limit = cli::opt_value(&args, "--cluster-limit")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(table2::default_cluster_limit);
    if cli::flag(&args, "--partitioned") || cli::flag(&args, "--cluster-limit") {
        options = options.partitioned(cluster_limit);
    }

    let netlist = generate(benchmark);
    let cut = maximal_forward_cut(&netlist);
    let retimed = forward_retime(&netlist, &cut).expect("benchmark is retimable");
    let result = if cli::flag(&args, "--plus") {
        check_equivalence_eijk_plus(&netlist, &retimed, options)
    } else {
        check_equivalence_eijk(&netlist, &retimed, options)
    };
    println!(
        "{name} (partition {:?}, reorder {}, node limit {}): {result}",
        options.partition, options.reorder, options.node_limit
    );
}
