//! Encoding netlists as Automata-theory terms.
//!
//! The formal retiming step of `hash-core` manipulates circuits as logical
//! terms `automaton (\i s. g i (f s)) q`. This module builds that term from
//! a [`Netlist`] and a retiming [`Cut`]: the cut cells become the block `f`,
//! everything else (including the computation of all next-state values)
//! becomes the block `g`, and the registers become the state tuple with the
//! moved registers first.
//!
//! Internal signals are bound with `let`-style beta redexes so the term
//! size stays linear in the number of cells.

use crate::theory::{mk_automaton, mk_literal, op_const};
use hash_logic::error::Result;
use hash_logic::pair::{mk_pair, mk_tuple, tuple_project};
use hash_logic::prelude::*;
use hash_netlist::prelude::*;
use hash_retiming::prelude::{analyze_forward_cut, Cut};
use std::collections::BTreeMap;

/// The term-level encoding of a circuit split along a retiming cut.
#[derive(Clone, Debug)]
pub struct SplitEncoding {
    /// The block `f`: `\s. mid` — the cut cells plus the pass-through of
    /// the registers that are not moved.
    pub f_term: TermRef,
    /// The block `g`: `\i x. (outputs, next-state)` — everything else.
    pub g_term: TermRef,
    /// The initial state `q` as a tuple of literals (moved registers first).
    pub init_term: TermRef,
    /// The combinational function `\i s. g i (f s)`.
    pub comb_term: TermRef,
    /// The complete circuit term `automaton comb q`.
    pub circuit_term: TermRef,
    /// The input tuple type.
    pub input_ty: Type,
    /// The state tuple type (moved registers first, then kept registers).
    pub state_ty: Type,
    /// The intermediate type produced by `f` (cut outputs, then kept
    /// registers).
    pub mid_ty: Type,
    /// The output tuple type.
    pub output_ty: Type,
    /// Indices (into `netlist.registers()`) of the moved registers, in
    /// state-tuple order.
    pub moved_registers: Vec<usize>,
    /// Indices of the registers that stay in place, in state-tuple order
    /// after the moved ones.
    pub kept_registers: Vec<usize>,
    /// The signals registered after retiming (the cut outputs), in
    /// mid-tuple order.
    pub cut_outputs: Vec<SignalId>,
}

struct Encoder<'a> {
    netlist: &'a Netlist,
    producer: BTreeMap<SignalId, usize>,
}

impl<'a> Encoder<'a> {
    fn signal_var(&self, id: SignalId) -> Result<Var> {
        let sig = self
            .netlist
            .signal(id)
            .map_err(|e| LogicError::theory(e.to_string()))?;
        Ok(Var::new(
            format!("{}_{}", sig.name, id.index()),
            Type::bv(sig.width),
        ))
    }

    /// Wraps `body` in let-bindings for the given cells (in topological
    /// order), where each cell's defining expression is produced by
    /// `cell_expr`.
    fn with_lets(
        &self,
        theory: &mut Theory,
        cells: &[usize],
        env: &BTreeMap<SignalId, TermRef>,
        body: TermRef,
    ) -> Result<TermRef> {
        // Build definitions first (they may only reference earlier cells).
        let mut env = env.clone();
        let mut defs: Vec<(Var, TermRef)> = Vec::new();
        for &ci in cells {
            let cell = &self.netlist.cells()[ci];
            let widths: Vec<u32> = cell
                .inputs
                .iter()
                .map(|s| self.netlist.width(*s).unwrap_or(1))
                .collect();
            let op_term = op_const(theory, &cell.op, &widths)?;
            let args: Vec<TermRef> = cell
                .inputs
                .iter()
                .map(|s| {
                    env.get(s).cloned().ok_or_else(|| {
                        LogicError::theory(format!(
                            "signal {} is not available in this block",
                            self.netlist.signals()[s.index()].name
                        ))
                    })
                })
                .collect::<Result<_>>()?;
            let expr = list_mk_comb(&op_term, &args)?;
            let var = self.signal_var(cell.output)?;
            env.insert(cell.output, var.term());
            defs.push((var, expr));
        }
        // The caller builds `body` against the same environment, so rebuild
        // it here using the final env via substitution-free construction:
        // `body` was built by the caller with `lookup` closures over the
        // same env — instead we simply wrap the provided body.
        let mut acc = body;
        for (var, expr) in defs.into_iter().rev() {
            acc = mk_comb(&mk_abs(&var, &acc), &expr)?;
        }
        Ok(acc)
    }
}

/// Splits the netlist along the cut and encodes it as Automata-theory
/// terms.
///
/// # Errors
///
/// Fails if the cut does not satisfy the retiming pattern (see
/// [`analyze_forward_cut`]) or the encoding runs into a type error.
pub fn encode_split(theory: &mut Theory, netlist: &Netlist, cut: &Cut) -> Result<SplitEncoding> {
    let boundary = analyze_forward_cut(netlist, cut)
        .map_err(|e| LogicError::theory(format!("cut does not match the pattern: {e}")))?;
    let order = netlist
        .topo_order()
        .map_err(|e| LogicError::theory(e.to_string()))?;
    let cut_set: std::collections::BTreeSet<usize> = cut.cells.iter().copied().collect();
    let f_cells: Vec<usize> = order
        .iter()
        .copied()
        .filter(|c| cut_set.contains(c))
        .collect();
    let g_cells: Vec<usize> = order
        .iter()
        .copied()
        .filter(|c| !cut_set.contains(c))
        .collect();

    let moved_registers = boundary.input_registers.clone();
    let kept_registers: Vec<usize> = (0..netlist.registers().len())
        .filter(|i| !moved_registers.contains(i))
        .collect();
    let cut_outputs = boundary.output_signals.clone();

    let producer: BTreeMap<SignalId, usize> = netlist
        .cells()
        .iter()
        .enumerate()
        .map(|(i, c)| (c.output, i))
        .collect();
    let enc = Encoder { netlist, producer };
    let _ = &enc.producer;

    let reg_width = |i: usize| netlist.registers()[i].init.width();

    // Types.
    let input_widths: Vec<u32> = netlist
        .inputs()
        .iter()
        .map(|s| netlist.width(*s).unwrap_or(1))
        .collect();
    let input_ty = Type::prod_list(
        &input_widths
            .iter()
            .map(|w| Type::bv(*w))
            .collect::<Vec<_>>(),
    );
    let state_widths: Vec<u32> = moved_registers
        .iter()
        .chain(kept_registers.iter())
        .map(|&i| reg_width(i))
        .collect();
    let state_ty = Type::prod_list(
        &state_widths
            .iter()
            .map(|w| Type::bv(*w))
            .collect::<Vec<_>>(),
    );
    let mid_widths: Vec<u32> = cut_outputs
        .iter()
        .map(|s| netlist.width(*s).unwrap_or(1))
        .chain(kept_registers.iter().map(|&i| reg_width(i)))
        .collect();
    let mid_ty = Type::prod_list(&mid_widths.iter().map(|w| Type::bv(*w)).collect::<Vec<_>>());
    let output_widths: Vec<u32> = netlist
        .outputs()
        .iter()
        .map(|s| netlist.width(*s).unwrap_or(1))
        .collect();
    let output_ty = Type::prod_list(
        &output_widths
            .iter()
            .map(|w| Type::bv(*w))
            .collect::<Vec<_>>(),
    );

    let state_arity = state_widths.len().max(1);
    let mid_arity = mid_widths.len().max(1);
    let input_arity = input_widths.len().max(1);

    // ---- f = \s. (cut outputs..., kept registers...) ----------------------
    let s_var = Var::new("s", state_ty.clone());
    let mut f_env: BTreeMap<SignalId, TermRef> = BTreeMap::new();
    for (pos, &ri) in moved_registers.iter().enumerate() {
        let q = netlist.registers()[ri].output;
        f_env.insert(q, tuple_project(&s_var.term(), pos, state_arity)?);
    }
    for (k, &ri) in kept_registers.iter().enumerate() {
        let q = netlist.registers()[ri].output;
        f_env.insert(
            q,
            tuple_project(&s_var.term(), moved_registers.len() + k, state_arity)?,
        );
    }
    // The f body references cut-cell outputs through their let variables.
    let mut f_body_env = f_env.clone();
    for &ci in &f_cells {
        let out = netlist.cells()[ci].output;
        f_body_env.insert(out, enc.signal_var(out)?.term());
    }
    let mut f_components: Vec<TermRef> = Vec::new();
    for s in &cut_outputs {
        f_components.push(f_body_env.get(s).cloned().ok_or_else(|| {
            LogicError::theory("cut output is not produced by the cut".to_string())
        })?);
    }
    for &ri in &kept_registers {
        let q = netlist.registers()[ri].output;
        f_components.push(f_env[&q]);
    }
    let f_tuple = mk_tuple(&f_components)?;
    let f_with_lets = enc.with_lets(theory, &f_cells, &f_env, f_tuple)?;
    let f_term = mk_abs(&s_var, &f_with_lets);

    // ---- g = \i x. (outputs, next state) -----------------------------------
    let i_var = Var::new("i", input_ty.clone());
    let x_var = Var::new("x", mid_ty.clone());
    let mut g_env: BTreeMap<SignalId, TermRef> = BTreeMap::new();
    for (pos, s) in netlist.inputs().iter().enumerate() {
        g_env.insert(*s, tuple_project(&i_var.term(), pos, input_arity)?);
    }
    for (pos, s) in cut_outputs.iter().enumerate() {
        g_env.insert(*s, tuple_project(&x_var.term(), pos, mid_arity)?);
    }
    for (k, &ri) in kept_registers.iter().enumerate() {
        let q = netlist.registers()[ri].output;
        g_env.insert(
            q,
            tuple_project(&x_var.term(), cut_outputs.len() + k, mid_arity)?,
        );
    }
    let mut g_body_env = g_env.clone();
    for &ci in &g_cells {
        let out = netlist.cells()[ci].output;
        g_body_env.insert(out, enc.signal_var(out)?.term());
    }
    let lookup_g = |s: &SignalId| -> Result<TermRef> {
        g_body_env.get(s).cloned().ok_or_else(|| {
            LogicError::theory(format!(
                "signal {} is not available to the block g",
                netlist.signals()[s.index()].name
            ))
        })
    };
    let out_components: Vec<TermRef> = netlist
        .outputs()
        .iter()
        .map(lookup_g)
        .collect::<Result<_>>()?;
    let next_components: Vec<TermRef> = moved_registers
        .iter()
        .chain(kept_registers.iter())
        .map(|&ri| lookup_g(&netlist.registers()[ri].input))
        .collect::<Result<_>>()?;
    let g_pair = mk_pair(&mk_tuple(&out_components)?, &mk_tuple(&next_components)?)?;
    let g_with_lets = enc.with_lets(theory, &g_cells, &g_env, g_pair)?;
    let g_term = mk_abs(&i_var, &mk_abs(&x_var, &g_with_lets));

    // ---- initial state, combinational function and circuit term ------------
    let init_components: Vec<TermRef> = moved_registers
        .iter()
        .chain(kept_registers.iter())
        .map(|&ri| mk_literal(&netlist.registers()[ri].init))
        .collect();
    let init_term = mk_tuple(&init_components)?;

    let i2 = Var::new("i", input_ty.clone());
    let s2 = Var::new("s", state_ty.clone());
    let applied = mk_comb(
        &mk_comb(&g_term, &i2.term())?,
        &mk_comb(&f_term, &s2.term())?,
    )?;
    let comb_term = mk_abs(&i2, &mk_abs(&s2, &applied));
    let circuit_term = mk_automaton(&comb_term, &init_term)?;

    Ok(SplitEncoding {
        f_term,
        g_term,
        init_term,
        comb_term,
        circuit_term,
        input_ty,
        state_ty,
        mid_ty,
        output_ty,
        moved_registers,
        kept_registers,
        cut_outputs,
    })
}

/// Extracts the bit-vector values of a fully evaluated (ground) state tuple
/// term, in tuple order.
///
/// # Errors
///
/// Fails if the term is not a right-nested tuple of literal constants.
pub fn literal_tuple_values(t: &TermRef) -> Result<Vec<BitVec>> {
    hash_logic::pair::strip_tuple(t)
        .iter()
        .map(|part| {
            let c = part.dest_const()?;
            crate::theory::parse_literal(&c.name, &c.ty).ok_or_else(|| {
                LogicError::ill_formed(
                    "literal_tuple_values",
                    format!("not a literal constant: {part}"),
                )
            })
        })
        .collect()
}

/// Demonstrates the paper's Figure-4 point: for a *false* cut the equality
/// between the original combinational function and the wrongly split one
/// cannot even be expressed, because the two sides have different types.
/// Returns the kernel's type-mismatch error.
///
/// # Errors
///
/// Always fails (that is the point); the interesting case is the
/// [`LogicError::TypeMismatch`] produced when the false cut changes the
/// state arity.
pub fn false_cut_equation(
    theory: &mut Theory,
    netlist: &Netlist,
    good_cut: &Cut,
    false_cut_cells: &[usize],
) -> Result<TermRef> {
    let good = encode_split(theory, netlist, good_cut)?;
    // Build the "combinational function" the false cut would require:
    // a function of the state restricted to the registers actually read by
    // the false block — its type differs from the original whenever the
    // false cut reads a different set of registers.
    let cells = netlist.cells();
    let mut widths: Vec<Type> = Vec::new();
    for &ci in false_cut_cells {
        if ci >= cells.len() {
            return Err(LogicError::theory(format!("cell index {ci} out of range")));
        }
        for inp in &cells[ci].inputs {
            if netlist.registers().iter().any(|r| r.output == *inp) {
                widths.push(Type::bv(netlist.width(*inp).unwrap_or(1)));
            }
        }
    }
    let false_state_ty = Type::prod_list(&widths);
    let s = Var::new("s", false_state_ty);
    let body = s.term();
    let false_comb = mk_abs(&Var::new("i", good.input_ty.clone()), &mk_abs(&s, &body));
    // The kernel refuses to build the equation: different types.
    mk_eq(&good.comb_term, &false_comb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_circuits::figure2::Figure2;

    fn setup() -> (
        Theory,
        BoolTheory,
        PairTheory,
        crate::theory::AutomataTheory,
    ) {
        let mut thy = Theory::new();
        let b = BoolTheory::install(&mut thy).unwrap();
        let p = PairTheory::install(&mut thy).unwrap();
        let a = crate::theory::AutomataTheory::install(&mut thy).unwrap();
        (thy, b, p, a)
    }

    #[test]
    fn figure2_encodes_with_expected_types() {
        let (mut thy, _, _, _) = setup();
        let fig = Figure2::new(8);
        let enc = encode_split(&mut thy, &fig.netlist, &fig.correct_cut()).unwrap();
        // State = (moved d0 : bv8, kept d1 : bv1).
        assert_eq!(enc.state_ty, Type::prod(Type::bv(8), Type::bv(1)));
        // Mid = (inc output : bv8, kept d1 : bv1).
        assert_eq!(enc.mid_ty, Type::prod(Type::bv(8), Type::bv(1)));
        assert_eq!(enc.output_ty, Type::bv(8));
        assert_eq!(enc.moved_registers.len(), 1);
        assert_eq!(enc.kept_registers.len(), 1);
        // The circuit term is an automaton application over the comb term.
        let (comb, init) = crate::theory::dest_automaton(&enc.circuit_term).unwrap();
        assert!(comb.aconv(&enc.comb_term));
        assert!(init.aconv(&enc.init_term));
        // Types of the blocks.
        assert_eq!(
            enc.f_term.ty(),
            Type::fun(enc.state_ty.clone(), enc.mid_ty.clone())
        );
        assert_eq!(
            enc.g_term.ty(),
            Type::fun(
                enc.input_ty.clone(),
                Type::fun(
                    enc.mid_ty.clone(),
                    Type::prod(enc.output_ty.clone(), enc.state_ty.clone())
                )
            )
        );
    }

    #[test]
    fn initial_state_is_a_literal_tuple() {
        let (mut thy, _, _, _) = setup();
        let fig = Figure2::new(4);
        let enc = encode_split(&mut thy, &fig.netlist, &fig.correct_cut()).unwrap();
        let values = literal_tuple_values(&enc.init_term).unwrap();
        assert_eq!(values.len(), 2);
        assert_eq!(values[0].as_u64(), 0);
        assert_eq!(values[1].as_u64(), 0);
    }

    #[test]
    fn false_cut_produces_type_mismatch() {
        let (mut thy, _, _, _) = setup();
        let fig = Figure2::new(8);
        let err = false_cut_equation(
            &mut thy,
            &fig.netlist,
            &fig.correct_cut(),
            &fig.false_cut().cells,
        )
        .unwrap_err();
        assert!(matches!(err, LogicError::TypeMismatch { .. }), "{err}");
    }

    #[test]
    fn evaluating_f_on_the_initial_state_gives_f_q() {
        let (mut thy, _, p, _) = setup();
        let fig = Figure2::new(8);
        let enc = encode_split(&mut thy, &fig.netlist, &fig.correct_cut()).unwrap();
        let fq = mk_comb(&enc.f_term, &enc.init_term).unwrap();
        let th = crate::theory::eval_ground(&thy, &p, &fq).unwrap();
        let (_, value) = th.dest_eq().unwrap();
        let values = literal_tuple_values(&value).unwrap();
        // f(0, d1=0) = (0 + 1, 0).
        assert_eq!(values[0].as_u64(), 1);
        assert_eq!(values[1].as_u64(), 0);
    }

    #[test]
    fn bad_cut_is_rejected_by_the_encoder() {
        let (mut thy, _, _, _) = setup();
        let fig = Figure2::new(4);
        let err = encode_split(&mut thy, &fig.netlist, &fig.false_cut()).unwrap_err();
        assert!(err.to_string().contains("cut does not match"));
    }
}
