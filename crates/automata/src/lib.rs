//! # hash-automata
//!
//! The Automata theory bridge of the DATE'97 HASH retiming reproduction:
//! synchronous circuits as `(combinational function, initial state)` pairs
//! inside the logic of [`hash_logic`].
//!
//! * [`theory`] installs the logical vocabulary: the `automaton` constant,
//!   bit-vector literals and operators, the trusted evaluation rule used to
//!   compute new initial register values, and the `AUTOMATON_BISIM` axiom
//!   from which `hash-core` derives the universal retiming theorem.
//! * [`encode`] translates a [`hash_netlist::Netlist`] plus a retiming cut
//!   into the term `automaton (\i s. g i (f s)) q` manipulated by the
//!   formal synthesis procedure.
//!
//! ## Example
//!
//! ```
//! use hash_automata::encode::encode_split;
//! use hash_automata::theory::AutomataTheory;
//! use hash_circuits::figure2::Figure2;
//! use hash_logic::prelude::*;
//!
//! # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
//! let mut theory = Theory::new();
//! BoolTheory::install(&mut theory)?;
//! PairTheory::install(&mut theory)?;
//! AutomataTheory::install(&mut theory)?;
//!
//! let fig = Figure2::new(8);
//! let enc = encode_split(&mut theory, &fig.netlist, &fig.correct_cut())?;
//! assert!(enc.circuit_term.head_is_const("automaton"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod encode;
pub mod theory;

pub use encode::{encode_split, literal_tuple_values, SplitEncoding};
pub use theory::{dest_automaton, mk_automaton, mk_literal, AutomataTheory};
