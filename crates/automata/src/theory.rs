//! The Automata theory: the logical vocabulary for synchronous circuits.
//!
//! Following the paper (and its reference \[10\], "An automata theory
//! dedicated towards formal circuit synthesis"), a synchronous circuit is
//! represented by a pair of a combinational function and an initial state;
//! the constant `automaton` maps such a pair to the behaviour (a function
//! from input streams to output streams). This module installs into a
//! [`Theory`]:
//!
//! * the `automaton` constant,
//! * bit-vector literal constants and operator constants mirroring the
//!   RT-level operators of [`hash_netlist`],
//! * trusted *computation rules* that evaluate those operators on literal
//!   values (used for step 4 of the retiming procedure, computing `f(q)`),
//! * the `AUTOMATON_BISIM` axiom — the induction ("bisimulation") principle
//!   from which `hash-core` derives the universal retiming theorem once and
//!   for all.

use hash_logic::bool::{list_mk_forall, mk_conj, mk_imp};
use hash_logic::pair::{mk_fst, mk_snd};
use hash_logic::prelude::*;
use hash_netlist::prelude::{BitVec, CombOp};

/// The behaviour type constructor `beh(input, output)`.
pub fn beh_ty(input: &Type, output: &Type) -> Type {
    Type::Con("beh".to_string(), vec![input.clone(), output.clone()])
}

/// The type of a combinational function `input -> state -> (output # state)`.
pub fn comb_ty(input: &Type, state: &Type, output: &Type) -> Type {
    Type::fun(
        input.clone(),
        Type::fun(state.clone(), Type::prod(output.clone(), state.clone())),
    )
}

/// The generic type of the `automaton` constant.
pub fn automaton_generic_ty() -> Type {
    let i = Type::var("i");
    let o = Type::var("o");
    let s = Type::var("s");
    Type::fun(comb_ty(&i, &s, &o), Type::fun(s.clone(), beh_ty(&i, &o)))
}

/// Builds the term `automaton comb init`.
///
/// # Errors
///
/// Fails if the argument types do not fit the `automaton` signature.
pub fn mk_automaton(comb: &TermRef, init: &TermRef) -> Result<TermRef> {
    let cty = comb.ty();
    let (input, rest) = cty.dest_fun()?;
    let (state, out_pair) = rest.dest_fun()?;
    let (output, _) = out_pair.dest_prod()?;
    let a = mk_const(
        "automaton",
        Type::fun(cty.clone(), Type::fun(state.clone(), beh_ty(input, output))),
    );
    list_mk_comb(&a, &[*comb, *init])
}

/// Destructs `automaton comb init` into `(comb, init)`.
///
/// # Errors
///
/// Fails if the term is not an `automaton` application.
pub fn dest_automaton(t: &TermRef) -> Result<(TermRef, TermRef)> {
    let (head, args) = t.strip_comb();
    match head.dest_const() {
        Ok(c) if c.name == "automaton" && args.len() == 2 => Ok((args[0], args[1])),
        _ => Err(LogicError::ill_formed(
            "dest_automaton",
            format!("not an automaton term: {t}"),
        )),
    }
}

/// The name of the literal constant for a bit-vector value.
pub fn literal_name(value: &BitVec) -> String {
    format!("#{}w{}", value.as_u64(), value.width())
}

/// Builds the literal term for a bit-vector value.
pub fn mk_literal(value: &BitVec) -> TermRef {
    mk_const(literal_name(value), Type::bv(value.width()))
}

/// Parses a literal constant name back into a bit-vector value.
pub fn parse_literal(name: &str, ty: &Type) -> Option<BitVec> {
    let rest = name.strip_prefix('#')?;
    let (value, width) = rest.split_once('w')?;
    let value: u64 = value.parse().ok()?;
    let width: u32 = width.parse().ok()?;
    if ty.bv_width() == Some(width) {
        BitVec::new(value, width).ok()
    } else {
        None
    }
}

/// The constant name used for an RT-level operator at the given operand
/// widths (operators are monomorphic per operand-width signature, e.g.
/// `add_w8_8` or `mux_w1_4_4`).
pub fn op_name(op: &CombOp, widths: &[u32]) -> String {
    let suffix = widths
        .iter()
        .map(|w| w.to_string())
        .collect::<Vec<_>>()
        .join("_");
    match op {
        CombOp::Slice { hi, lo } => format!("slice_{hi}_{lo}_w{suffix}"),
        other => format!("{}_w{suffix}", other.name()),
    }
}

/// The type of the operator constant for the given operand widths.
///
/// # Errors
///
/// Fails if the operator/width combination is invalid.
pub fn op_ty(op: &CombOp, operand_widths: &[u32]) -> Result<Type> {
    let out = op
        .output_width(operand_widths)
        .map_err(|e| LogicError::theory(format!("bad operator instance: {e}")))?;
    let mut ty = Type::bv(out);
    for w in operand_widths.iter().rev() {
        ty = Type::fun(Type::bv(*w), ty);
    }
    Ok(ty)
}

/// The installed Automata theory.
#[derive(Clone, Debug)]
pub struct AutomataTheory {
    /// The bisimulation/induction axiom over automata, used to derive the
    /// retiming theorem.
    pub bisim_axiom: Theorem,
}

impl AutomataTheory {
    /// Installs the Automata theory: the `automaton` constant, the
    /// evaluation computation rule for RT-level operators, and the
    /// `AUTOMATON_BISIM` axiom.
    ///
    /// The boolean and pair theories must already be installed in `theory`.
    ///
    /// # Errors
    ///
    /// Fails if required constants are missing or already declared with
    /// other types.
    pub fn install(theory: &mut Theory) -> Result<AutomataTheory> {
        theory.declare_constant("automaton", automaton_generic_ty())?;

        // Trusted computation rule: evaluate an operator constant applied to
        // literal arguments. This is the paper's step 4 ("the new initial
        // values of the shifted registers f(q) are determined via
        // evaluation").
        theory.new_delta_rule("bv_eval", |t| {
            let (head, args) = t.strip_comb();
            let c = head.dest_const().ok()?;
            let mut values = Vec::new();
            for a in &args {
                let ac = a.dest_const().ok()?;
                values.push(parse_literal(&ac.name, &ac.ty)?);
            }
            let op = parse_op_name(&c.name)?;
            if op.arity() != values.len() {
                return None;
            }
            let result = op.eval(&values).ok()?;
            Some(mk_literal(&result))
        })?;

        // AUTOMATON_BISIM:
        // ∀-closed:  R q1 q2
        //         ∧ (∀ i s1 s2. R s1 s2 ==>
        //               (fst (c1 i s1) = fst (c2 i s2))
        //             ∧ R (snd (c1 i s1)) (snd (c2 i s2)))
        //        ==> automaton c1 q1 = automaton c2 q2
        let ity = Type::var("i");
        let oty = Type::var("o");
        let sty = Type::var("s");
        let tty = Type::var("t");
        let r = Var::new(
            "R",
            Type::fun(sty.clone(), Type::fun(tty.clone(), Type::bool())),
        );
        let c1 = Var::new("c1", comb_ty(&ity, &sty, &oty));
        let c2 = Var::new("c2", comb_ty(&ity, &tty, &oty));
        let q1 = Var::new("q1", sty.clone());
        let q2 = Var::new("q2", tty.clone());
        let i = Var::new("i", ity.clone());
        let s1 = Var::new("s1", sty.clone());
        let s2 = Var::new("s2", tty.clone());

        let r_q = list_mk_comb(&r.term(), &[q1.term(), q2.term()])?;
        let r_s = list_mk_comb(&r.term(), &[s1.term(), s2.term()])?;
        let c1_is = list_mk_comb(&c1.term(), &[i.term(), s1.term()])?;
        let c2_is = list_mk_comb(&c2.term(), &[i.term(), s2.term()])?;
        let out_eq = mk_eq(&mk_fst(&c1_is)?, &mk_fst(&c2_is)?)?;
        let r_next = list_mk_comb(&r.term(), &[mk_snd(&c1_is)?, mk_snd(&c2_is)?])?;
        let step = list_mk_forall(
            &[i.clone(), s1.clone(), s2.clone()],
            &mk_imp(&r_s, &mk_conj(&out_eq, &r_next)?)?,
        )?;
        let premise = mk_conj(&r_q, &step)?;
        let lhs = mk_automaton(&c1.term(), &q1.term())?;
        let rhs = mk_automaton(&c2.term(), &q2.term())?;
        let body = mk_imp(&premise, &mk_eq(&lhs, &rhs)?)?;
        let closed = list_mk_forall(&[r, c1, c2, q1, q2], &body)?;
        let bisim_axiom = theory.new_axiom("AUTOMATON_BISIM", &closed)?;

        Ok(AutomataTheory { bisim_axiom })
    }
}

/// Parses an operator constant name (as produced by [`op_name`]) back into
/// a [`CombOp`]. Literal widths inside the name are ignored except for
/// `const`/`slice`, which embed their parameters.
fn parse_op_name(name: &str) -> Option<CombOp> {
    let (base, _width) = name.rsplit_once("_w")?;
    match base {
        "not" => Some(CombOp::Not),
        "and" => Some(CombOp::And),
        "or" => Some(CombOp::Or),
        "xor" => Some(CombOp::Xor),
        "add" => Some(CombOp::Add),
        "sub" => Some(CombOp::Sub),
        "inc" => Some(CombOp::Inc),
        "eq" => Some(CombOp::Eq),
        "lt" => Some(CombOp::Lt),
        "ge" => Some(CombOp::Ge),
        "mux" => Some(CombOp::Mux),
        "concat" => Some(CombOp::Concat),
        other => {
            // slice_{hi}_{lo}
            let rest = other.strip_prefix("slice_")?;
            let (hi, lo) = rest.split_once('_')?;
            Some(CombOp::Slice {
                hi: hi.parse().ok()?,
                lo: lo.parse().ok()?,
            })
        }
    }
}

/// Builds the operator-constant term for the given operator and operand
/// widths, declaring the constant in the theory if needed.
///
/// # Errors
///
/// Fails if the operator/width combination is invalid.
pub fn op_const(theory: &mut Theory, op: &CombOp, operand_widths: &[u32]) -> Result<TermRef> {
    // Constant operators are represented directly as literals.
    if let CombOp::Const(v) = op {
        return Ok(mk_literal(v));
    }
    let name = op_name(op, operand_widths);
    let ty = op_ty(op, operand_widths)?;
    theory.declare_constant(name.clone(), ty.clone())?;
    Ok(mk_const(name, ty))
}

/// Evaluates a ground term (operators applied to literals, pairs,
/// projections) to a literal or a tuple of literals, producing the theorem
/// `⊢ term = value`.
///
/// # Errors
///
/// Fails if the term contains free variables or non-evaluatable parts.
pub fn eval_ground(theory: &Theory, pair_theory: &PairTheory, term: &TermRef) -> Result<Theorem> {
    let mut rw = Rewriter::new().with_max_passes(10_000);
    rw.add_eqs(&pair_theory.projection_eqs())?;
    rw.rewrite_with(Some(theory), term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_logic::pair::mk_pair;

    fn setup() -> (Theory, BoolTheory, PairTheory, AutomataTheory) {
        let mut thy = Theory::new();
        let b = BoolTheory::install(&mut thy).unwrap();
        let p = PairTheory::install(&mut thy).unwrap();
        let a = AutomataTheory::install(&mut thy).unwrap();
        (thy, b, p, a)
    }

    #[test]
    fn literals_roundtrip() {
        let v = BitVec::new(42, 8).unwrap();
        let t = mk_literal(&v);
        let c = t.dest_const().unwrap();
        assert_eq!(parse_literal(&c.name, &c.ty), Some(v));
        assert_eq!(parse_literal("#5w8", &Type::bv(4)), None);
        assert_eq!(parse_literal("nope", &Type::bv(8)), None);
    }

    #[test]
    fn automaton_terms_build_and_destruct() {
        let (_, _, _, _) = setup();
        let comb = mk_var("c", comb_ty(&Type::bv(4), &Type::bv(8), &Type::bv(4)));
        let init = mk_var("q", Type::bv(8));
        let t = mk_automaton(&comb, &init).unwrap();
        let (c, q) = dest_automaton(&t).unwrap();
        assert!(c.aconv(&comb));
        assert!(q.aconv(&init));
        assert!(dest_automaton(&init).is_err());
    }

    #[test]
    fn bisim_axiom_is_recorded_and_boolean() {
        let (thy, _, _, a) = setup();
        assert!(a.bisim_axiom.is_closed());
        assert!(thy
            .axioms()
            .iter()
            .any(|(name, _)| name == "AUTOMATON_BISIM"));
        // The complete trusted surface: 3 pair axioms + 1 automata axiom.
        assert_eq!(thy.axioms().len(), 4);
    }

    #[test]
    fn delta_rule_evaluates_operators() {
        let (mut thy, _, p, _) = setup();
        let add = op_const(&mut thy, &CombOp::Add, &[8, 8]).unwrap();
        let t = list_mk_comb(
            &add,
            &[
                mk_literal(&BitVec::new(250, 8).unwrap()),
                mk_literal(&BitVec::new(10, 8).unwrap()),
            ],
        )
        .unwrap();
        let th = eval_ground(&thy, &p, &t).unwrap();
        let (_, rhs) = th.dest_eq().unwrap();
        assert_eq!(
            rhs.dest_const().unwrap().name,
            literal_name(&BitVec::new(4, 8).unwrap())
        );
    }

    #[test]
    fn evaluation_handles_pairs_and_projections() {
        let (mut thy, _, p, _) = setup();
        let inc = op_const(&mut thy, &CombOp::Inc, &[4]).unwrap();
        let lit = mk_literal(&BitVec::new(7, 4).unwrap());
        let pair = mk_pair(&mk_comb(&inc, &lit).unwrap(), &lit).unwrap();
        let t = mk_fst(&pair).unwrap();
        let th = eval_ground(&thy, &p, &t).unwrap();
        let (_, rhs) = th.dest_eq().unwrap();
        assert_eq!(
            rhs.dest_const().unwrap().name,
            literal_name(&BitVec::new(8, 4).unwrap())
        );
    }

    #[test]
    fn op_const_rejects_bad_instances() {
        let mut thy = Theory::new();
        assert!(op_const(&mut thy, &CombOp::Add, &[8, 4]).is_err());
        assert!(op_const(&mut thy, &CombOp::Mux, &[2, 8, 8]).is_err());
        let c = op_const(&mut thy, &CombOp::Const(BitVec::new(3, 4).unwrap()), &[]).unwrap();
        assert_eq!(c.ty(), Type::bv(4));
    }
}
