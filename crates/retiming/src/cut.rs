//! Cut selection heuristics: deciding which combinational block `f` the
//! registers are shifted across.
//!
//! The paper stresses that this decision "may be performed arbitrarily —
//! by hand or by some program" and that a wrong decision can never
//! compromise correctness, only make the transformation fail. The
//! heuristics here produce the control information consumed by both the
//! conventional move ([`crate::apply::forward_retime`]) and the formal
//! synthesis step in `hash-core`.

use crate::apply::{analyze_forward_cut, Cut};
use hash_netlist::prelude::*;
use std::collections::BTreeSet;

/// The maximal forward cut: the largest set of cells such that every
/// external input of the set is a register output and no selected cell
/// feeds a register it also (transitively) consumes. This is the "f covering
/// a maximum number of retimable gates, i.e. the worst case for our
/// approach" used for the paper's experiments.
pub fn maximal_forward_cut(netlist: &Netlist) -> Cut {
    let cells = netlist.cells();
    let reg_outputs: BTreeSet<SignalId> = netlist.registers().iter().map(|r| r.output).collect();
    let producer: std::collections::BTreeMap<SignalId, usize> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| (c.output, i))
        .collect();
    // Grow the cut to a fixed point: a cell joins when each of its inputs is
    // a register output or the output of a cell already in the cut.
    let mut in_cut: Vec<bool>;
    // Shrink: a register that is also consumed outside the cut (or whose
    // data input comes from the cut, or which feeds a register or a primary
    // output directly) cannot be shifted, so the cells reading it must leave
    // the cut; removing a cell may orphan cells downstream of it, so the cut
    // is re-grown after every shrink round until a fixed point is reached.
    let mut allowed = vec![true; cells.len()];
    loop {
        // Re-grow within the allowed set.
        let mut grown = vec![false; cells.len()];
        let mut more = true;
        while more {
            more = false;
            for (i, c) in cells.iter().enumerate() {
                if grown[i] || !allowed[i] {
                    continue;
                }
                let ok = c
                    .inputs
                    .iter()
                    .all(|s| reg_outputs.contains(s) || producer.get(s).is_some_and(|j| grown[*j]));
                if ok {
                    grown[i] = true;
                    more = true;
                }
            }
        }
        in_cut = grown;
        // Find registers whose constraints are violated and disallow their
        // readers.
        let mut shrunk = false;
        for r in netlist.registers() {
            let read_by_cut = cells
                .iter()
                .enumerate()
                .any(|(i, c)| in_cut[i] && c.inputs.contains(&r.output));
            if !read_by_cut {
                continue;
            }
            let read_outside = cells
                .iter()
                .enumerate()
                .any(|(i, c)| !in_cut[i] && c.inputs.contains(&r.output));
            let feeds_register = netlist.registers().iter().any(|r2| r2.input == r.output);
            let is_output = netlist.outputs().contains(&r.output);
            let fed_by_cut = producer.get(&r.input).is_some_and(|j| in_cut[*j]);
            if read_outside || feeds_register || is_output {
                for (i, c) in cells.iter().enumerate() {
                    if allowed[i] && c.inputs.contains(&r.output) {
                        allowed[i] = false;
                        shrunk = true;
                    }
                }
            } else if fed_by_cut {
                // Feedback through the cut: keeping the reading cells is
                // usually more profitable, so evict the driving cell instead.
                if let Some(&j) = producer.get(&r.input) {
                    if allowed[j] {
                        allowed[j] = false;
                        shrunk = true;
                    }
                }
            }
        }
        if !shrunk {
            break;
        }
    }
    let mut cut = Cut::new((0..cells.len()).filter(|i| in_cut[*i]).collect::<Vec<_>>());
    // Final safety net: if an unforeseen side condition still fails, drop
    // cells from the back until the analysis accepts the cut.
    while !cut.is_empty() && analyze_forward_cut(netlist, &cut).is_err() {
        cut.cells.pop();
    }
    cut
}

/// All single-cell forward cuts that satisfy the retiming pattern — the
/// elementary moves a fine-grained retiming is decomposed into.
pub fn single_cell_cuts(netlist: &Netlist) -> Vec<Cut> {
    (0..netlist.cells().len())
        .map(|i| Cut::new(vec![i]))
        .filter(|c| analyze_forward_cut(netlist, c).is_ok())
        .collect()
}

/// A deliberately wrong cut for demonstration and testing: the complement
/// of the maximal forward cut (the paper's Fig. 4 "false cut"). Returns
/// `None` when the complement is empty.
pub fn false_cut(netlist: &Netlist) -> Option<Cut> {
    let good: BTreeSet<usize> = maximal_forward_cut(netlist).cells.into_iter().collect();
    let rest: Vec<usize> = (0..netlist.cells().len())
        .filter(|i| !good.contains(i))
        .collect();
    if rest.is_empty() {
        None
    } else {
        Some(Cut::new(rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::forward_retime;
    use hash_netlist::sim::{random_stimuli, traces_equal};

    fn example() -> Netlist {
        // a -> [q1] -> +1 \
        //                  add -> xor(a) -> out
        // b -> [q2] ------/
        let mut n = Netlist::new("ex");
        let a = n.add_input("a", 4);
        let b = n.add_input("b", 4);
        let q1 = n.register(a, BitVec::new(1, 4).unwrap(), "q1").unwrap();
        let q2 = n.register(b, BitVec::new(2, 4).unwrap(), "q2").unwrap();
        let i = n.inc(q1, "i").unwrap();
        let s = n.add(i, q2, "s").unwrap();
        let o = n.xor(s, a, "o").unwrap();
        n.mark_output(o);
        n
    }

    #[test]
    fn maximal_cut_covers_retimable_cells_only() {
        let n = example();
        let cut = maximal_forward_cut(&n);
        // The incrementer and the adder are retimable; the xor reads the
        // primary input a and is not.
        assert_eq!(cut.cells, vec![0, 1]);
        let retimed = forward_retime(&n, &cut).unwrap();
        let stim = random_stimuli(&n, 40, 17);
        assert!(traces_equal(&n, &retimed, &stim).unwrap());
    }

    #[test]
    fn single_cell_cuts_are_all_applicable() {
        let n = example();
        let cuts = single_cell_cuts(&n);
        // Only the incrementer qualifies on its own: the adder alone shares
        // register q1's fan-in? No — the adder reads the incrementer output,
        // which is not a register, so it does not qualify; the xor reads a.
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].cells, vec![0]);
        for c in &cuts {
            let retimed = forward_retime(&n, c).unwrap();
            let stim = random_stimuli(&n, 30, 5);
            assert!(traces_equal(&n, &retimed, &stim).unwrap());
        }
    }

    #[test]
    fn false_cut_is_reported_and_rejected() {
        let n = example();
        let bad = false_cut(&n).expect("a non-retimable cell exists");
        assert!(analyze_forward_cut(&n, &bad).is_err());
    }

    #[test]
    fn fully_combinational_circuit_has_empty_cut() {
        let mut n = Netlist::new("comb");
        let a = n.add_input("a", 2);
        let b = n.not(a, "b").unwrap();
        n.mark_output(b);
        let cut = maximal_forward_cut(&n);
        assert!(cut.is_empty());
        assert!(false_cut(&n).is_some());
    }
}
