//! The Leiserson–Saxe retiming graph and the classical min-period retiming
//! algorithm.
//!
//! This module is the "conventional synthesis heuristic" of the paper: an
//! ordinary, *untrusted* retiming engine in the tradition of
//! Leiserson/Rose/Saxe ("Optimizing synchronous circuits by retiming") and
//! SIS. Its results — which registers to move across which cells — are the
//! *control information* handed to the formal synthesis step in
//! `hash-core`; its correctness is irrelevant for the soundness of the
//! final theorem, exactly as argued in Section IV-C of the paper.
//!
//! The circuit is modelled as a graph `G(V, E, d, w)`: vertices are
//! combinational cells plus a host vertex for the environment, `d(v)` is
//! the propagation delay of a cell and `w(e)` the number of registers on a
//! connection.

use hash_netlist::prelude::*;
use std::collections::BTreeMap;

/// Index of a vertex in the retiming graph. Vertex 0 is always the host
/// (environment) vertex; vertex `i + 1` corresponds to cell `i` of the
/// netlist.
pub type VertexId = usize;

/// The host (environment) vertex.
pub const HOST: VertexId = 0;

/// A dense vertex-pair matrix as used by the `W`/`D` matrices of
/// Leiserson–Saxe; `None` marks an unreachable pair.
pub type VertexPairMatrix = Vec<Vec<Option<i64>>>;

/// An edge of the retiming graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Source vertex.
    pub from: VertexId,
    /// Target vertex.
    pub to: VertexId,
    /// Number of registers on the connection.
    pub weight: i64,
}

/// The retiming graph of a netlist.
#[derive(Clone, Debug)]
pub struct RetimingGraph {
    delays: Vec<i64>,
    edges: Vec<Edge>,
    cells: usize,
}

/// The default delay model: word-level cells are charged a delay
/// proportional to the ripple they would need at gate level, simple gates
/// cost one unit.
pub fn default_delay(op: &CombOp, width: u32) -> i64 {
    match op {
        CombOp::Const(_) | CombOp::Concat | CombOp::Slice { .. } => 0,
        CombOp::Not => 1,
        CombOp::And | CombOp::Or | CombOp::Xor | CombOp::Mux => 1,
        CombOp::Inc => i64::from(width),
        CombOp::Add | CombOp::Sub => i64::from(width),
        CombOp::Eq | CombOp::Lt | CombOp::Ge => i64::from(width),
    }
}

impl RetimingGraph {
    /// Builds the retiming graph of a netlist using the default delay model.
    ///
    /// # Errors
    ///
    /// Fails if the netlist is structurally invalid.
    pub fn from_netlist(netlist: &Netlist) -> std::result::Result<RetimingGraph, NetlistError> {
        Self::from_netlist_with_delays(netlist, default_delay)
    }

    /// Builds the retiming graph with a caller-provided delay model.
    ///
    /// # Errors
    ///
    /// Fails if the netlist is structurally invalid.
    pub fn from_netlist_with_delays(
        netlist: &Netlist,
        delay: impl Fn(&CombOp, u32) -> i64,
    ) -> std::result::Result<RetimingGraph, NetlistError> {
        netlist.validate()?;
        let cells = netlist.cells();
        // Map: signal -> driving cell vertex (if driven by a cell).
        let mut produced_by: BTreeMap<usize, VertexId> = BTreeMap::new();
        for (i, c) in cells.iter().enumerate() {
            produced_by.insert(c.output.index(), i + 1);
        }
        // Map: register output signal -> (register index).
        let mut reg_by_output: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, r) in netlist.registers().iter().enumerate() {
            reg_by_output.insert(r.output.index(), i);
        }
        let is_input = |s: SignalId| netlist.inputs().contains(&s);

        // Traces a signal back through registers; returns the source vertex
        // and the number of registers crossed.
        let trace = |mut s: SignalId| -> (VertexId, i64) {
            let mut weight = 0i64;
            loop {
                if let Some(&v) = produced_by.get(&s.index()) {
                    return (v, weight);
                }
                if is_input(s) {
                    return (HOST, weight);
                }
                if let Some(&ri) = reg_by_output.get(&s.index()) {
                    weight += 1;
                    s = netlist.registers()[ri].input;
                    continue;
                }
                // Undriven signals are impossible after validation.
                return (HOST, weight);
            }
        };

        let mut delays = vec![0i64];
        for c in cells {
            let width = c
                .inputs
                .first()
                .and_then(|id| netlist.width(*id).ok())
                .unwrap_or_else(|| netlist.width(c.output).unwrap_or(1));
            delays.push(delay(&c.op, width));
        }

        let mut edges = Vec::new();
        for (i, c) in cells.iter().enumerate() {
            for &inp in &c.inputs {
                let (src, weight) = trace(inp);
                edges.push(Edge {
                    from: src,
                    to: i + 1,
                    weight,
                });
            }
        }
        for &out in netlist.outputs() {
            let (src, weight) = trace(out);
            edges.push(Edge {
                from: src,
                to: HOST,
                weight,
            });
        }
        Ok(RetimingGraph {
            delays,
            edges,
            cells: cells.len(),
        })
    }

    /// The number of vertices (cells + host).
    pub fn num_vertices(&self) -> usize {
        self.cells + 1
    }

    /// The number of combinational cells.
    pub fn num_cells(&self) -> usize {
        self.cells
    }

    /// The edges of the graph.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The delay of a vertex.
    pub fn delay(&self, v: VertexId) -> i64 {
        self.delays[v]
    }

    /// The minimum feasible clock period of the circuit as it stands
    /// (longest purely combinational path, the `CP` algorithm).
    pub fn clock_period(&self) -> i64 {
        self.clock_period_with(&vec![0; self.num_vertices()])
    }

    /// The clock period after applying the retiming vector `r`.
    ///
    /// Edges whose retimed weight is zero form the combinational paths; the
    /// period is the maximum path delay over those.
    pub fn clock_period_with(&self, r: &[i64]) -> i64 {
        // The environment is assumed registered, so combinational paths must
        // not chain *through* the host vertex: edges into the host are
        // redirected to a separate sink vertex (index n - 1 below).
        let n = self.num_vertices() + 1;
        let sink = n - 1;
        // Longest path in the DAG of zero-weight edges (the graph restricted
        // to zero-weight edges is acyclic for any legal retiming).
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            let to = if e.to == HOST { sink } else { e.to };
            let w = e.weight + r[e.to] - r[e.from];
            if w == 0 {
                adj[e.from].push(to);
                indeg[to] += 1;
            }
        }
        let delay_of = |v: VertexId| if v == sink { 0 } else { self.delays[v] };
        let mut arrival: Vec<i64> = (0..n).map(delay_of).collect();
        let mut queue: Vec<VertexId> = (0..n).filter(|v| indeg[*v] == 0).collect();
        let mut head = 0;
        let mut processed = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            processed += 1;
            for &v in &adj[u] {
                if arrival[u] + delay_of(v) > arrival[v] {
                    arrival[v] = arrival[u] + delay_of(v);
                }
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if processed < n {
            // A zero-weight cycle: the retiming is illegal; report an
            // effectively infinite period.
            return i64::MAX / 4;
        }
        arrival.into_iter().max().unwrap_or(0)
    }

    /// Whether a retiming vector is legal: every retimed edge weight is
    /// non-negative and the host is not retimed.
    pub fn is_legal(&self, r: &[i64]) -> bool {
        r.len() == self.num_vertices()
            && r[HOST] == 0
            && self
                .edges
                .iter()
                .all(|e| e.weight + r[e.to] - r[e.from] >= 0)
    }

    /// The `W` and `D` matrices of Leiserson–Saxe: for every pair `(u, v)`,
    /// `W(u,v)` is the minimum register count over all paths and `D(u,v)`
    /// the maximum path delay among the minimum-register paths.
    pub fn wd_matrices(&self) -> (VertexPairMatrix, VertexPairMatrix) {
        let n = self.num_vertices();
        // As in `clock_period_with`, paths must not chain through the host
        // vertex, so path targets pointing at the host are redirected to a
        // separate sink vertex; its row/column is folded back into the host
        // column at the end.
        let ext = n + 1;
        let sink = n;
        // Shortest path with lexicographic weight (w, -d(u)); implemented as
        // Floyd–Warshall over pairs (register count, negative accumulated
        // delay of intermediate path source vertices), following the classic
        // construction.
        let big = i64::MAX / 4;
        let mut w = vec![vec![(big, 0i64); ext]; ext];
        for e in &self.edges {
            let to = if e.to == HOST { sink } else { e.to };
            let cand = (e.weight, -self.delays[e.from]);
            if cand < w[e.from][to] {
                w[e.from][to] = cand;
            }
        }
        for (v, row) in w.iter_mut().enumerate().take(n) {
            let cand = (0, 0);
            if cand < row[v] {
                row[v] = cand;
            }
        }
        for k in 0..ext {
            for i in 0..ext {
                if w[i][k].0 >= big {
                    continue;
                }
                for j in 0..ext {
                    if w[k][j].0 >= big {
                        continue;
                    }
                    let cand = (w[i][k].0 + w[k][j].0, w[i][k].1 + w[k][j].1);
                    if cand < w[i][j] {
                        w[i][j] = cand;
                    }
                }
            }
        }
        let mut wm = vec![vec![None; n]; n];
        let mut dm = vec![vec![None; n]; n];
        let delay_of = |v: usize| if v == sink { 0 } else { self.delays[v] };
        for u in 0..n {
            for v in 0..n {
                // Paths *into* the host are recorded against the sink; take
                // the lexicographic minimum of the direct entry and the sink
                // entry when the target is the host.
                let entry = if v == HOST {
                    w[u][HOST].min(w[u][sink])
                } else {
                    w[u][v]
                };
                let target = if v == HOST && w[u][sink] < w[u][HOST] {
                    sink
                } else {
                    v
                };
                if entry.0 < big {
                    wm[u][v] = Some(entry.0);
                    dm[u][v] = Some(-entry.1 + delay_of(target));
                }
            }
        }
        (wm, dm)
    }

    /// Computes a legal retiming achieving clock period at most `period`,
    /// if one exists (the `FEAS`-style feasibility check realised by
    /// Bellman–Ford on the difference constraints).
    pub fn feasible_retiming(&self, period: i64) -> Option<Vec<i64>> {
        let n = self.num_vertices();
        let (wm, dm) = self.wd_matrices();
        // Difference constraints r(u) - r(v) <= b as edges v -> u with
        // weight b; solve with Bellman–Ford from a virtual source.
        let mut constraints: Vec<(VertexId, VertexId, i64)> = Vec::new();
        for e in &self.edges {
            // r(u) - r(v) <= w(e)  for e: u -> v
            constraints.push((e.to, e.from, e.weight));
        }
        for u in 0..n {
            for v in 0..n {
                if let (Some(wuv), Some(duv)) = (wm[u][v], dm[u][v]) {
                    if duv > period {
                        // r(u) - r(v) <= W(u,v) - 1
                        constraints.push((v, u, wuv - 1));
                    }
                }
            }
        }
        // Bellman–Ford with all distances initialised to zero (implicit
        // source connected to every vertex with weight 0).
        let mut dist = vec![0i64; n];
        for _ in 0..n {
            let mut changed = false;
            for &(from, to, weight) in &constraints {
                if dist[from] + weight < dist[to] {
                    dist[to] = dist[from] + weight;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // One more pass detects negative cycles (infeasible period).
        for &(from, to, weight) in &constraints {
            if dist[from] + weight < dist[to] {
                return None;
            }
        }
        // Normalise so that the host is not moved.
        let offset = dist[HOST];
        let r: Vec<i64> = dist.into_iter().map(|d| d - offset).collect();
        if self.is_legal(&r) && self.clock_period_with(&r) <= period {
            Some(r)
        } else {
            None
        }
    }

    /// Minimum-period retiming: binary search over the candidate periods
    /// (the distinct entries of the `D` matrix), returning the best period
    /// and a retiming vector achieving it.
    pub fn min_period_retiming(&self) -> (i64, Vec<i64>) {
        let (_, dm) = self.wd_matrices();
        let mut candidates: Vec<i64> = dm.iter().flatten().flatten().copied().collect();
        candidates.push(self.clock_period());
        candidates.sort_unstable();
        candidates.dedup();
        let identity = vec![0i64; self.num_vertices()];
        let mut best = (self.clock_period(), identity);
        let mut lo = 0usize;
        let mut hi = candidates.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.feasible_retiming(candidates[mid]) {
                Some(r) => {
                    let p = self.clock_period_with(&r);
                    if p <= best.0 {
                        best = (p, r);
                    }
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        best
    }

    /// Total number of registers implied by a retiming vector (sum of
    /// retimed edge weights) — used by the min-area ablation.
    pub fn register_count(&self, r: &[i64]) -> i64 {
        self.edges
            .iter()
            .map(|e| e.weight + r[e.to] - r[e.from])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic digital correlator from the Leiserson–Saxe paper,
    /// modelled directly as a graph-backed netlist: seven cells in a ring
    /// with registers, host delay 0, comparators of delay 3 and adders of
    /// delay 7.
    fn correlator() -> Netlist {
        // We build a behaviourally meaningful stand-in with the same
        // structure: a chain of registers feeding comparators whose results
        // are accumulated by adders.
        let mut n = Netlist::new("correlator");
        let x = n.add_input("x", 4);
        let k = n.constant(BitVec::new(5, 4).unwrap(), "k").unwrap();
        // Delay line of three registers.
        let d1 = n.register(x, BitVec::zero(4), "d1").unwrap();
        let d2 = n.register(d1, BitVec::zero(4), "d2").unwrap();
        let d3 = n.register(d2, BitVec::zero(4), "d3").unwrap();
        // Comparators against the constant.
        let c0 = n.eq(x, k, "c0").unwrap();
        let c1 = n.eq(d1, k, "c1").unwrap();
        let c2 = n.eq(d2, k, "c2").unwrap();
        let c3 = n.eq(d3, k, "c3").unwrap();
        // Adder tree (1-bit adds modelled as or-gates to stay single bit).
        let a1 = n.or(c0, c1, "a1").unwrap();
        let a2 = n.or(a1, c2, "a2").unwrap();
        let a3 = n.or(a2, c3, "a3").unwrap();
        n.mark_output(a3);
        n
    }

    #[test]
    fn graph_construction_counts_registers_on_edges() {
        let n = correlator();
        let g = RetimingGraph::from_netlist(&n).unwrap();
        assert_eq!(g.num_cells(), n.cells().len());
        // There must exist an edge with weight >= 2 (the path through two
        // delay registers into c2).
        assert!(g.edges().iter().any(|e| e.weight >= 2));
        // And ordinary zero-weight edges.
        assert!(g.edges().iter().any(|e| e.weight == 0));
    }

    #[test]
    fn clock_period_is_longest_combinational_path() {
        let n = correlator();
        let g = RetimingGraph::from_netlist(&n).unwrap();
        let cp = g.clock_period();
        // Longest zero-weight path: eq (delay 4) followed by three or-gates
        // (delay 1 each) = 7.
        assert_eq!(cp, 7);
    }

    #[test]
    fn min_period_retiming_improves_or_preserves_period() {
        let n = correlator();
        let g = RetimingGraph::from_netlist(&n).unwrap();
        let before = g.clock_period();
        let (after, r) = g.min_period_retiming();
        assert!(g.is_legal(&r), "retiming vector must be legal");
        assert!(after <= before, "retiming must not worsen the period");
        assert_eq!(g.clock_period_with(&r), after);
    }

    #[test]
    fn identity_retiming_is_legal() {
        let n = correlator();
        let g = RetimingGraph::from_netlist(&n).unwrap();
        let r = vec![0; g.num_vertices()];
        assert!(g.is_legal(&r));
        assert_eq!(g.clock_period_with(&r), g.clock_period());
        assert!(g.register_count(&r) > 0);
    }

    #[test]
    fn wd_matrices_are_consistent() {
        let n = correlator();
        let g = RetimingGraph::from_netlist(&n).unwrap();
        let (wm, dm) = g.wd_matrices();
        let nv = g.num_vertices();
        for u in 0..nv {
            // Diagonal: zero registers; for cell vertices the delay is the
            // cell's own delay, for the host it is the longest register-free
            // input-to-output path (7 in the correlator).
            assert_eq!(wm[u][u], Some(0));
            if u != HOST {
                assert_eq!(dm[u][u], Some(g.delay(u)));
            }
            for v in 0..nv {
                if let Some(w) = wm[u][v] {
                    assert!(w >= 0);
                    assert!(dm[u][v].is_some());
                }
            }
        }
        assert_eq!(dm[HOST][HOST], Some(7));
    }

    #[test]
    fn infeasible_period_returns_none() {
        let n = correlator();
        let g = RetimingGraph::from_netlist(&n).unwrap();
        // No retiming can beat the largest single-cell delay.
        let max_delay = (0..g.num_vertices()).map(|v| g.delay(v)).max().unwrap();
        assert!(g.feasible_retiming(max_delay - 1).is_none());
        assert!(g.feasible_retiming(g.clock_period()).is_some());
    }

    #[test]
    fn pipeline_example_gets_faster() {
        // in -> add -> add -> add -> reg -> out : retiming should spread the
        // single output register into the adder chain.
        let mut n = Netlist::new("pipe");
        let a = n.add_input("a", 8);
        let b = n.add_input("b", 8);
        let s1 = n.add(a, b, "s1").unwrap();
        let s2 = n.add(s1, b, "s2").unwrap();
        let s3 = n.add(s2, b, "s3").unwrap();
        let q1 = n.register(s3, BitVec::zero(8), "q1").unwrap();
        let q2 = n.register(q1, BitVec::zero(8), "q2").unwrap();
        n.mark_output(q2);
        let g = RetimingGraph::from_netlist(&n).unwrap();
        assert_eq!(g.clock_period(), 24);
        let (p, r) = g.min_period_retiming();
        assert!(p < 24, "period should improve, got {p}");
        assert!(g.is_legal(&r));
    }
}
