//! # hash-retiming
//!
//! Conventional (untrusted) retiming heuristics for the DATE'97 HASH
//! reproduction: the Leiserson–Saxe retiming graph, clock-period analysis,
//! `W`/`D` matrices, min-period retiming, cut selection and netlist-level
//! register moves.
//!
//! In the paper's architecture this crate plays the role of the "existing
//! synthesis heuristics" that HASH reuses: it decides *where* registers
//! should move (the cut between the blocks `f` and `g`), while the formal
//! synthesis step in `hash-core` performs the move as a logical derivation.
//! A bug in this crate can therefore never produce an incorrect circuit —
//! it can only make the formal step fail (Section IV-C of the paper).
//!
//! ## Example
//!
//! ```
//! use hash_netlist::prelude::*;
//! use hash_retiming::prelude::*;
//!
//! # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
//! // a -> [register] -> +1 -> xor(a) -> out
//! let mut n = Netlist::new("example");
//! let a = n.add_input("a", 4);
//! let q = n.register(a, BitVec::new(3, 4)?, "q")?;
//! let i = n.inc(q, "i")?;
//! let o = n.xor(i, a, "o")?;
//! n.mark_output(o);
//!
//! // Pick the cut automatically and move the register across the +1.
//! let cut = maximal_forward_cut(&n);
//! let retimed = forward_retime(&n, &cut)?;
//! assert_eq!(retimed.registers()[0].init.as_u64(), 4); // f(q) = 3 + 1
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apply;
pub mod cut;
pub mod error;
pub mod graph;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::apply::{
        analyze_forward_cut, backward_retime, forward_retime, Cut, CutBoundary,
    };
    pub use crate::cut::{false_cut, maximal_forward_cut, single_cell_cuts};
    pub use crate::error::{Result, RetimingError};
    pub use crate::graph::{default_delay, Edge, RetimingGraph, VertexId, HOST};
}

pub use apply::{backward_retime, forward_retime, Cut};
pub use cut::maximal_forward_cut;
pub use error::RetimingError;
pub use graph::RetimingGraph;
