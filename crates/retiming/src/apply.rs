//! Netlist-level register moves: applying a retiming cut to a circuit.
//!
//! [`forward_retime`] performs the transformation of the paper's Fig. 1 on
//! the netlist representation: a block `f` of combinational cells whose
//! external inputs are all register outputs is selected (the *cut*), the
//! registers are removed from `f`'s inputs, new registers are inserted on
//! `f`'s outputs, and the new initial values are obtained by evaluating
//! `f` on the old initial values (`f(q)`).
//!
//! This is the *conventional* synthesis path (compute the result, trust
//! the program); the formal path in `hash-core` performs the same
//! transformation as a logical derivation and arrives at the same netlist
//! together with a theorem. The two are cross-checked in the integration
//! tests.

use crate::error::{Result, RetimingError};
use hash_netlist::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// The cut: the set of combinational cells forming the block `f` over which
/// registers are moved (cell indices of the source netlist).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cut {
    /// Indices into `netlist.cells()`.
    pub cells: Vec<usize>,
}

impl Cut {
    /// Creates a cut from cell indices.
    pub fn new(cells: impl Into<Vec<usize>>) -> Cut {
        Cut {
            cells: cells.into(),
        }
    }

    /// Whether the cut is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The number of cells in the cut.
    pub fn len(&self) -> usize {
        self.cells.len()
    }
}

/// Information about the boundary of a cut in a given netlist.
#[derive(Clone, Debug)]
pub struct CutBoundary {
    /// Indices of the registers whose outputs feed the cut (the registers
    /// that will be removed by a forward move).
    pub input_registers: Vec<usize>,
    /// Signals produced inside the cut that are consumed outside it (a new
    /// register will be inserted on each by a forward move).
    pub output_signals: Vec<SignalId>,
    /// The new initial values, one per entry of `output_signals`: the value
    /// of the cut evaluated on the old initial values — the paper's `f(q)`.
    pub new_initial_values: Vec<BitVec>,
}

/// Analyses a forward cut: checks the side conditions of the paper's
/// retiming pattern and computes the boundary and the new initial values.
///
/// # Errors
///
/// Fails if the cut does not match the pattern: a cut cell reads a signal
/// that is not a register output (and not produced inside the cut), or a
/// boundary register also feeds logic outside the cut.
pub fn analyze_forward_cut(netlist: &Netlist, cut: &Cut) -> Result<CutBoundary> {
    netlist.validate()?;
    let cells = netlist.cells();
    for &ci in &cut.cells {
        if ci >= cells.len() {
            return Err(RetimingError::BadCut {
                message: format!("cell index {ci} out of range"),
            });
        }
    }
    let cut_set: BTreeSet<usize> = cut.cells.iter().copied().collect();
    if cut_set.len() != cut.cells.len() {
        return Err(RetimingError::BadCut {
            message: "duplicate cell in cut".to_string(),
        });
    }
    let cut_outputs: BTreeSet<SignalId> = cut_set.iter().map(|&ci| cells[ci].output).collect();

    // Registers indexed by output signal.
    let mut reg_by_output: BTreeMap<SignalId, usize> = BTreeMap::new();
    for (i, r) in netlist.registers().iter().enumerate() {
        reg_by_output.insert(r.output, i);
    }

    // Boundary input registers: every external input of a cut cell must be
    // the output of a register.
    let mut input_registers: BTreeSet<usize> = BTreeSet::new();
    for &ci in &cut_set {
        for &inp in &cells[ci].inputs {
            if cut_outputs.contains(&inp) {
                continue;
            }
            match reg_by_output.get(&inp) {
                Some(&ri) => {
                    input_registers.insert(ri);
                }
                None => {
                    return Err(RetimingError::BadCut {
                        message: format!(
                            "cut cell {} reads signal {} which is not a register output",
                            cells[ci].op,
                            netlist.signal(inp)?.name
                        ),
                    });
                }
            }
        }
    }

    // Each boundary register must feed only cut cells (the whole register is
    // shifted over f).
    for &ri in &input_registers {
        let q = netlist.registers()[ri].output;
        for (i, c) in cells.iter().enumerate() {
            if c.inputs.contains(&q) && !cut_set.contains(&i) {
                return Err(RetimingError::BadCut {
                    message: format!(
                        "register output {} also feeds logic outside the cut",
                        netlist.signal(q)?.name
                    ),
                });
            }
        }
        for r in netlist.registers() {
            if r.input == q {
                return Err(RetimingError::BadCut {
                    message: format!(
                        "register output {} directly feeds another register",
                        netlist.signal(q)?.name
                    ),
                });
            }
        }
        if netlist.outputs().contains(&q) {
            return Err(RetimingError::BadCut {
                message: format!(
                    "register output {} is a primary output",
                    netlist.signal(q)?.name
                ),
            });
        }
        // The pattern of the paper has the state registers driven by the
        // untouched block g; a register whose data input is produced by the
        // cut itself (a direct feedback through f) cannot be shifted.
        let d = netlist.registers()[ri].input;
        if cut_outputs.contains(&d) {
            return Err(RetimingError::BadCut {
                message: format!(
                    "register {} is fed directly by the cut (feedback through f)",
                    netlist.signal(q)?.name
                ),
            });
        }
    }

    // Boundary outputs: cut-cell outputs consumed outside the cut.
    let mut output_signals: Vec<SignalId> = Vec::new();
    for &ci in &cut.cells {
        let s = cells[ci].output;
        let consumed_outside = cells
            .iter()
            .enumerate()
            .any(|(i, c)| !cut_set.contains(&i) && c.inputs.contains(&s))
            || netlist.registers().iter().any(|r| r.input == s)
            || netlist.outputs().contains(&s);
        if consumed_outside && !output_signals.contains(&s) {
            output_signals.push(s);
        }
    }

    // Evaluate the cut on the old initial values: f(q).
    let mut values: BTreeMap<SignalId, BitVec> = BTreeMap::new();
    for &ri in &input_registers {
        let r = &netlist.registers()[ri];
        values.insert(r.output, r.init);
    }
    let order = netlist.topo_order()?;
    for ci in order {
        if !cut_set.contains(&ci) {
            continue;
        }
        let cell = &cells[ci];
        let operands: Vec<BitVec> = cell
            .inputs
            .iter()
            .map(|id| {
                values
                    .get(id)
                    .copied()
                    .ok_or_else(|| RetimingError::BadCut {
                        message: format!(
                            "internal error: no value for cut signal {}",
                            netlist.signals()[id.index()].name.clone()
                        ),
                    })
            })
            .collect::<Result<_>>()?;
        let v = cell.op.eval(&operands)?;
        values.insert(cell.output, v);
    }
    let new_initial_values = output_signals
        .iter()
        .map(|s| {
            values.get(s).copied().ok_or_else(|| RetimingError::BadCut {
                message: "internal error: missing cut output value".to_string(),
            })
        })
        .collect::<Result<Vec<_>>>()?;

    Ok(CutBoundary {
        input_registers: input_registers.into_iter().collect(),
        output_signals,
        new_initial_values,
    })
}

/// Performs a forward retiming move over the given cut, producing the
/// retimed netlist.
///
/// # Errors
///
/// Fails if the cut does not match the retiming pattern (see
/// [`analyze_forward_cut`]).
pub fn forward_retime(netlist: &Netlist, cut: &Cut) -> Result<Netlist> {
    let boundary = analyze_forward_cut(netlist, cut)?;
    let cells = netlist.cells();
    let cut_set: BTreeSet<usize> = cut.cells.iter().copied().collect();
    let removed_regs: BTreeSet<usize> = boundary.input_registers.iter().copied().collect();
    let removed_q: BTreeMap<SignalId, SignalId> = boundary
        .input_registers
        .iter()
        .map(|&ri| {
            let r = &netlist.registers()[ri];
            (r.output, r.input)
        })
        .collect();

    let mut out = Netlist::new(format!("{}_retimed", netlist.name()));
    let mut sig_map: BTreeMap<SignalId, SignalId> = BTreeMap::new();

    // Copy signals, skipping the outputs of removed registers.
    for id in netlist.signal_ids() {
        if removed_q.contains_key(&id) {
            continue;
        }
        let s = netlist.signal(id)?;
        let new_id = if netlist.inputs().contains(&id) {
            out.add_input(s.name.clone(), s.width)
        } else {
            out.add_signal(s.name.clone(), s.width)
        };
        sig_map.insert(id, new_id);
    }

    // New register outputs for the cut's boundary outputs.
    let mut retimed_of: BTreeMap<SignalId, SignalId> = BTreeMap::new();
    for s in &boundary.output_signals {
        let name = format!("{}_r", netlist.signal(*s)?.name);
        let width = netlist.width(*s)?;
        let q = out.add_signal(name, width);
        retimed_of.insert(*s, q);
    }

    // Maps an operand of a consumer to its new signal.
    let map_operand = |id: SignalId, consumer_in_cut: bool| -> SignalId {
        if consumer_in_cut {
            if let Some(d) = removed_q.get(&id) {
                // Cut cells now read the register's data input directly.
                return sig_map[d];
            }
            sig_map[&id]
        } else {
            if let Some(q) = retimed_of.get(&id) {
                // External consumers read the newly inserted register.
                return *q;
            }
            sig_map[&id]
        }
    };

    // Copy cells in order (cell indices stay stable).
    for (i, c) in cells.iter().enumerate() {
        let in_cut = cut_set.contains(&i);
        let inputs: Vec<SignalId> = c.inputs.iter().map(|s| map_operand(*s, in_cut)).collect();
        out.add_cell(c.op.clone(), inputs, sig_map[&c.output])?;
    }

    // Copy registers except the removed ones; their data inputs follow the
    // external-consumer mapping.
    for (i, r) in netlist.registers().iter().enumerate() {
        if removed_regs.contains(&i) {
            continue;
        }
        let d = map_operand(r.input, false);
        out.add_register(d, sig_map[&r.output], r.init)?;
    }

    // The new registers on the cut boundary, with initial value f(q).
    for (s, init) in boundary
        .output_signals
        .iter()
        .zip(boundary.new_initial_values.iter())
    {
        out.add_register(sig_map[s], retimed_of[s], *init)?;
    }

    // Primary outputs follow the external-consumer mapping.
    for o in netlist.outputs() {
        out.mark_output(map_operand(*o, false));
    }

    out.validate()?;
    Ok(out)
}

/// Performs a backward retiming move over the given cut: the registers on
/// the cut's outputs are moved to its inputs. The new initial values `q'`
/// must satisfy `f(q') = q`; they are found by exhaustive search over the
/// cut's input space, which is limited to `2^20` combinations.
///
/// # Errors
///
/// Fails if the cut outputs are not all registered, no consistent initial
/// value exists, or the search space is too large.
pub fn backward_retime(netlist: &Netlist, cut: &Cut) -> Result<Netlist> {
    netlist.validate()?;
    let cells = netlist.cells();
    let cut_set: BTreeSet<usize> = cut.cells.iter().copied().collect();
    let cut_outputs: BTreeSet<SignalId> = cut_set.iter().map(|&ci| cells[ci].output).collect();

    // Cut inputs: external signals read by cut cells.
    let mut cut_inputs: Vec<SignalId> = Vec::new();
    for &ci in &cut.cells {
        for &inp in &cells[ci].inputs {
            if !cut_outputs.contains(&inp) && !cut_inputs.contains(&inp) {
                cut_inputs.push(inp);
            }
        }
    }
    // Every externally consumed cut output must feed exactly registers.
    let mut boundary_regs: Vec<usize> = Vec::new();
    for &ci in &cut.cells {
        let s = cells[ci].output;
        for (i, c) in cells.iter().enumerate() {
            if !cut_set.contains(&i) && c.inputs.contains(&s) {
                return Err(RetimingError::BadCut {
                    message: format!(
                        "cut output {} feeds combinational logic, not a register",
                        netlist.signal(s)?.name
                    ),
                });
            }
        }
        if netlist.outputs().contains(&s) {
            return Err(RetimingError::BadCut {
                message: format!("cut output {} is a primary output", netlist.signal(s)?.name),
            });
        }
        for (ri, r) in netlist.registers().iter().enumerate() {
            if r.input == s && !boundary_regs.contains(&ri) {
                boundary_regs.push(ri);
            }
        }
    }
    if boundary_regs.is_empty() {
        return Err(RetimingError::BadCut {
            message: "backward cut has no registers on its outputs".to_string(),
        });
    }
    // Reject feedback through the cut: a cut input that is the output of a
    // register being removed would create a combinational loop.
    for &ri in &boundary_regs {
        let q = netlist.registers()[ri].output;
        if cut_inputs.contains(&q) {
            return Err(RetimingError::BadCut {
                message: format!(
                    "register output {} feeds the cut itself (feedback through f)",
                    netlist.signal(q)?.name
                ),
            });
        }
    }

    // Search for q' with f(q') = q.
    let total_bits: u32 = cut_inputs
        .iter()
        .map(|s| netlist.width(*s).unwrap_or(1))
        .sum();
    if total_bits > 20 {
        return Err(RetimingError::BadCut {
            message: format!("backward retiming search space of {total_bits} bits is too large"),
        });
    }
    let order = netlist.topo_order()?;
    let targets: BTreeMap<SignalId, BitVec> = boundary_regs
        .iter()
        .map(|&ri| {
            let r = &netlist.registers()[ri];
            (r.input, r.init)
        })
        .collect();
    let mut found: Option<Vec<BitVec>> = None;
    'search: for combo in 0u64..(1u64 << total_bits) {
        let mut values: BTreeMap<SignalId, BitVec> = BTreeMap::new();
        let mut offset = 0u32;
        let mut candidate = Vec::new();
        for s in &cut_inputs {
            let w = netlist.width(*s)?;
            let v = BitVec::truncate(combo >> offset, w);
            offset += w;
            values.insert(*s, v);
            candidate.push(v);
        }
        for &ci in &order {
            if !cut_set.contains(&ci) {
                continue;
            }
            let cell = &cells[ci];
            let operands: Vec<BitVec> = cell.inputs.iter().map(|id| values[id]).collect();
            let v = cell.op.eval(&operands)?;
            values.insert(cell.output, v);
        }
        for (sig, want) in &targets {
            if values.get(sig) != Some(want) {
                continue 'search;
            }
        }
        found = Some(candidate);
        break;
    }
    let inits = found.ok_or_else(|| RetimingError::BadCut {
        message: "no initial value q' with f(q') = q exists".to_string(),
    })?;

    // Build the retimed netlist: remove boundary registers (their consumers
    // read the cut output directly), insert registers on every cut input.
    let removed: BTreeSet<usize> = boundary_regs.iter().copied().collect();
    let removed_q: BTreeMap<SignalId, SignalId> = boundary_regs
        .iter()
        .map(|&ri| {
            let r = &netlist.registers()[ri];
            (r.output, r.input)
        })
        .collect();

    let mut out = Netlist::new(format!("{}_retimed_bwd", netlist.name()));
    let mut sig_map: BTreeMap<SignalId, SignalId> = BTreeMap::new();
    for id in netlist.signal_ids() {
        if removed_q.contains_key(&id) {
            continue;
        }
        let s = netlist.signal(id)?;
        let new_id = if netlist.inputs().contains(&id) {
            out.add_input(s.name.clone(), s.width)
        } else {
            out.add_signal(s.name.clone(), s.width)
        };
        sig_map.insert(id, new_id);
    }
    // New registered versions of the cut inputs.
    let mut reg_of: BTreeMap<SignalId, SignalId> = BTreeMap::new();
    for (s, init) in cut_inputs.iter().zip(inits.iter()) {
        let name = format!("{}_rb", netlist.signal(*s)?.name);
        let q = out.add_signal(name, netlist.width(*s)?);
        out.add_register(sig_map[s], q, *init)?;
        reg_of.insert(*s, q);
    }
    let map_operand = |id: SignalId, consumer_in_cut: bool| -> SignalId {
        if consumer_in_cut {
            if let Some(q) = reg_of.get(&id) {
                return *q;
            }
            sig_map[&id]
        } else {
            if let Some(d) = removed_q.get(&id) {
                return sig_map[d];
            }
            sig_map[&id]
        }
    };
    for (i, c) in cells.iter().enumerate() {
        let in_cut = cut_set.contains(&i);
        let inputs: Vec<SignalId> = c.inputs.iter().map(|s| map_operand(*s, in_cut)).collect();
        out.add_cell(c.op.clone(), inputs, sig_map[&c.output])?;
    }
    for (i, r) in netlist.registers().iter().enumerate() {
        if removed.contains(&i) {
            continue;
        }
        let d = map_operand(r.input, false);
        out.add_register(d, sig_map[&r.output], r.init)?;
    }
    for o in netlist.outputs() {
        out.mark_output(map_operand(*o, false));
    }
    out.validate()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hash_netlist::sim::{random_stimuli, traces_equal};

    /// in -> [reg q0] -> inc -> xor with input -> out
    fn simple_forward_example() -> (Netlist, Cut) {
        let mut n = Netlist::new("fwd");
        let a = n.add_input("a", 4);
        let q = n.register(a, BitVec::new(3, 4).unwrap(), "q").unwrap();
        let i = n.inc(q, "i").unwrap(); // cell 0: the f block
        let o = n.xor(i, a, "o").unwrap(); // cell 1: the g block
        n.mark_output(o);
        (n, Cut::new(vec![0]))
    }

    #[test]
    fn forward_retime_preserves_behaviour() {
        let (n, cut) = simple_forward_example();
        let retimed = forward_retime(&n, &cut).unwrap();
        // The register moved from before the incrementer to after it, the
        // initial value became f(q) = 3 + 1 = 4.
        assert_eq!(retimed.registers().len(), 1);
        assert_eq!(retimed.registers()[0].init.as_u64(), 4);
        let stim = random_stimuli(&n, 50, 123);
        assert!(traces_equal(&n, &retimed, &stim).unwrap());
    }

    #[test]
    fn forward_cut_analysis_reports_boundary() {
        let (n, cut) = simple_forward_example();
        let b = analyze_forward_cut(&n, &cut).unwrap();
        assert_eq!(b.input_registers.len(), 1);
        assert_eq!(b.output_signals.len(), 1);
        assert_eq!(b.new_initial_values[0].as_u64(), 4);
    }

    #[test]
    fn false_cut_is_rejected() {
        // The paper's Fig. 4: choosing the block that reads primary inputs
        // (not register outputs) cannot be matched.
        let (n, _) = simple_forward_example();
        let bad = Cut::new(vec![1]); // the xor reads the primary input a
        let err = forward_retime(&n, &bad).unwrap_err();
        assert!(matches!(err, RetimingError::BadCut { .. }));
        let msg = err.to_string();
        assert!(msg.contains("not a register output"), "got: {msg}");
    }

    #[test]
    fn cut_with_shared_register_is_rejected() {
        // The register also feeds logic outside the cut.
        let mut n = Netlist::new("shared");
        let a = n.add_input("a", 4);
        let q = n.register(a, BitVec::zero(4), "q").unwrap();
        let i = n.inc(q, "i").unwrap(); // cell 0 (cut)
        let o = n.xor(i, q, "o").unwrap(); // cell 1 also reads q
        n.mark_output(o);
        let err = forward_retime(&n, &Cut::new(vec![0])).unwrap_err();
        assert!(err.to_string().contains("outside the cut"));
    }

    #[test]
    fn multi_cell_cut_with_internal_fanout() {
        // f = {inc, add}: q1 -> inc -> add <- q2 ; add output feeds g.
        let mut n = Netlist::new("multi");
        let a = n.add_input("a", 4);
        let b = n.add_input("b", 4);
        let q1 = n.register(a, BitVec::new(1, 4).unwrap(), "q1").unwrap();
        let q2 = n.register(b, BitVec::new(2, 4).unwrap(), "q2").unwrap();
        let i = n.inc(q1, "i").unwrap(); // cell 0
        let s = n.add(i, q2, "s").unwrap(); // cell 1
        let o = n.xor(s, a, "o").unwrap(); // cell 2 (g)
        n.mark_output(o);
        let cut = Cut::new(vec![0, 1]);
        let retimed = forward_retime(&n, &cut).unwrap();
        // Two input registers replaced by one output register with value
        // f(q) = (1+1) + 2 = 4.
        assert_eq!(retimed.registers().len(), 1);
        assert_eq!(retimed.registers()[0].init.as_u64(), 4);
        let stim = random_stimuli(&n, 60, 9);
        assert!(traces_equal(&n, &retimed, &stim).unwrap());
    }

    #[test]
    fn backward_retime_inverts_forward() {
        let (n, cut) = simple_forward_example();
        let fwd = forward_retime(&n, &cut).unwrap();
        // In the forward-retimed circuit the incrementer (still cell 0) now
        // has the register on its output; moving it backward again must
        // restore equivalent behaviour.
        let back = backward_retime(&fwd, &Cut::new(vec![0])).unwrap();
        let stim = random_stimuli(&n, 50, 7);
        assert!(traces_equal(&n, &back, &stim).unwrap());
        assert_eq!(back.registers().len(), 1);
    }

    #[test]
    fn backward_retime_rejects_unregistered_outputs() {
        let (n, _) = simple_forward_example();
        // Cell 0 (inc) drives the xor directly; no register on its output.
        let err = backward_retime(&n, &Cut::new(vec![0])).unwrap_err();
        assert!(matches!(err, RetimingError::BadCut { .. }));
    }

    #[test]
    fn backward_retime_detects_unreachable_initial_value() {
        // f = inc; the register after it holds 0, and 0 = q'+1 has the
        // solution q' = 15 (wrap-around), so this one actually succeeds;
        // instead use a block whose image misses the target: f = x AND 0.
        let mut n = Netlist::new("noinv");
        let a = n.add_input("a", 4);
        let zero = n.constant(BitVec::zero(4), "z").unwrap(); // cell 0
        let masked = n.and(a, zero, "m").unwrap(); // cell 1, always 0
        let q = n.register(masked, BitVec::new(5, 4).unwrap(), "q").unwrap();
        let o = n.inc(q, "o").unwrap();
        n.mark_output(o);
        let err = backward_retime(&n, &Cut::new(vec![0, 1])).unwrap_err();
        assert!(err.to_string().contains("no initial value"));
    }
}
