//! Error type for the retiming heuristics.

use hash_netlist::NetlistError;
use std::fmt;

/// Errors raised by the retiming graph construction, the min-period
/// algorithm and the netlist-level register moves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetimingError {
    /// The requested cut does not match the retiming pattern.
    BadCut {
        /// Description of the violated side condition.
        message: String,
    },
    /// No legal retiming achieving the requested period exists.
    Infeasible {
        /// The requested clock period.
        period: i64,
    },
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
}

impl fmt::Display for RetimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetimingError::BadCut { message } => write!(f, "cut does not match: {message}"),
            RetimingError::Infeasible { period } => {
                write!(f, "no retiming achieves clock period {period}")
            }
            RetimingError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for RetimingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RetimingError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for RetimingError {
    fn from(e: NetlistError) -> Self {
        RetimingError::Netlist(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RetimingError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: RetimingError = NetlistError::UnsupportedWidth { width: 0 }.into();
        assert!(e.to_string().contains("netlist error"));
        assert!(RetimingError::Infeasible { period: 5 }
            .to_string()
            .contains('5'));
        assert!(RetimingError::BadCut {
            message: "xyz".into()
        }
        .to_string()
        .contains("xyz"));
    }
}
