//! Value-generation strategies: a deterministic, shrink-free subset of
//! proptest's `Strategy` machinery.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of type `Self::Value` from the test RNG.
pub trait Strategy: Clone {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value deterministically from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, O>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Type-erases the strategy (the erased form is cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S: Strategy, O> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> O>,
}

impl<S: Strategy, O> Clone for Map<S, O> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S: Strategy, O> Strategy for Map<S, O> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several strategies of the same value type; built by
/// the `prop_oneof!` macro.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*
    };
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// String-pattern strategy: a `&str` is interpreted as a (tiny) regex.
///
/// Supported: a single character class such as `"[a-d]"` or `"[abcx-z]"`
/// (one char drawn uniformly), and everything else as a literal string.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let bytes = self.as_bytes();
        if bytes.len() >= 3 && bytes[0] == b'[' && bytes[bytes.len() - 1] == b']' {
            let inner = &bytes[1..bytes.len() - 1];
            let mut alphabet: Vec<char> = Vec::new();
            let mut i = 0;
            while i < inner.len() {
                if i + 2 < inner.len() && inner[i + 1] == b'-' {
                    for c in inner[i]..=inner[i + 2] {
                        alphabet.push(c as char);
                    }
                    i += 3;
                } else {
                    alphabet.push(inner[i] as char);
                    i += 1;
                }
            }
            assert!(
                !alphabet.is_empty(),
                "empty character class pattern {self:?}"
            );
            let idx = rng.below(alphabet.len() as u64) as usize;
            alphabet[idx].to_string()
        } else {
            (*self).to_string()
        }
    }
}
