//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! small slice of proptest that the property suites actually use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`/`boxed`, integer-range and
//!   tuple strategies, and a tiny `[a-z]`-style string pattern strategy,
//! * [`strategy::BoxedStrategy`] and the `prop_oneof!` union combinator,
//! * the `proptest!`, `prop_assert!`, `prop_assert_eq!` and `prop_assume!`
//!   macros,
//! * a deterministic [`test_runner::TestRng`] (SplitMix64) so every run of
//!   the suite explores exactly the same cases — CI is reproducible by
//!   construction, and a failing case can be replayed from its printed
//!   seed and case index alone.
//!
//! Shrinking is intentionally not implemented: failures report the RNG
//! seed and case number, which reproduce the exact input deterministically.

#![warn(rust_2018_idioms)]

pub mod strategy;
pub mod test_runner;

/// The glob-importable API, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset the suites use):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, y in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __result
                });
            }
        )*
    };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format_args!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            concat!(
                "assertion failed: ",
                stringify!($left),
                " == ",
                stringify!($right)
            )
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            concat!(
                "assertion failed: ",
                stringify!($left),
                " != ",
                stringify!($right)
            )
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
