//! The deterministic test runner and its RNG.

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is regenerated.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The result type a `proptest!` body is transformed into.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration for one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// RNG seed. The default is fixed, so every run (locally and in CI)
    /// explores the same cases.
    pub rng_seed: u64,
    /// Upper bound on `prop_assume!` rejections across the whole run.
    pub max_global_rejects: u32,
}

/// Fixed default seed: the suites are reproducible by construction.
pub const DEFAULT_RNG_SEED: u64 = 0x1997_0317_DA7E_0001;

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            rng_seed: DEFAULT_RNG_SEED,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A default configuration requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// Overrides the RNG seed (chainable).
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }
}

/// SplitMix64: tiny, fast, and plenty for test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero). The tiny
    /// modulo bias is irrelevant for test-case generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        self.next_u64() % bound
    }
}

/// Drives one `proptest!`-generated test function: draws cases from a
/// seeded RNG until `config.cases` pass, a case fails, or the rejection
/// budget is exhausted.
pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::from_seed(config.rng_seed);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut case_no: u64 = 0;
    while passed < config.cases {
        case_no += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest {name}: too many prop_assume! rejections \
                         ({rejected}) after {passed} passing cases \
                         (seed {:#x})",
                        config.rng_seed
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name}: case #{case_no} failed (seed {:#x}, \
                     {passed} cases passed before it): {msg}",
                    config.rng_seed
                );
            }
        }
    }
}
