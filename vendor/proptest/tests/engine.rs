//! Self-tests of the vendored proptest subset: the runner really executes
//! bodies, failures really fail, rejection budgets hold, and generation is
//! deterministic for a fixed seed.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::test_runner::{run, ProptestConfig, TestCaseError, TestRng};
use std::cell::Cell;

#[test]
fn runner_executes_exactly_the_configured_number_of_passing_cases() {
    let executed = Cell::new(0u32);
    let config = ProptestConfig::with_cases(37);
    run(&config, "counting", |_rng| {
        executed.set(executed.get() + 1);
        Ok(())
    });
    assert_eq!(executed.get(), 37);
}

#[test]
#[should_panic(expected = "case #1 failed")]
fn runner_panics_on_the_first_failing_case() {
    let config = ProptestConfig::with_cases(10);
    run(&config, "failing", |_rng| Err(TestCaseError::fail("boom")));
}

#[test]
#[should_panic(expected = "too many prop_assume! rejections")]
fn runner_panics_when_the_rejection_budget_is_exhausted() {
    let config = ProptestConfig {
        max_global_rejects: 5,
        ..ProptestConfig::with_cases(1)
    };
    run(&config, "rejecting", |_rng| {
        Err(TestCaseError::reject("never satisfiable"))
    });
}

#[test]
fn generation_is_deterministic_for_a_fixed_seed() {
    let strategy = prop_oneof![
        (0u32..100).prop_map(|x| x as u64),
        (0u64..1_000_000).prop_map(|x| x + 1_000),
    ];
    let draw = |seed: u64| -> Vec<u64> {
        let mut rng = TestRng::from_seed(seed);
        (0..64).map(|_| strategy.generate(&mut rng)).collect()
    };
    assert_eq!(draw(42), draw(42));
    assert_ne!(draw(42), draw(43));
}

#[test]
fn range_strategies_respect_their_bounds() {
    let mut rng = TestRng::from_seed(7);
    for _ in 0..1_000 {
        let x = (3u8..9).generate(&mut rng);
        assert!((3..9).contains(&x));
        let y = (-5i64..5).generate(&mut rng);
        assert!((-5..5).contains(&y));
    }
}

#[test]
fn char_class_patterns_generate_single_chars_in_the_class() {
    let mut rng = TestRng::from_seed(7);
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..200 {
        let s = "[a-d]".generate(&mut rng);
        assert_eq!(s.len(), 1);
        let c = s.chars().next().unwrap();
        assert!(('a'..='d').contains(&c), "{c:?} outside [a-d]");
        seen.insert(c);
    }
    assert_eq!(seen.len(), 4, "all four chars should appear in 200 draws");
}

#[test]
fn literal_patterns_generate_themselves() {
    let mut rng = TestRng::from_seed(7);
    assert_eq!("hello".generate(&mut rng), "hello");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn macro_level_assertions_work(x in 0u32..50, y in 50u32..100) {
        prop_assert!(x < y);
        prop_assert_eq!(x + y, y + x);
        prop_assert_ne!(x, y);
        prop_assume!(x % 2 == 0);
        prop_assert_eq!(x % 2, 0);
    }
}
