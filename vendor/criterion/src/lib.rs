//! An offline, API-compatible subset of the `criterion` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! slice of criterion the benches use: `Criterion::benchmark_group`,
//! `sample_size`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical engine it
//! takes `sample_size` wall-clock samples of one iteration each (after one
//! warm-up) and prints min / median / mean per benchmark — enough to
//! reproduce the paper's tables and watch for regressions by eye.

#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier so the optimiser cannot delete benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    /// Runs and reports one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group. (Reports are printed eagerly, so this is a no-op.)
    pub fn finish(self) {}

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // One warm-up sample, discarded.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed);
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            self.name, id, min, median, mean, self.sample_size
        );
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine`; the group runs this for each
    /// sample. The routine's output goes through [`black_box`].
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        black_box(out);
    }
}

/// Collects benchmark functions into one group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups (for `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
